//! Pipeline integration: SpGEMM → SpKAdd → SUMMA, plus file I/O — the
//! full system the paper's distributed experiments exercise.

use spkadd_suite::cachesim::CacheHierarchy;
use spkadd_suite::gen::{er, protein_similarity_matrix};
use spkadd_suite::kadd::metered::trace_spkadd;
use spkadd_suite::sparse::{io, CscMatrix, DenseMatrix};
use spkadd_suite::spgemm::{spgemm_hash, spgemm_heap, SpgemmOptions};
use spkadd_suite::summa::{process_intermediates, run_summa, ReductionKind, SummaConfig};
use spkadd_suite::{spkadd_with, Algorithm, Options};

#[test]
fn spgemm_agrees_with_dense_oracle() {
    let a = er(96, 64, 4, 11);
    let b = er(64, 48, 4, 12);
    let dense = DenseMatrix::from_csc(&a)
        .matmul(&DenseMatrix::from_csc(&b))
        .unwrap();
    let hash = spgemm_hash(&a, &b, &SpgemmOptions::default()).unwrap();
    assert!(DenseMatrix::from_csc(&hash).max_abs_diff(&dense) < 1e-9);
    let heap = spgemm_heap(&a, &b, &SpgemmOptions::default()).unwrap();
    assert!(DenseMatrix::from_csc(&heap).max_abs_diff(&dense) < 1e-9);
}

#[test]
fn summa_grid_sizes_agree() {
    let a = protein_similarity_matrix(256, 8, 16, 0.8, 21);
    let direct = spgemm_hash(&a, &a, &SpgemmOptions::default()).unwrap();
    for grid in [1usize, 2, 4] {
        for reduction in [
            ReductionKind::Heap,
            ReductionKind::SortedHash,
            ReductionKind::UnsortedHash,
        ] {
            let report = run_summa(
                &a,
                &a,
                &SummaConfig {
                    grid,
                    reduction,
                    threads: 0,
                },
            )
            .unwrap();
            assert!(
                report.result.approx_eq(&direct, 1e-9),
                "grid={grid} {} diverged",
                reduction.name()
            );
        }
    }
}

#[test]
fn unsorted_spgemm_feeds_hash_spkadd() {
    // The Fig 6 fast path: unsorted intermediates reduced by hash SpKAdd
    // must equal sorted intermediates reduced by heap SpKAdd.
    let a = protein_similarity_matrix(512, 8, 16, 0.8, 22);
    let unsorted = process_intermediates(&a, &a, 4, false).unwrap();
    let sorted = process_intermediates(&a, &a, 4, true).unwrap();
    let urefs: Vec<&CscMatrix<f64>> = unsorted.iter().collect();
    let srefs: Vec<&CscMatrix<f64>> = sorted.iter().collect();

    let via_hash = spkadd_with(&urefs, Algorithm::Hash, &Options::default()).unwrap();
    let via_heap = spkadd_with(&srefs, Algorithm::Heap, &Options::default()).unwrap();
    assert!(via_hash.approx_eq(&via_heap, 1e-9));

    // And the heap algorithm must *reject* the unsorted ones (if any
    // column is actually unsorted).
    if unsorted.iter().any(|m| !m.is_sorted()) {
        assert!(spkadd_with(&urefs, Algorithm::Heap, &Options::default()).is_err());
    }
}

#[test]
fn matrix_market_round_trip_via_tempfile() {
    let a = er(64, 32, 4, 33);
    let path = std::env::temp_dir().join("spkadd_suite_roundtrip.mtx");
    io::write_matrix_market(&path, &a).unwrap();
    let back = io::read_matrix_market(&path)
        .unwrap()
        .to_csc_sum_duplicates();
    std::fs::remove_file(&path).ok();
    assert!(back.approx_eq(&a, 1e-9));
}

#[test]
fn cachesim_traces_full_algorithms() {
    // The cache simulator must run the real algorithms end to end and
    // observe strictly more LL traffic for more data.
    let small = vec![er(256, 8, 4, 41), er(256, 8, 4, 42)];
    let big = vec![er(4096, 32, 16, 43), er(4096, 32, 16, 44)];
    let misses = |mats: &Vec<CscMatrix<f64>>| {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let mut h = CacheHierarchy::skylake_like(256 << 10);
        trace_spkadd(&refs, Algorithm::Hash, usize::MAX, &mut h).unwrap();
        h.ll_stats().misses()
    };
    assert!(misses(&big) > misses(&small));
}

#[test]
fn spkadd_reduces_spgemm_partials_like_direct_product() {
    // Σ_s A(:,s-block)·B(s-block,:) over column/row slabs equals A·B —
    // the algebra behind SUMMA's reduction, checked with the library's
    // own pieces.
    let a = er(128, 64, 4, 51);
    let b = er(64, 96, 4, 52);
    let q = 4;
    let opts = SpgemmOptions::default();
    let mut partials = Vec::new();
    for s in 0..q {
        let c1 = s * a.ncols() / q;
        let c2 = (s + 1) * a.ncols() / q;
        let a_slab = a.slice_cols(c1, c2);
        let b_slab = b.slice_rows(c1, c2);
        partials.push(spgemm_hash(&a_slab, &b_slab, &opts).unwrap());
    }
    let refs: Vec<&CscMatrix<f64>> = partials.iter().collect();
    let summed = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
    let direct = spgemm_hash(&a, &b, &opts).unwrap();
    assert!(summed.approx_eq(&direct, 1e-9));
}
