//! Cross-crate correctness: every SpKAdd algorithm against the dense
//! oracle on every workload family, plus edge cases.

use spkadd_suite::gen::{generate_collection, protein_collection, Pattern, ProteinConfig};
use spkadd_suite::sparse::{CscMatrix, DenseMatrix};
use spkadd_suite::{spkadd_with, Algorithm, Options};

fn dense_sum(mats: &[&CscMatrix<f64>]) -> DenseMatrix<f64> {
    let mut acc = DenseMatrix::zeros(mats[0].nrows(), mats[0].ncols());
    for m in mats {
        acc.add_assign(&DenseMatrix::from_csc(m)).unwrap();
    }
    acc
}

fn check_all_algorithms(mats: &[CscMatrix<f64>], tol: f64) {
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let expect = dense_sum(&refs);
    let opts = Options::default();
    for alg in Algorithm::ALL {
        let out = spkadd_with(&refs, alg, &opts).unwrap_or_else(|e| panic!("{alg} failed: {e}"));
        let diff = DenseMatrix::from_csc(&out).max_abs_diff(&expect);
        assert!(diff <= tol, "{alg} deviates by {diff}");
    }
}

#[test]
fn er_collection_all_algorithms() {
    let mats = generate_collection(Pattern::Er, 512, 16, 8, 8, 1);
    check_all_algorithms(&mats, 1e-9);
}

#[test]
fn rmat_collection_all_algorithms() {
    let mats = generate_collection(Pattern::Rmat, 512, 16, 8, 8, 2);
    check_all_algorithms(&mats, 1e-9);
}

#[test]
fn high_compression_collection_all_algorithms() {
    let mats = protein_collection(
        &ProteinConfig {
            nrows: 1024,
            ncols: 32,
            d: 16,
            k: 12,
            cf: 8.0,
            skew: 0.5,
        },
        3,
    );
    check_all_algorithms(&mats, 1e-9);
}

#[test]
fn tall_skinny_and_wide_shapes() {
    // One column; many columns of one row.
    let tall = generate_collection(Pattern::Er, 4096, 1, 64, 6, 4);
    check_all_algorithms(&tall, 1e-9);
    let wide = generate_collection(Pattern::Er, 2, 256, 1, 6, 5);
    check_all_algorithms(&wide, 1e-9);
}

#[test]
fn collections_with_empty_members() {
    let mut mats = generate_collection(Pattern::Er, 128, 8, 4, 4, 6);
    mats.push(CscMatrix::zeros(128, 8));
    mats.insert(0, CscMatrix::zeros(128, 8));
    check_all_algorithms(&mats, 1e-9);
}

#[test]
fn all_empty_collection() {
    let mats: Vec<CscMatrix<f64>> = (0..5).map(|_| CscMatrix::zeros(64, 8)).collect();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    for alg in Algorithm::ALL {
        let out = spkadd_with(&refs, alg, &Options::default()).unwrap();
        assert_eq!(out.nnz(), 0, "{alg} produced entries from nothing");
        assert_eq!(out.shape(), (64, 8));
    }
}

#[test]
fn identical_matrices_scale_values() {
    let base = generate_collection(Pattern::Er, 256, 8, 8, 1, 7)
        .pop()
        .unwrap();
    let mats: Vec<CscMatrix<f64>> = (0..10).map(|_| base.clone()).collect();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let out = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
    assert_eq!(out.nnz(), base.nnz(), "pattern must not grow");
    let mut scaled = base.clone();
    scaled.scale(10.0);
    assert!(out.approx_eq(&scaled, 1e-9));
}

#[test]
fn unsorted_duplicate_inputs_hash_family() {
    // Non-canonical inputs: unsorted columns with duplicate row entries
    // (as an unsorted SpGEMM would emit). Only the hash/SPA family must
    // accept them; results are compared densely (duplicates sum).
    let coo = {
        let mut c = spkadd_suite::sparse::CooMatrix::new(64, 8);
        for i in 0..200u32 {
            c.push((i * 37) % 64, (i * 11) % 8, 1.0 + (i % 5) as f64);
        }
        // duplicates on purpose
        for i in 0..50u32 {
            c.push((i * 37) % 64, (i * 11) % 8, 0.5);
        }
        c
    };
    let raw = coo.to_csc(); // sorted but with duplicates
    let mut shuffled = raw.clone();
    // Reverse each column to destroy sortedness.
    let (m, n, colptr, mut rows, mut vals) = shuffled.into_parts();
    for j in 0..n {
        rows[colptr[j]..colptr[j + 1]].reverse();
        vals[colptr[j]..colptr[j + 1]].reverse();
    }
    shuffled = CscMatrix::try_new(m, n, colptr, rows, vals).unwrap();
    assert!(!shuffled.is_sorted());

    let mats = [raw, shuffled];
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let expect = dense_sum(&refs);
    for alg in [Algorithm::Hash, Algorithm::SlidingHash, Algorithm::Spa] {
        let out = spkadd_with(&refs, alg, &Options::default()).unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&expect),
            0.0,
            "{alg} mishandled non-canonical input"
        );
    }
}

#[test]
fn f32_values_work_end_to_end() {
    // 8-byte hash entries (the paper's configuration).
    let a = CscMatrix::<f32>::identity(32);
    let mut b = CscMatrix::<f32>::identity(32);
    b.scale(2.0);
    let refs = vec![&a, &b, &a];
    let out = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
    assert_eq!(out.get(5, 5).unwrap(), 4.0f32);
    let out2 = spkadd_with(&refs, Algorithm::SlidingHash, &Options::default()).unwrap();
    assert!(out.approx_eq(&out2, 0.0));
}

#[test]
fn integer_values_exact() {
    let a = CscMatrix::<i64>::identity(16);
    let refs = vec![&a; 7];
    for alg in [Algorithm::Hash, Algorithm::Heap, Algorithm::Spa] {
        let out = spkadd_with(&refs, alg, &Options::default()).unwrap();
        for i in 0..16 {
            assert_eq!(out.get(i, i).unwrap(), 7i64, "{alg} wrong");
        }
    }
}

#[test]
fn forced_tiny_tables_still_correct() {
    let mats = generate_collection(Pattern::Rmat, 1024, 16, 16, 16, 8);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let expect = dense_sum(&refs);
    for entries in [16usize, 64, 1024, 1 << 20] {
        let mut opts = Options::default();
        opts.forced_table_entries = Some(entries);
        let out = spkadd_with(&refs, Algorithm::SlidingHash, &opts).unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&expect),
            0.0,
            "budget {entries} wrong"
        );
        assert!(out.is_sorted());
    }
}
