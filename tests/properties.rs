//! Property-based tests over the core invariants of SpKAdd.

use proptest::prelude::*;
use spkadd_suite::sparse::{CooMatrix, CscMatrix, DenseMatrix};
use spkadd_suite::{spkadd_with, Algorithm, Options, SpkAdd};

/// Strategy: a small collection of same-shape matrices from random
/// triplets (duplicates merged, so inputs are canonical).
fn collection_strategy() -> impl Strategy<Value = Vec<CscMatrix<f64>>> {
    (2usize..24, 1usize..12, 1usize..6).prop_flat_map(|(m, n, k)| {
        let entry = (0..m as u32, 0..n as u32, -8i32..8);
        let one_matrix = proptest::collection::vec(entry, 0..40).prop_map(move |trips| {
            let mut coo = CooMatrix::new(m, n);
            for (r, c, v) in trips {
                coo.push(r, c, v as f64);
            }
            coo.to_csc_sum_duplicates()
        });
        proptest::collection::vec(one_matrix, k)
    })
}

fn dense_sum(mats: &[&CscMatrix<f64>]) -> DenseMatrix<f64> {
    let mut acc = DenseMatrix::zeros(mats[0].nrows(), mats[0].ncols());
    for m in mats {
        acc.add_assign(&DenseMatrix::from_csc(m)).unwrap();
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm computes the dense sum exactly.
    #[test]
    fn all_algorithms_compute_the_sum(mats in collection_strategy()) {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let expect = dense_sum(&refs);
        let opts = Options::default();
        for alg in Algorithm::ALL {
            let out = spkadd_with(&refs, alg, &opts).unwrap();
            prop_assert_eq!(
                DenseMatrix::from_csc(&out).max_abs_diff(&expect),
                0.0,
                "{} deviates", alg
            );
        }
    }

    /// The plan/execute front door agrees bit-for-bit with the one-shot
    /// shim for every algorithm (including Auto), and a second execution
    /// of the same plan is identical to the first.
    #[test]
    fn planned_execution_matches_oneshot(mats in collection_strategy()) {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let (m, n) = (mats[0].nrows(), mats[0].ncols());
        let opts = Options::default();
        for alg in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
            let mut plan = SpkAdd::new(m, n).algorithm(alg).build().unwrap();
            let planned = plan.execute(&refs).unwrap();
            let oneshot = spkadd_with(&refs, alg, &opts).unwrap();
            prop_assert_eq!(&planned, &oneshot, "{} plan != one-shot", alg);
            let again = plan.execute(&refs).unwrap();
            prop_assert_eq!(&again, &planned, "{} replay differs", alg);
        }
    }

    /// SpKAdd is invariant under permutation of the collection.
    #[test]
    fn input_order_is_irrelevant(mats in collection_strategy()) {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let mut rev = refs.clone();
        rev.reverse();
        let opts = Options::default();
        let a = spkadd_with(&refs, Algorithm::Hash, &opts).unwrap();
        let b = spkadd_with(&rev, Algorithm::Hash, &opts).unwrap();
        prop_assert!(a.approx_eq(&b, 0.0));
    }

    /// Structural bounds: nnz(B) ≤ Σ nnz(A_i) (cf ≥ 1) and the output
    /// pattern is the union of input patterns.
    #[test]
    fn output_size_bounds(mats in collection_strategy()) {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let total: usize = mats.iter().map(|m| m.nnz()).sum();
        let out = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        prop_assert!(out.nnz() <= total);
        // Union bound per column.
        for j in 0..out.ncols() {
            let mut union: Vec<u32> = mats.iter().flat_map(|m| m.col(j).rows.to_vec()).collect();
            union.sort_unstable();
            union.dedup();
            prop_assert_eq!(out.col_nnz(j), union.len());
        }
    }

    /// Sorted output mode really sorts; unsorted mode is numerically
    /// identical after canonicalization.
    #[test]
    fn sorted_and_unsorted_modes_agree(mats in collection_strategy()) {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let sorted = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        prop_assert!(sorted.is_sorted());
        let unsorted = spkadd_with(
            &refs,
            Algorithm::Hash,
            &Options::default().unsorted_output(),
        )
        .unwrap();
        prop_assert!(sorted.approx_eq(&unsorted, 0.0));
    }

    /// Transpose duality: (Σ A_i)ᵀ = Σ (A_iᵀ) — the paper's CSR claim.
    #[test]
    fn transpose_commutes_with_spkadd(mats in collection_strategy()) {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let sum_t = spkadd_with(&refs, Algorithm::Hash, &Options::default())
            .unwrap()
            .transpose();
        let transposed: Vec<CscMatrix<f64>> = mats.iter().map(|m| m.transpose()).collect();
        let trefs: Vec<&CscMatrix<f64>> = transposed.iter().collect();
        let t_sum = spkadd_with(&trefs, Algorithm::Hash, &Options::default()).unwrap();
        prop_assert!(sum_t.approx_eq(&t_sum, 0.0));
    }

    /// The sliding-hash result does not depend on the table budget.
    #[test]
    fn sliding_budget_invariance(mats in collection_strategy()) {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let mut reference = None;
        for entries in [16usize, 64, 1 << 16] {
            let mut opts = Options::default();
            opts.forced_table_entries = Some(entries);
            let out = spkadd_with(&refs, Algorithm::SlidingHash, &opts).unwrap();
            match &reference {
                None => reference = Some(out),
                Some(r) => prop_assert!(out.approx_eq(r, 0.0)),
            }
        }
    }

    /// CSC round trips through COO and CSR preserve the matrix.
    #[test]
    fn format_round_trips(mats in collection_strategy()) {
        for m in &mats {
            let via_coo = m.to_coo().to_csc_sum_duplicates();
            prop_assert!(via_coo.approx_eq(m, 0.0));
            let via_csr = m.to_csr().to_csc();
            prop_assert!(via_csr.approx_eq(m, 0.0));
        }
    }
}
