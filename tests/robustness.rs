//! Robustness and adversarial-input tests: extreme shapes, index
//! boundaries, pathological collections, and numerical corner cases.

use spkadd_suite::kadd::StreamingAccumulator;
use spkadd_suite::sparse::{CscMatrix, DenseMatrix};
use spkadd_suite::{spkadd_with, Algorithm, Options};

fn dense_sum(mats: &[&CscMatrix<f64>]) -> DenseMatrix<f64> {
    let mut acc = DenseMatrix::zeros(mats[0].nrows(), mats[0].ncols());
    for m in mats {
        acc.add_assign(&DenseMatrix::from_csc(m)).unwrap();
    }
    acc
}

#[test]
fn single_row_matrices() {
    // m = 1: every entry lands on row 0; hash tables of size 4; SPA of 1.
    let mats: Vec<CscMatrix<f64>> = (0..6)
        .map(|i| {
            CscMatrix::try_new(1, 4, vec![0, 1, 1, 2, 2], vec![0, 0], vec![i as f64, 1.0]).unwrap()
        })
        .collect();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let expect = dense_sum(&refs);
    for alg in Algorithm::ALL {
        let out = spkadd_with(&refs, alg, &Options::default()).unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&expect),
            0.0,
            "{alg} wrong on 1-row matrices"
        );
    }
}

#[test]
fn zero_column_and_zero_row_matrices() {
    let a = CscMatrix::<f64>::zeros(5, 0);
    let b = CscMatrix::<f64>::zeros(5, 0);
    let out = spkadd_with(&[&a, &b], Algorithm::Hash, &Options::default()).unwrap();
    assert_eq!(out.shape(), (5, 0));

    let c = CscMatrix::<f64>::zeros(0, 5);
    let d = CscMatrix::<f64>::zeros(0, 5);
    let out = spkadd_with(&[&c, &d], Algorithm::SlidingHash, &Options::default()).unwrap();
    assert_eq!(out.shape(), (0, 5));
    assert_eq!(out.nnz(), 0);
}

#[test]
fn large_k_many_tiny_matrices() {
    // k = 500 single-entry matrices — stresses the heap (k nodes) and the
    // per-thread workspace reuse.
    let mats: Vec<CscMatrix<f64>> = (0..500u32)
        .map(|i| CscMatrix::try_new(64, 4, vec![0, 0, 1, 1, 1], vec![i % 64], vec![1.0]).unwrap())
        .collect();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let expect = dense_sum(&refs);
    for alg in [
        Algorithm::Hash,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::TwoWayTree,
        Algorithm::SlidingSpa,
    ] {
        let out = spkadd_with(&refs, alg, &Options::default()).unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&expect),
            0.0,
            "{alg} wrong at k=500"
        );
    }
}

#[test]
fn row_indices_near_type_boundaries() {
    // Rows at 0 and m-1 with m = 2^31 would be a 16 GB SPA; use the hash
    // family, which only stores occupied rows.
    let m = (1usize << 31) - 1;
    let rows = vec![0u32, (m - 1) as u32];
    let a = CscMatrix::try_new(m, 1, vec![0, 2], rows.clone(), vec![1.0, 2.0]).unwrap();
    let b = CscMatrix::try_new(m, 1, vec![0, 2], rows, vec![10.0, 20.0]).unwrap();
    for alg in [Algorithm::Hash, Algorithm::Heap, Algorithm::TwoWayTree] {
        let out = spkadd_with(&[&a, &b], alg, &Options::default()).unwrap();
        assert_eq!(out.nnz(), 2, "{alg}");
        assert_eq!(out.get(0, 0).unwrap(), 11.0);
        assert_eq!(out.get(m - 1, 0).unwrap(), 22.0);
    }
    // Sliding hash with a tiny forced budget must panel a huge row space
    // without materializing it.
    let mut opts = Options::default();
    opts.forced_table_entries = Some(16);
    let out = spkadd_with(&[&a, &b], Algorithm::SlidingHash, &opts).unwrap();
    assert_eq!(out.nnz(), 2);
}

#[test]
fn cancellation_keeps_explicit_zeros() {
    // +1 and -1 at the same position: the sum stores an explicit zero
    // (SpKAdd is structural, like the paper's nnz accounting).
    let a = CscMatrix::try_new(4, 1, vec![0, 1], vec![2], vec![1.0]).unwrap();
    let b = CscMatrix::try_new(4, 1, vec![0, 1], vec![2], vec![-1.0]).unwrap();
    for alg in [Algorithm::Hash, Algorithm::Heap, Algorithm::Spa] {
        let out = spkadd_with(&[&a, &b], alg, &Options::default()).unwrap();
        assert_eq!(out.nnz(), 1, "{alg} must keep the cancelled entry");
        assert_eq!(out.get(2, 0).unwrap(), 0.0);
    }
}

#[test]
fn extreme_skew_single_hot_column() {
    // All k matrices concentrate everything in column 0 — the worst case
    // for static scheduling and for per-column table sizing.
    let mats: Vec<CscMatrix<f64>> = (0..8u32)
        .map(|i| {
            let rows: Vec<u32> = (0..512).map(|r| (r * 7 + i) % 4096).collect();
            let mut sorted = rows.clone();
            sorted.sort_unstable();
            sorted.dedup();
            let nnz = sorted.len();
            let mut colptr = vec![nnz; 17];
            colptr[0] = 0;
            CscMatrix::try_new(4096, 16, colptr, sorted, vec![1.0; nnz]).unwrap()
        })
        .collect();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let expect = dense_sum(&refs);
    for alg in [
        Algorithm::Hash,
        Algorithm::SlidingHash,
        Algorithm::Spa,
        Algorithm::Heap,
    ] {
        for sched in [
            spkadd_suite::kadd::Scheduling::Static,
            spkadd_suite::kadd::Scheduling::default(),
        ] {
            let mut opts = Options::default();
            opts.scheduling = sched;
            let out = spkadd_with(&refs, alg, &opts).unwrap();
            assert_eq!(
                DenseMatrix::from_csc(&out).max_abs_diff(&expect),
                0.0,
                "{alg} with {sched:?} wrong"
            );
        }
    }
}

#[test]
fn streaming_accumulator_survives_heterogeneous_batches() {
    let mut acc = StreamingAccumulator::<f64>::with_defaults(32, 8, 5);
    // Mix empty, dense-ish, and single-entry updates.
    for i in 0..37u32 {
        let m = match i % 3 {
            0 => CscMatrix::zeros(32, 8),
            1 => CscMatrix::try_new(
                32,
                8,
                vec![0, 1, 1, 1, 1, 2, 2, 2, 2],
                vec![i % 32, (i * 3) % 32],
                vec![1.0, 2.0],
            )
            .unwrap(),
            _ => CscMatrix::identity(32).slice_cols(0, 8),
        };
        acc.push(m).unwrap();
    }
    let out = acc.finish().unwrap();
    assert!(out.nnz() > 0);
    assert!(out.is_sorted());
}

#[test]
fn options_combinations_matrix() {
    // Exhaustive small matrix of option combinations on one collection.
    let mats: Vec<CscMatrix<f64>> = (0..5u32)
        .map(|i| {
            CscMatrix::try_new(
                128,
                8,
                vec![0, 2, 2, 4, 4, 6, 6, 8, 8],
                vec![i, i + 8, i + 1, i + 9, i + 2, i + 10, i + 3, i + 11],
                vec![1.0; 8],
            )
            .unwrap()
        })
        .collect();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let expect = dense_sum(&refs);
    for sorted_output in [true, false] {
        for symbolic in [
            spkadd_suite::kadd::SymbolicStrategy::Hash,
            spkadd_suite::kadd::SymbolicStrategy::SlidingHash,
            spkadd_suite::kadd::SymbolicStrategy::Spa,
            spkadd_suite::kadd::SymbolicStrategy::Heap,
            spkadd_suite::kadd::SymbolicStrategy::UpperBound,
        ] {
            for threads in [0usize, 1] {
                let mut opts = Options::default();
                opts.sorted_output = sorted_output;
                opts.symbolic = symbolic;
                opts.threads = threads;
                let out = spkadd_with(&refs, Algorithm::Hash, &opts).unwrap();
                assert_eq!(
                    DenseMatrix::from_csc(&out).max_abs_diff(&expect),
                    0.0,
                    "sorted={sorted_output} symbolic={symbolic:?} threads={threads}"
                );
            }
        }
    }
}
