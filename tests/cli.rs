//! End-to-end tests of the `spkadd-cli` binary: generate → stats → add →
//! verify the written sum against the library.

use spkadd_suite::sparse::{io, CscMatrix};
use spkadd_suite::{spkadd_with, Algorithm, Options};
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spkadd-cli"))
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spkadd_cli_test_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_stats_add_pipeline() {
    let dir = tempdir("pipeline");
    // Generate a small RMAT collection.
    let status = cli()
        .args([
            "gen",
            "--pattern",
            "rmat",
            "--rows",
            "512",
            "--cols",
            "8",
            "--d",
            "4",
            "--k",
            "3",
            "--seed",
            "7",
            "--out-dir",
            dir.to_str().unwrap(),
        ])
        .status()
        .expect("failed to run cli");
    assert!(status.success());
    let files: Vec<String> = (0..3)
        .map(|i| {
            dir.join(format!("mat_{i:03}.mtx"))
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    for f in &files {
        assert!(std::path::Path::new(f).exists(), "{f} missing");
    }

    // Stats runs and mentions the collection line.
    let out = cli().arg("stats").args(&files).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("collection: k=3"), "stats output: {text}");

    // Add and compare against the library result.
    let sum_path = dir.join("sum.mtx");
    let status = cli()
        .args([
            "add",
            "--algorithm",
            "hash",
            "--out",
            sum_path.to_str().unwrap(),
        ])
        .args(&files)
        .status()
        .unwrap();
    assert!(status.success());

    let mats: Vec<CscMatrix<f64>> = files
        .iter()
        .map(|f| io::read_matrix_market(f).unwrap().to_csc_sum_duplicates())
        .collect();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let expect = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
    let got = io::read_matrix_market(&sum_path)
        .unwrap()
        .to_csc_sum_duplicates();
    assert!(got.approx_eq(&expect, 1e-9));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_demo_reports_shard_metrics() {
    let out = cli()
        .args([
            "serve-demo",
            "--shards",
            "3",
            "--keys",
            "2",
            "--matrices",
            "12",
            "--rows",
            "256",
            "--cols",
            "8",
            "--d",
            "4",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "serve-demo failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("job-0:"), "missing key summary: {text}");
    assert!(text.contains("job-1:"), "missing key summary: {text}");
    assert!(
        text.contains("routed 36 slices"),
        "12 matrices x 3 shards = 36 slices: {text}"
    );
    assert!(text.contains("shard rows"), "missing shard table: {text}");
}

#[test]
fn cli_rejects_unknown_algorithm_and_missing_files() {
    let out = cli()
        .args(["add", "--algorithm", "quantum", "nonexistent.mtx"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = cli().args(["add"]).output().unwrap();
    assert!(!out.status.success());

    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn cli_help_prints_usage() {
    let out = cli().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
