//! Structural graph union through the aggregation service — the monoid
//! front door in action.
//!
//! A social graph arrives as per-user adjacency *snapshots*: each
//! producer observed some edges and reports them as a boolean CSC
//! adjacency matrix. The union of all snapshots is exactly a k-way
//! SpKAdd under the `(bool, |)` monoid — same kernels, same sharded
//! service, no floating-point anywhere. The example folds the snapshots
//! through `AggregatorService::with_monoid(.., Or)` and verifies the
//! result column-for-column against a dense reference fold.
//!
//! ```text
//! cargo run --release --example graph_union
//! ```

use spkadd_suite::server::{AggregatorService, ServiceConfig};
use spkadd_suite::sparse::CscMatrix;
use spkadd_suite::Or;

/// Deterministic xorshift generator — the example must reproduce
/// bit-for-bit across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// One producer's snapshot: a boolean adjacency matrix with roughly
/// `deg` observed out-edges per vertex.
fn snapshot(n: usize, deg: usize, rng: &mut Rng) -> CscMatrix<bool> {
    let mut colptr = vec![0usize];
    let mut rows: Vec<u32> = Vec::new();
    let mut vals: Vec<bool> = Vec::new();
    for _ in 0..n {
        let mut col: Vec<u32> = (0..deg).map(|_| (rng.next() % n as u64) as u32).collect();
        col.sort_unstable();
        col.dedup();
        vals.resize(vals.len() + col.len(), true);
        rows.extend_from_slice(&col);
        colptr.push(rows.len());
    }
    CscMatrix::try_new(n, n, colptr, rows, vals).expect("valid snapshot")
}

fn main() {
    let (n, deg, k) = (512usize, 6usize, 24usize);
    let mut rng = Rng(0x5eed_cafe_f00d_d00d);
    let snapshots: Vec<CscMatrix<bool>> = (0..k).map(|_| snapshot(n, deg, &mut rng)).collect();
    println!(
        "unioning {k} boolean adjacency snapshots of a {n}-vertex graph \
         ({} observed edges total)",
        snapshots.iter().map(|s| s.nnz()).sum::<usize>()
    );

    // The service runs the ordinary sharded SpKAdd pipeline; only the
    // combine changed: every collision folds with `|=` instead of `+=`.
    let svc = AggregatorService::with_monoid(n, n, ServiceConfig::with_shards(4), Or);
    for s in &snapshots {
        svc.submit("social-graph", s).expect("submit snapshot");
    }
    let union = svc.finalize("social-graph").expect("finalize union");

    // Dense reference fold: OR every snapshot into an n×n bitmap.
    let mut dense = vec![false; n * n];
    for s in &snapshots {
        for (r, c, v) in s.iter() {
            dense[c as usize * n + r as usize] |= v;
        }
    }

    // Structural identity, column for column.
    for j in 0..n {
        let col = union.col(j);
        let expect: Vec<u32> = (0..n as u32)
            .filter(|&r| dense[j * n + r as usize])
            .collect();
        assert_eq!(col.rows, expect.as_slice(), "column {j} union differs");
        assert!(col.vals.iter().all(|&v| v), "union stores only `true`");
    }
    let edges = union.nnz();
    let possible = n * n;
    println!(
        "union has {edges} distinct edges ({:.2}% of the {possible} possible) — \
         matches the dense reference fold exactly",
        100.0 * edges as f64 / possible as f64
    );
}
