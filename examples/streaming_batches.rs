//! Streaming accumulation in batches — the paper's closing remark: when
//! the k matrices do not fit in memory at once (graph snapshots arriving
//! over time), "we can still arrange input matrices in multiple batches
//! and then use SpKAdd for each batch".
//!
//! A stream of 256 graph-update matrices is folded in batches of 16: each
//! batch is reduced through **one retained `SpkAddPlan`** (the hash
//! tables built for batch 1 serve all 16 batches), and the running total
//! is merged in with one more 2-way add. The result is verified against
//! a one-shot SpKAdd over the whole stream.
//!
//! ```text
//! cargo run --release --example streaming_batches
//! ```

use spkadd_suite::gen::{generate_collection, Pattern};
use spkadd_suite::kadd::add_pair;
use spkadd_suite::sparse::CscMatrix;
use spkadd_suite::{spkadd_with, Algorithm, Options, SpkAdd};

fn main() {
    let (m, n, d) = (1 << 15, 64, 8);
    let stream = generate_collection(Pattern::Rmat, m, n, d, 256, 42);
    println!(
        "streaming {} update matrices ({} total nnz) in batches of 16",
        stream.len(),
        stream.iter().map(|s| s.nnz()).sum::<usize>()
    );

    let opts = Options::default();
    let mut plan = SpkAdd::new(m, n)
        .algorithm(Algorithm::Hash)
        .build()
        .expect("plan");
    let mut running: Option<CscMatrix<f64>> = None;
    let t = spk_obs::now();
    for (i, batch) in stream.chunks(16).enumerate() {
        let refs: Vec<&CscMatrix<f64>> = batch.iter().collect();
        let batch_sum = plan.execute(&refs).expect("batch spkadd");
        running = Some(match running.take() {
            None => batch_sum,
            Some(acc) => add_pair(&acc, &batch_sum, 0, Default::default()),
        });
        if (i + 1) % 4 == 0 {
            println!(
                "  after batch {:>2}: accumulated nnz = {}",
                i + 1,
                running.as_ref().unwrap().nnz()
            );
        }
    }
    let streamed = running.unwrap();
    let t_stream = t.elapsed().as_secs_f64();
    println!(
        "  {} batch reductions through one plan, {} workspace builds total",
        plan.executions(),
        plan.workspace_allocations()
    );

    // Oracle: one-shot SpKAdd over the entire stream.
    let refs: Vec<&CscMatrix<f64>> = stream.iter().collect();
    let t = spk_obs::now();
    let oneshot = spkadd_with(&refs, Algorithm::Hash, &opts).expect("one-shot spkadd");
    let t_oneshot = t.elapsed().as_secs_f64();

    assert!(streamed.approx_eq(&oneshot, 1e-9));
    println!(
        "\nstreamed total matches one-shot SpKAdd ✓  \
         (streamed {:.1} ms, one-shot {:.1} ms; batching trades peak memory \
         for a modest time overhead)",
        t_stream * 1e3,
        t_oneshot * 1e3
    );
}
