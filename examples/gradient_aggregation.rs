//! Sparse all-reduce of gradient updates — the deep-learning motivation
//! from the paper's introduction.
//!
//! Each of `k` workers produces a sparsified gradient for a weight matrix
//! (top-c magnitudes per column, the "algorithmic sparsification" the
//! paper cites). The in-node reduction of those k sparse matrices is
//! exactly SpKAdd; this example compares the naive incremental reduction
//! against the hash algorithm and reports the compression factor typical
//! of overlapping gradient supports.
//!
//! ```text
//! cargo run --release --example gradient_aggregation
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spkadd_suite::sparse::{CooMatrix, CscMatrix};
use spkadd_suite::{spkadd_with, Algorithm, Options};

/// One worker's sparsified gradient: for every column (output neuron),
/// keep `c` large entries; hot rows (popular features) overlap across
/// workers.
fn worker_gradient(rows: usize, cols: usize, c: usize, hot: usize, seed: u64) -> CscMatrix<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(rows, cols, c * cols);
    for j in 0..cols {
        for _ in 0..c {
            // 70% of kept entries hit the shared hot set: workers agree on
            // which features matter, so supports overlap (cf > 1).
            let r = if rng.gen::<f64>() < 0.7 {
                rng.gen_range(0..hot as u32)
            } else {
                rng.gen_range(hot as u32..rows as u32)
            };
            coo.push(r, j as u32, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csc_sum_duplicates()
}

fn main() {
    let (rows, cols) = (1 << 17, 256); // a 131k × 256 weight matrix
    let (k, c, hot) = (64, 32, 4096); // 64 workers, top-32 per column
    let grads: Vec<CscMatrix<f64>> = (0..k)
        .map(|w| worker_gradient(rows, cols, c, hot, 1000 + w as u64))
        .collect();
    let refs: Vec<&CscMatrix<f64>> = grads.iter().collect();
    let total_in: usize = grads.iter().map(|g| g.nnz()).sum();
    println!("aggregating k={k} worker gradients, {total_in} total update entries");

    let opts = Options::default();

    let t = std::time::Instant::now();
    let inc =
        spkadd_with(&refs, Algorithm::TwoWayIncremental, &opts).expect("incremental failed");
    let t_inc = t.elapsed().as_secs_f64();

    let t = std::time::Instant::now();
    let hash = spkadd_with(&refs, Algorithm::Hash, &opts).expect("hash failed");
    let t_hash = t.elapsed().as_secs_f64();

    assert!(inc.approx_eq(&hash, 1e-9));
    println!(
        "aggregated gradient: {} nnz, compression factor {:.1}",
        hash.nnz(),
        total_in as f64 / hash.nnz() as f64
    );
    println!("2-way incremental: {:.1} ms", t_inc * 1e3);
    println!(
        "hash SpKAdd:       {:.1} ms  ({:.1}x faster)",
        t_hash * 1e3,
        t_inc / t_hash
    );
    // Apply the aggregated update (averaging across workers), as the
    // optimizer step would.
    let mut update = hash;
    update.scale(1.0 / k as f64);
    println!("mean update norm ≈ {:.3}", update.value_sum().abs());
}
