//! Sparse all-reduce of gradient updates — the deep-learning motivation
//! from the paper's introduction, served by the sharded aggregation
//! service instead of a single SpKAdd call.
//!
//! Each of `k` workers produces a sparsified gradient for a weight matrix
//! (top-c magnitudes per column, the "algorithmic sparsification" the
//! paper cites) and submits it — from its own thread, as it would in a
//! real trainer — to a shared `AggregatorService` keyed by training step.
//! The service slices every gradient into row-range shards, folds each
//! shard's stream through a cache-budgeted streaming accumulator, and
//! `finalize("step-N")` concatenates the shard partials into the exact
//! aggregate. For reference the same collection is also reduced with a
//! one-shot hash SpKAdd and a naive incremental loop.
//!
//! ```text
//! cargo run --release --example gradient_aggregation
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spkadd_suite::server::{AggregatorService, ServiceConfig};
use spkadd_suite::sparse::{CooMatrix, CscMatrix};
use spkadd_suite::{spkadd_with, Algorithm, Options};

/// One worker's sparsified gradient: for every column (output neuron),
/// keep `c` large entries; hot rows (popular features) overlap across
/// workers.
fn worker_gradient(rows: usize, cols: usize, c: usize, hot: usize, seed: u64) -> CscMatrix<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(rows, cols, c * cols);
    for j in 0..cols {
        for _ in 0..c {
            // 70% of kept entries hit the shared hot set: workers agree on
            // which features matter, so supports overlap (cf > 1).
            let r = if rng.gen::<f64>() < 0.7 {
                rng.gen_range(0..hot as u32)
            } else {
                rng.gen_range(hot as u32..rows as u32)
            };
            coo.push(r, j as u32, rng.gen_range(-1.0..1.0));
        }
    }
    coo.to_csc_sum_duplicates()
}

fn main() {
    let (rows, cols) = (1 << 17, 256); // a 131k × 256 weight matrix
    let (k, c, hot) = (64, 32, 4096); // 64 workers, top-32 per column
    let shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let grads: Vec<CscMatrix<f64>> = (0..k)
        .map(|w| worker_gradient(rows, cols, c, hot, 1000 + w as u64))
        .collect();
    let refs: Vec<&CscMatrix<f64>> = grads.iter().collect();
    let total_in: usize = grads.iter().map(|g| g.nnz()).sum();
    println!("aggregating k={k} worker gradients, {total_in} total update entries");

    // --- the aggregation service: k concurrent producers, S shards ----
    let svc = AggregatorService::new(rows, cols, ServiceConfig::with_shards(shards));
    let t = spk_obs::now();
    std::thread::scope(|scope| {
        for g in &grads {
            let svc = &svc;
            scope.spawn(move || svc.submit("step-0", g).expect("submit failed"));
        }
    });
    let served = svc.finalize("step-0").expect("finalize failed");
    let t_svc = t.elapsed().as_secs_f64();

    let m = svc.metrics();
    println!(
        "service: {shards} shards, {} slices routed, {} batch flushes",
        m.slices_routed(),
        m.batches_flushed()
    );

    // --- reference reductions on the same collection ------------------
    let opts = Options::default();
    let t = spk_obs::now();
    let inc = spkadd_with(&refs, Algorithm::TwoWayIncremental, &opts).expect("incremental failed");
    let t_inc = t.elapsed().as_secs_f64();

    let t = spk_obs::now();
    let hash = spkadd_with(&refs, Algorithm::Hash, &opts).expect("hash failed");
    let t_hash = t.elapsed().as_secs_f64();

    assert!(inc.approx_eq(&hash, 1e-9));
    assert!(
        served.approx_eq(&hash, 1e-9),
        "sharded service must agree with one-shot SpKAdd"
    );
    println!(
        "aggregated gradient: {} nnz, compression factor {:.1}",
        hash.nnz(),
        total_in as f64 / hash.nnz() as f64
    );
    println!("2-way incremental:  {:.1} ms", t_inc * 1e3);
    println!(
        "hash SpKAdd:        {:.1} ms  ({:.1}x faster)",
        t_hash * 1e3,
        t_inc / t_hash
    );
    println!(
        "sharded service:    {:.1} ms end-to-end (submit from {k} threads + finalize)",
        t_svc * 1e3
    );
    // Apply the aggregated update (averaging across workers), as the
    // optimizer step would.
    let mut update = served;
    update.scale(1.0 / k as f64);
    println!("mean update norm ≈ {:.3}", update.value_sum().abs());
}
