//! Finite-element assembly — the paper's third motivating application:
//! summing local element matrices into one global stiffness matrix,
//! "traditionally labeled as one that presents few opportunities for
//! parallelism", which SpKAdd parallelizes trivially.
//!
//! A 1D bar of `E` two-node elements produces `E` local 2×2 stiffness
//! matrices scattered into global coordinates; grouping elements into k
//! batches gives a k-matrix SpKAdd whose sum is the classic tridiagonal
//! stiffness matrix — verified against the analytic pattern.
//!
//! ```text
//! cargo run --release --example fem_assembly
//! ```

use spkadd_suite::sparse::{CooMatrix, CscMatrix};
use spkadd_suite::{Algorithm, SpkAdd};

/// Assembles the elements `[e0, e1)` of a 1D bar into a global-size
/// sparse matrix. Element `e` couples nodes `e` and `e+1` with the local
/// stiffness `[[+s, -s], [-s, +s]]`.
fn element_batch(num_nodes: usize, e0: usize, e1: usize) -> CscMatrix<f64> {
    let mut coo = CooMatrix::with_capacity(num_nodes, num_nodes, 4 * (e1 - e0));
    for e in e0..e1 {
        let (a, b) = (e as u32, e as u32 + 1);
        let s = 1.0 + (e % 7) as f64 * 0.25; // per-element stiffness
        coo.push(a, a, s);
        coo.push(a, b, -s);
        coo.push(b, a, -s);
        coo.push(b, b, s);
    }
    coo.to_csc_sum_duplicates()
}

fn main() {
    let elements = 200_000;
    let num_nodes = elements + 1;
    let k = 64; // assembly batches (e.g. per-thread element chunks)
    let per = elements / k;

    let batches: Vec<CscMatrix<f64>> = (0..k)
        .map(|i| {
            let e0 = i * per;
            let e1 = if i + 1 == k { elements } else { (i + 1) * per };
            element_batch(num_nodes, e0, e1)
        })
        .collect();
    let refs: Vec<&CscMatrix<f64>> = batches.iter().collect();
    println!(
        "assembling {elements} elements into a {num_nodes}x{num_nodes} global matrix \
         from k={k} batches"
    );

    // Solvers reassemble every load/time step at a fixed mesh; a retained
    // plan makes step 2+ reuse the hash tables built for step 1.
    let mut plan = SpkAdd::new(num_nodes, num_nodes)
        .algorithm(Algorithm::Hash)
        .build()
        .expect("plan");
    let t = std::time::Instant::now();
    let mut global = plan.execute(&refs).expect("assembly");
    let t_first = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    plan.execute_into(&refs, &mut global)
        .expect("reassembly (workspaces + output buffers reused)");
    println!(
        "assembled in {:.1} ms (reassembly {:.1} ms through the retained plan): \
         {} stored entries",
        t_first * 1e3,
        t.elapsed().as_secs_f64() * 1e3,
        global.nnz()
    );

    // The 1D bar stiffness is tridiagonal: 2 entries in the boundary
    // columns, 3 in interior columns.
    assert_eq!(global.nnz(), 3 * num_nodes - 2);
    assert_eq!(global.col_nnz(0), 2);
    assert_eq!(global.col_nnz(num_nodes / 2), 3);
    // Row sums of a pure-stiffness assembly vanish (rigid-body mode).
    let sum = global.value_sum();
    assert!(
        sum.abs() < 1e-6,
        "stiffness row sums should cancel, got {sum}"
    );
    println!("tridiagonal structure and rigid-body nullity verified ✓");
}
