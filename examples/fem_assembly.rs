//! Finite-element assembly — the paper's third motivating application:
//! summing local element matrices into one global stiffness matrix,
//! "traditionally labeled as one that presents few opportunities for
//! parallelism", which SpKAdd parallelizes trivially.
//!
//! A 1D bar of `E` two-node elements produces `E` local 2×2 stiffness
//! matrices scattered into global coordinates; grouping elements into k
//! batches gives a k-matrix SpKAdd whose sum is the classic tridiagonal
//! stiffness matrix — verified against the analytic pattern.
//!
//! Solvers reassemble at every load/time step over a *fixed mesh*: the
//! sparsity of every batch (and of the global matrix) never changes,
//! only the element stiffnesses do. That is exactly the workload the
//! plan's pattern cache targets — iteration 0 pays the symbolic phase
//! and caches the output structure, every later iteration fingerprints
//! the inputs, hits, and runs numeric-only.
//!
//! ```text
//! cargo run --release --example fem_assembly
//! ```

use spkadd_suite::sparse::{CooMatrix, CscMatrix};
use spkadd_suite::{Algorithm, PatternOutcome, SpkAdd};

/// Assembles the elements `[e0, e1)` of a 1D bar into a global-size
/// sparse matrix. Element `e` couples nodes `e` and `e+1` with the local
/// stiffness `[[+s, -s], [-s, +s]]`, scaled by the load-step `modulus`.
fn element_batch(num_nodes: usize, e0: usize, e1: usize, modulus: f64) -> CscMatrix<f64> {
    let mut coo = CooMatrix::with_capacity(num_nodes, num_nodes, 4 * (e1 - e0));
    for e in e0..e1 {
        let (a, b) = (e as u32, e as u32 + 1);
        let s = modulus * (1.0 + (e % 7) as f64 * 0.25); // per-element stiffness
        coo.push(a, a, s);
        coo.push(a, b, -s);
        coo.push(b, a, -s);
        coo.push(b, b, s);
    }
    coo.to_csc_sum_duplicates()
}

/// A nonlinear solver's "update the element stiffnesses" step: same
/// mesh, same sparsity, new values.
fn soften(batches: &mut [CscMatrix<f64>], factor: f64) {
    for batch in batches {
        for v in batch.values_mut() {
            *v *= factor;
        }
    }
}

fn main() {
    let elements = 200_000;
    let num_nodes = elements + 1;
    let k = 64; // assembly batches (e.g. per-thread element chunks)
    let per = elements / k;
    let steps = 8; // load steps over the fixed mesh

    let mut batches: Vec<CscMatrix<f64>> = (0..k)
        .map(|i| {
            let e0 = i * per;
            let e1 = if i + 1 == k { elements } else { (i + 1) * per };
            element_batch(num_nodes, e0, e1, 1.0)
        })
        .collect();
    println!(
        "assembling {elements} elements into a {num_nodes}x{num_nodes} global matrix \
         from k={k} batches, {steps} load steps"
    );

    // Retained plan + pattern cache: step 0 is the cold assembly (symbolic
    // + numeric), steps 1+ skip the symbolic phase via a cache hit.
    let mut plan = SpkAdd::new(num_nodes, num_nodes)
        .algorithm(Algorithm::Hash)
        .pattern_cache(2)
        .build()
        .expect("plan");

    let mut global = CscMatrix::zeros(num_nodes, num_nodes);
    let mut cold_ms = 0.0;
    let mut warm_ms = 0.0;
    for step in 0..steps {
        if step > 0 {
            soften(&mut batches, 0.97); // new stiffnesses, identical sparsity
        }
        let refs: Vec<&CscMatrix<f64>> = batches.iter().collect();
        let t = spk_obs::now();
        let stats = plan
            .execute_into_timed(&refs, &mut global)
            .expect("assembly");
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;

        let outcome = match stats.pattern {
            PatternOutcome::Hit => "hit  (numeric-only)",
            PatternOutcome::Miss => "miss (cold symbolic)",
            PatternOutcome::Bypassed => "bypassed",
            PatternOutcome::Disabled => "disabled",
        };
        println!(
            "step {step}: {wall_ms:6.1} ms  symbolic {:6.1} ms  numeric {:6.1} ms  \
             fingerprint {:.3} ms  pattern {outcome}",
            stats.symbolic * 1e3,
            stats.numeric * 1e3,
            stats.fingerprint * 1e3,
        );

        // The fixed mesh makes the cache outcome deterministic: one miss,
        // then hits that never rerun the symbolic phase.
        if step == 0 {
            assert_eq!(stats.pattern, PatternOutcome::Miss);
            assert!(!stats.symbolic_skipped);
            cold_ms = wall_ms;
        } else {
            assert_eq!(stats.pattern, PatternOutcome::Hit);
            assert!(stats.symbolic_skipped);
            assert_eq!(stats.symbolic, 0.0);
            warm_ms += wall_ms;
        }
    }
    let warm_avg = warm_ms / (steps - 1) as f64;
    let cache = plan.pattern_stats().expect("cache enabled");
    println!(
        "cold step {cold_ms:.1} ms, warm steps avg {warm_avg:.1} ms \
         ({:.2}x) — cache: {} hits / {} misses",
        cold_ms / warm_avg,
        cache.hits,
        cache.misses
    );

    // The 1D bar stiffness is tridiagonal: 2 entries in the boundary
    // columns, 3 in interior columns.
    assert_eq!(global.nnz(), 3 * num_nodes - 2);
    assert_eq!(global.col_nnz(0), 2);
    assert_eq!(global.col_nnz(num_nodes / 2), 3);
    // Row sums of a pure-stiffness assembly vanish (rigid-body mode).
    let sum = global.value_sum();
    assert!(
        sum.abs() < 1e-6,
        "stiffness row sums should cancel, got {sum}"
    );
    println!("tridiagonal structure and rigid-body nullity verified ✓");
}
