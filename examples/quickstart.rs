//! Quickstart: add a collection of sparse matrices four ways and verify
//! they agree — including the plan/execute front door, which reuses its
//! kernel workspaces across repeated executions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spkadd_suite::gen::{generate_collection, Pattern};
use spkadd_suite::sparse::CscMatrix;
use spkadd_suite::{spkadd_auto, spkadd_with, Algorithm, Options, SpkAdd};

fn main() {
    // 16 sparse matrices, 65 536 × 64, ~32 nonzeros per column — the
    // paper's ER workload in miniature.
    let mats = generate_collection(Pattern::Er, 1 << 16, 64, 32, 16, 42);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let total_in: usize = mats.iter().map(|m| m.nnz()).sum();
    println!(
        "adding k={} matrices of {}x{}, {} input nonzeros",
        mats.len(),
        mats[0].nrows(),
        mats[0].ncols(),
        total_in
    );

    let opts = Options::default();

    // 1. The paper's winner: hash SpKAdd.
    let t = spk_obs::now();
    let hash = spkadd_with(&refs, Algorithm::Hash, &opts).expect("hash spkadd");
    println!(
        "hash:        {} output nnz (cf = {:.3}) in {:.1} ms",
        hash.nnz(),
        total_in as f64 / hash.nnz() as f64,
        t.elapsed().as_secs_f64() * 1e3
    );

    // 2. The classic baseline: a balanced tree of pairwise merges.
    let t = spk_obs::now();
    let tree = spkadd_with(&refs, Algorithm::TwoWayTree, &opts).expect("tree spkadd");
    println!(
        "2-way tree:  {} output nnz in {:.1} ms",
        tree.nnz(),
        t.elapsed().as_secs_f64() * 1e3
    );

    // 3. Let the library pick (Fig 2 decision surface).
    let t = spk_obs::now();
    let auto = spkadd_auto(&refs, &opts).expect("auto spkadd");
    println!(
        "auto:        {} output nnz in {:.1} ms",
        auto.nnz(),
        t.elapsed().as_secs_f64() * 1e3
    );

    // 4. The front door for repeat callers: build a plan once, execute it
    //    many times — hash tables and scratch persist between calls.
    let (nrows, ncols) = (mats[0].nrows(), mats[0].ncols());
    let mut plan = SpkAdd::new(nrows, ncols)
        .algorithm(Algorithm::Auto)
        .build()
        .expect("plan");
    let t = spk_obs::now();
    let first = plan.execute(&refs).expect("planned spkadd");
    let t_first = t.elapsed().as_secs_f64();
    let t = spk_obs::now();
    let second = plan.execute(&refs).expect("planned spkadd");
    let t_second = t.elapsed().as_secs_f64();
    println!(
        "plan:        {} output nnz in {:.1} ms cold, {:.1} ms warm \
         ({} workspace builds total across {} executions)",
        first.nnz(),
        t_first * 1e3,
        t_second * 1e3,
        plan.workspace_allocations(),
        plan.executions()
    );

    assert!(hash.approx_eq(&tree, 1e-9), "hash and tree must agree");
    assert!(hash.approx_eq(&auto, 1e-9), "hash and auto must agree");
    assert!(hash.approx_eq(&first, 1e-9), "hash and plan must agree");
    assert!(first.approx_eq(&second, 0.0), "plan must be deterministic");
    println!("all four paths agree ✓");
}
