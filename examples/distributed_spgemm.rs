//! Distributed SpGEMM via simulated sparse SUMMA — the paper's Fig 5
//! pipeline and Fig 6 comparison, end to end.
//!
//! A protein-similarity-like matrix is squared (`C = A·A`, the Markov-
//! clustering expansion step) on a simulated process grid. The local
//! multiplies and the SpKAdd reduction are timed separately for the three
//! reduction configurations the paper compares.
//!
//! ```text
//! cargo run --release --example distributed_spgemm
//! ```

use spkadd_suite::gen::protein_similarity_matrix;
use spkadd_suite::summa::{run_summa, ReductionKind, SummaConfig};

fn main() {
    let n = 4096;
    let a = protein_similarity_matrix(n, 16, 64, 0.85, 7);
    println!(
        "C = A·A with A {n}x{n} ({} nnz) on a 4x4 simulated process grid\n",
        a.nnz()
    );

    let mut reference = None;
    for reduction in [
        ReductionKind::Heap,
        ReductionKind::SortedHash,
        ReductionKind::UnsortedHash,
    ] {
        let report = run_summa(
            &a,
            &a,
            &SummaConfig {
                grid: 4,
                reduction,
                threads: 0,
            },
        )
        .expect("summa failed");
        println!(
            "{:<14} multiply {:>8.1} ms   spkadd {:>8.1} ms   broadcast {:>6.1} MB",
            reduction.name(),
            report.multiply_total() * 1e3,
            report.spkadd_total() * 1e3,
            report.bytes_broadcast as f64 / 1e6
        );
        match &reference {
            None => reference = Some(report.result),
            Some(r) => assert!(
                report.result.approx_eq(r, 1e-6),
                "{} changed the product",
                reduction.name()
            ),
        }
    }
    println!("\nall reductions produce the same product ✓");
    println!(
        "expected shape (paper Fig 6): hash SpKAdd an order of magnitude \
         under heap; unsorted hash trims the multiply further"
    );
}
