//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Implements the subset of the criterion API the workspace's benches use
//! — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkId`], [`Bencher::iter`], [`Throughput`] — with a simple
//! best-of-samples wall-clock measurement instead of criterion's full
//! statistical pipeline. Each benchmark prints one line:
//!
//! ```text
//! group/id                time: 12.345 ms/iter    (87.3 elem/s)
//! ```
//!
//! Good enough to compare algorithms and observe scaling trends; not a
//! replacement for criterion's confidence intervals.

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`, e.g. `hash/d64_k8`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// Just the parameter, for single-function parameter sweeps.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Work-per-iteration declaration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    best: Option<Duration>,
}

impl Bencher {
    /// Times `f`, keeping the best of `samples` runs (after one warmup).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let mut best = Duration::MAX;
        for _ in 0..self.samples.max(1) {
            let t0 = Instant::now();
            black_box(f());
            best = best.min(t0.elapsed());
        }
        self.best = Some(best);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark (criterion's default 100
    /// is far too slow for a shim; callers set 10–20 anyway).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares per-iteration work so results include a rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            best: None,
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id.0);
        match b.best {
            Some(best) => {
                let rate = match self.throughput {
                    Some(Throughput::Elements(n)) if !best.is_zero() => {
                        format!("    ({:.1} elem/s)", n as f64 / best.as_secs_f64())
                    }
                    Some(Throughput::Bytes(n)) if !best.is_zero() => {
                        format!("    ({:.1} MB/s)", n as f64 / best.as_secs_f64() / 1e6)
                    }
                    _ => String::new(),
                };
                println!("{label:<48} time: {best:>12.3?}/iter{rate}");
            }
            None => println!("{label:<48} (no measurement: Bencher::iter never called)"),
        }
        self
    }

    /// Ends the group (line break in the report).
    pub fn finish(self) {
        println!();
    }
}

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Registers benchmark functions under one group name, like criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the registered groups; ignores the harness
/// flags cargo-bench passes (`--bench`, filters).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` also builds bench targets; when it *runs* them
            // it passes `--test`, under which criterion executes nothing.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_pipeline_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut ran = 0u32;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| ran += 1);
        });
        group.finish();
        assert!(ran >= 4, "warmup + 3 samples expected, got {ran}");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", "b").0, "a/b");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
        assert_eq!(BenchmarkId::from("x").0, "x");
    }
}
