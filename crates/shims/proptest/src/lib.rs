//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`] /
//! [`collection::btree_map`], [`bool::ANY`], [`test_runner::Config`]
//! (a.k.a. `ProptestConfig`), and the [`proptest!`] macro.
//!
//! Semantics: each test runs `cases` times with values drawn from a
//! deterministic per-case RNG, and failures report the case number. The
//! big thing real proptest adds that this shim does not is *shrinking* —
//! on failure you get the raw counterexample, not a minimal one.

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) base: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot generate from empty range"
                    );
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot generate from empty range"
                    );
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),* $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, G)
    );
}

pub mod collection {
    //! Strategies for collections of strategy-generated elements.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Size specification: an exact count or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.hi <= self.lo + 1 {
                return self.lo;
            }
            self.lo + (rng.next_u64() as usize) % (self.hi - self.lo)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`fn@vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s. The size bounds the number of insertion
    /// attempts; duplicate keys collapse, as in real proptest.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The strategy instance (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of a run; deterministic so failures
        /// reproduce.
        pub fn for_case(case: u64) -> Self {
            Self {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    let mut run = || {
                        $(
                            let $pat = $crate::strategy::Strategy::generate(
                                &($strat),
                                &mut rng,
                            );
                        )*
                        $body
                    };
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1usize..10).prop_flat_map(|n| {
            (
                crate::strategy::Just(n),
                crate::collection::vec(0u32..n as u32, 0..20),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn flat_map_respects_dependency(pair in pair_strategy()) {
            let (n, items) = pair;
            for v in items {
                prop_assert!((v as usize) < n);
            }
        }

        #[test]
        fn vec_sizes_bounded(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn btree_map_keys_unique(
            m in crate::collection::btree_map(0u32..8, 0i32..100, 0..32),
        ) {
            prop_assert!(m.len() <= 8, "at most 8 distinct keys possible");
        }

        #[test]
        fn bools_take_both_values(v in crate::collection::vec(crate::bool::ANY, 64..65)) {
            // 64 coin flips virtually never agree unanimously.
            let trues = v.iter().filter(|&&b| b).count();
            prop_assert!(trues > 0 && trues < 64);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn exact_size_vec() {
        let strat = crate::collection::vec(0u32..5, 7usize);
        let mut rng = crate::test_runner::TestRng::for_case(1);
        assert_eq!(
            crate::strategy::Strategy::generate(&strat, &mut rng).len(),
            7
        );
    }
}
