//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no network access to crates.io, so this shim
//! provides exactly the subset of rayon's API the workspace uses, with the
//! same semantics:
//!
//! * [`current_num_threads`] / [`current_thread_index`];
//! * [`ThreadPoolBuilder`] → [`ThreadPool::install`] (a scoped thread-count
//!   override rather than a persistent pool);
//! * `into_par_iter()` on `Vec<T>` and integer ranges, `par_chunks(n)` on
//!   slices, with `map` / `for_each` / `zip` / `collect`.
//!
//! Fork-join parallelism is real: work is split into one chunk per worker
//! and executed under [`std::thread::scope`]. Chunk results are stitched
//! back in order, so `map().collect()` preserves input order exactly like
//! rayon's indexed parallel iterators. When the effective thread count is 1
//! (or the input is tiny) everything runs inline with zero overhead.

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

use std::cell::Cell;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Worker index within a fork-join region, for
    /// [`current_thread_index`].
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(|t| t.get());
    if installed != 0 {
        return installed;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Index of the current worker inside a parallel region, `None` outside.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|i| i.get())
}

/// Error from [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (ambient) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = ambient parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool": a thread-count override that parallel operations inside
/// [`ThreadPool::install`] observe.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count installed.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let effective = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        let prev = POOL_THREADS.with(|t| t.replace(effective));
        let out = f();
        POOL_THREADS.with(|t| t.set(prev));
        out
    }
}

/// Runs `f` over `items`, split into one contiguous chunk per worker.
/// Returns the per-chunk outputs in chunk order.
fn fork_join<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Vec<T>) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || items.len() <= 1 {
        let prev = WORKER_INDEX.with(|i| i.replace(Some(0)));
        let out = vec![f(items)];
        WORKER_INDEX.with(|i| i.set(prev));
        return out;
    }
    let chunks = split_into_chunks(items, threads);
    let pool_threads = POOL_THREADS.with(|t| t.get());
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(idx, chunk)| {
                s.spawn(move || {
                    POOL_THREADS.with(|t| t.set(pool_threads));
                    WORKER_INDEX.with(|i| i.set(Some(idx)));
                    f(chunk)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    })
}

/// Splits `items` into at most `parts` contiguous non-empty chunks.
fn split_into_chunks<T>(mut items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let parts = parts.min(n).max(1);
    let mut out = Vec::with_capacity(parts);
    // Split off from the back so each drain is O(chunk).
    for p in (1..parts).rev() {
        let cut = (p * n).div_ceil(parts);
        out.push(items.split_off(cut));
    }
    out.push(items);
    out.reverse();
    out
}

/// An in-memory parallel iterator over an ordered set of items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        fork_join(self.items, |chunk| {
            for item in chunk {
                f(item);
            }
        });
    }

    /// Maps every item through `f` in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let mapped = fork_join(self.items, |chunk| {
            chunk.into_iter().map(&f).collect::<Vec<R>>()
        });
        ParIter {
            items: mapped.into_iter().flatten().collect(),
        }
    }

    /// Pairs this iterator with another, element-wise.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
        }
    }

    /// Gathers the items into any ordinary collection.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items in parallel (chunk partials, then a serial fold).
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        fork_join(self.items, |chunk| chunk.into_iter().sum::<S>())
            .into_iter()
            .sum()
    }
}

/// Conversion into a [`ParIter`] — the shim's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type produced by the iterator.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}
impl_range_par_iter!(usize, u32, u64, i32, i64);

/// Slice extension providing `par_chunks` — the shim's `ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over contiguous chunks of `chunk_size` items.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(chunk_size.max(1)).collect(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use super::{IntoParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0usize..100).into_par_iter().for_each(|x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn zip_pairs_in_order() {
        let a: Vec<usize> = (0..10).collect();
        let b: Vec<usize> = (10..20).collect();
        let sums: Vec<usize> = a
            .into_par_iter()
            .zip(b.into_par_iter())
            .map(|(x, y)| x + y)
            .collect();
        assert_eq!(sums, (10..30).step_by(2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_tiles() {
        let v: Vec<u32> = (0..10).collect();
        let lens: Vec<usize> = v.par_chunks(4).map(|c| c.len()).collect();
        assert_eq!(lens, vec![4, 4, 2]);
    }

    #[test]
    fn install_overrides_thread_count() {
        let n = ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap()
            .install(current_num_threads);
        assert_eq!(n, 3);
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn split_into_chunks_is_exhaustive() {
        for n in 0..20 {
            for parts in 1..6 {
                let v: Vec<usize> = (0..n).collect();
                let chunks = split_into_chunks(v, parts);
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>());
            }
        }
    }
}
