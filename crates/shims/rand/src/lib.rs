//! Offline stand-in for [rand](https://crates.io/crates/rand).
//!
//! Provides the subset of the rand 0.8 API this workspace uses:
//! [`rngs::SmallRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen` / `gen_range` over integer and float
//! ranges. The generator is xoshiro256++ (the same family real `SmallRng`
//! uses on 64-bit targets) seeded through SplitMix64, so streams are
//! deterministic, well distributed, and fast.
//!
//! The exact streams differ from the real crate's — all workspace tests
//! assert distributional or determinism properties, never specific draws.

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds; only the `seed_from_u64` entry point is used.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value uniformly from the type's full/unit range.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_sample_range!(f32, f64);

/// Convenience extension over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// family the real `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-8i32..8);
            assert!((-8..8).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
