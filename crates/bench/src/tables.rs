//! Shared driver for the runtime tables (Table III = ER, Table IV = RMAT):
//! all eight SpKAdd algorithms across a (k, d) grid, fastest per column
//! starred, quadratic algorithms skipped past a work guard (the paper's
//! "could not run" entries).
//!
//! Each (algorithm, d, k) cell holds one `SpkAddPlan` across its reps, so
//! repeated timings measure the steady-state (workspace-reused) path.
//! `--algorithms hash,sliding-hash,...` restricts the rows (names parsed
//! with `Algorithm::from_str`).

use crate::{fmt_secs, print_table, refs, time_best, workloads, Args};
use spk_sparse::CscMatrix;
use spkadd::{Algorithm, Options, SpkAdd};

/// Runs one runtime table and prints it.
///
/// * `gen` — collection generator `(m, n, d, k, seed)`;
/// * `default_d` / `full_d` — the d sweep at harness/paper scale.
pub fn run_runtime_table(
    args: &Args,
    pattern: &str,
    gen: fn(usize, usize, usize, usize, u64) -> Vec<CscMatrix<f64>>,
    default_d: &[usize],
    full_d: &[usize],
) {
    let full = args.flag("full");
    let m = args.get("rows", if full { 1 << 22 } else { 1 << 16 });
    let n = args.get("cols", if full { 1024 } else { 64 });
    let ks = args.get_list("k", &[4, 32, 128]);
    let ds = args.get_list("d", if full { full_d } else { default_d });
    let threads = args.get("threads", 0usize);
    let reps = args.get("reps", 1usize);
    let guard: f64 = args.get("guard", 1.5e9);

    let mut opts = Options::default();
    opts.threads = threads;
    opts.validate_sorted = false; // generated inputs are sorted

    let algs = algorithms_filter(args);

    println!(
        "Runtime table (sec): pattern={pattern}, rows={m}, cols={n}, threads={}",
        if threads == 0 {
            rayon::current_num_threads()
        } else {
            threads
        }
    );

    let mut header = vec!["Algorithm".to_string()];
    for &d in &ds {
        for &k in &ks {
            header.push(format!("d={d},k={k}"));
        }
    }
    let mut rows_out: Vec<Vec<String>> = vec![header];
    let mut cells: Vec<Vec<Option<f64>>> = vec![Vec::new(); algs.len()];

    for &d in &ds {
        for &k in &ks {
            let mats = gen(m, n, d, k, 42);
            let mrefs = refs(&mats);
            let inz = workloads::total_nnz(&mats) as f64;
            for (ai, alg) in algs.iter().enumerate() {
                let est = estimated_work(*alg, inz, k);
                if est > guard {
                    cells[ai].push(None);
                    continue;
                }
                // One plan per cell, reused across the reps: the timing
                // measures the steady-state (workspace-retained) path.
                let mut plan = SpkAdd::new(m, n)
                    .algorithm(*alg)
                    .options(opts.clone())
                    .build::<f64>()
                    .expect("plan build failed");
                let (_, secs) = time_best(reps, || plan.execute(&mrefs).expect("spkadd failed"));
                cells[ai].push(Some(secs));
            }
        }
    }

    // Mark the fastest algorithm per column with '*' (the paper's green).
    let ncols = cells[0].len();
    let mut best = vec![f64::INFINITY; ncols];
    for row in &cells {
        for (c, v) in row.iter().enumerate() {
            if let Some(t) = v {
                best[c] = best[c].min(*t);
            }
        }
    }
    for (ai, alg) in algs.iter().enumerate() {
        let mut row = vec![alg.name().to_string()];
        for (c, v) in cells[ai].iter().enumerate() {
            row.push(match v {
                Some(t) if *t == best[c] => format!("{}*", fmt_secs(*t)),
                Some(t) => fmt_secs(*t),
                None => "—".to_string(),
            });
        }
        rows_out.push(row);
    }
    print_table(&rows_out);
    println!("(* = fastest in column; — = skipped by the work guard)");
}

/// The algorithm rows to run: the paper's eight, or the comma-separated
/// `--algorithms` subset (parsed via `Algorithm::from_str`, so both the
/// kebab tokens and the table names are accepted).
pub fn algorithms_filter(args: &Args) -> Vec<Algorithm> {
    match args.get("algorithms", String::new()) {
        s if s.is_empty() => Algorithm::ALL.to_vec(),
        s => s
            .split(',')
            .map(|tok| {
                tok.parse::<Algorithm>()
                    .unwrap_or_else(|e| panic!("--algorithms: {e}"))
            })
            .collect(),
    }
}

/// Rough work estimate used for the "could not run" guard.
pub fn estimated_work(alg: Algorithm, total_input_nnz: f64, k: usize) -> f64 {
    match alg {
        Algorithm::TwoWayIncremental => total_input_nnz * k as f64 / 2.0,
        Algorithm::LibIncremental => total_input_nnz * k as f64 * 2.0,
        Algorithm::LibTree => total_input_nnz * (k as f64).log2().max(1.0) * 4.0,
        _ => total_input_nnz * (k as f64).log2().max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithms_filter_parses_subset() {
        let a = Args::from_vec(vec!["--algorithms".into(), "hash,Sliding Hash".into()]);
        assert_eq!(
            algorithms_filter(&a),
            vec![Algorithm::Hash, Algorithm::SlidingHash]
        );
        let none = Args::from_vec(vec![]);
        assert_eq!(algorithms_filter(&none), Algorithm::ALL.to_vec());
    }

    #[test]
    fn guard_orders_algorithms() {
        let inz = 1e6;
        assert!(
            estimated_work(Algorithm::LibIncremental, inz, 64)
                > estimated_work(Algorithm::TwoWayIncremental, inz, 64)
        );
        assert!(
            estimated_work(Algorithm::TwoWayIncremental, inz, 64)
                > estimated_work(Algorithm::Hash, inz, 64)
        );
    }
}
