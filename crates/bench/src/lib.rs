//! # spk-bench — harness utilities for regenerating the paper's tables
//! and figures.
//!
//! Every table/figure has a dedicated binary under `src/bin/` (see
//! DESIGN.md's per-experiment index). This library holds what they share:
//! a tiny flag parser, wall-clock helpers, an aligned table printer, and
//! the paper-shaped workload constructors.
//!
//! All harnesses run at a laptop scale by default and accept
//! `--rows/--cols/--k/--d/--threads` overrides plus `--full` for
//! paper-scale parameters (see EXPERIMENTS.md for what was actually run).

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

pub mod tables;

use spk_sparse::CscMatrix;
use std::time::Instant;

/// Minimal `--flag value` / `--flag` parser over `std::env::args`.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn parse() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// From an explicit vector (tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// `true` if `--name` appears.
    pub fn flag(&self, name: &str) -> bool {
        let want = format!("--{name}");
        self.raw.iter().any(|a| a == &want)
    }

    /// The value following `--name`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let want = format!("--{name}");
        for w in self.raw.windows(2) {
            if w[0] == want {
                if let Ok(v) = w[1].parse() {
                    return v;
                }
            }
        }
        default
    }

    /// Comma-separated list following `--name`, or `default`.
    pub fn get_list(&self, name: &str, default: &[usize]) -> Vec<usize> {
        let want = format!("--{name}");
        for w in self.raw.windows(2) {
            if w[0] == want {
                let parsed: Vec<usize> = w[1].split(',').filter_map(|t| t.parse().ok()).collect();
                if !parsed.is_empty() {
                    return parsed;
                }
            }
        }
        default.to_vec()
    }
}

/// Times one invocation of `f` in seconds.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Runs `f` `reps` times and returns (last result, best seconds).
pub fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let (r, t) = time_once(&mut f);
        best = best.min(t);
        out = Some(r);
    }
    (out.unwrap(), best)
}

/// Prints an aligned text table; the first row is the header.
pub fn print_table(rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap();
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    for (i, row) in rows.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(c, cell)| format!("{cell:>width$}", width = widths[c]))
            .collect();
        println!("{}", line.join("  "));
        if i == 0 {
            println!(
                "{}",
                "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1))
            );
        }
    }
}

/// Formats seconds with 4 significant decimals, like the paper's tables.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.4}")
}

/// Paper-shaped workloads at harness scale.
pub mod workloads {
    use super::*;
    use spk_gen::{generate_collection, protein_collection, Pattern, ProteinConfig};

    /// The paper's ER SpKAdd input: `k` matrices of `m × n`, `d` nnz/col.
    pub fn er_collection(m: usize, n: usize, d: usize, k: usize, seed: u64) -> Vec<CscMatrix<f64>> {
        generate_collection(Pattern::Er, m, n, d, k, seed)
    }

    /// The paper's RMAT (G500) SpKAdd input.
    pub fn rmat_collection(
        m: usize,
        n: usize,
        d: usize,
        k: usize,
        seed: u64,
    ) -> Vec<CscMatrix<f64>> {
        generate_collection(Pattern::Rmat, m, n, d, k, seed)
    }

    /// Eukarya-like SpGEMM intermediates: k matrices with cf ≈ 22.6
    /// (Fig 3(c), Fig 4(d)).
    pub fn eukarya_like(m: usize, n: usize, d: usize, k: usize, seed: u64) -> Vec<CscMatrix<f64>> {
        protein_collection(
            &ProteinConfig {
                nrows: m,
                ncols: n,
                d,
                k,
                cf: 22.6,
                skew: 0.6,
            },
            seed,
        )
    }

    /// Total input nonzeros of a collection.
    pub fn total_nnz(mats: &[CscMatrix<f64>]) -> usize {
        mats.iter().map(|m| m.nnz()).sum()
    }
}

/// Borrow helper: `&[CscMatrix] -> Vec<&CscMatrix>`.
pub fn refs(mats: &[CscMatrix<f64>]) -> Vec<&CscMatrix<f64>> {
    mats.iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_flags_values_lists() {
        let a = Args::from_vec(vec![
            "--full".into(),
            "--rows".into(),
            "1024".into(),
            "--d".into(),
            "4,8,16".into(),
        ]);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get("rows", 0usize), 1024);
        assert_eq!(a.get("cols", 7usize), 7);
        assert_eq!(a.get_list("d", &[1]), vec![4, 8, 16]);
        assert_eq!(a.get_list("k", &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn timing_helpers_return_positive() {
        let (v, t) = time_once(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
        let (v, t) = time_best(3, || 2 * 2);
        assert_eq!(v, 4);
        assert!(t >= 0.0);
    }

    #[test]
    fn workload_shapes() {
        let ms = workloads::er_collection(256, 8, 4, 4, 1);
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0].shape(), (256, 8));
        assert!(workloads::total_nnz(&ms) > 0);
        let e = workloads::eukarya_like(512, 16, 8, 4, 2);
        assert_eq!(e.len(), 4);
    }
}
