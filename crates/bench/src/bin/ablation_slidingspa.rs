//! §IV-B(b) ablation: the row-partitioned (sliding) SPA.
//!
//! The paper observes that "the benefits of sliding hash can also be
//! observed in the SPA algorithm if we partition the SPA array based on
//! row indices \[16\]". This harness compares plain SPA, sliding SPA, hash,
//! and sliding hash on workloads with growing row counts — plain SPA's
//! O(m)-per-thread array falls out of cache as m grows, which is exactly
//! when partitioning pays.
//!
//! Usage: `cargo run --release -p spk-bench --bin ablation_slidingspa
//! [--cols C] [--d D] [--k K] [--threads T] [--reps N]`

use spk_bench::{fmt_secs, print_table, refs, time_best, workloads, Args};
use spkadd::{Algorithm, Options};

fn main() {
    let args = Args::parse();
    let n = args.get("cols", 64usize);
    let d = args.get("d", 256usize);
    let k = args.get("k", 64usize);
    let threads = args.get("threads", 0usize);
    let reps = args.get("reps", 3usize);

    println!("Sliding-SPA ablation: cols={n}, d={d}, k={k} (ER splits), growing rows");
    let mut rows_out = vec![vec![
        "rows".to_string(),
        "SPA (s)".to_string(),
        "Sliding SPA (s)".to_string(),
        "Hash (s)".to_string(),
        "Sliding Hash (s)".to_string(),
    ]];
    for shift in [16usize, 18, 20, 22] {
        let m = 1usize << shift;
        let mats = workloads::er_collection(m, n, d, k, 42 + shift as u64);
        let mrefs = refs(&mats);
        let mut opts = Options::default();
        opts.threads = threads;
        opts.validate_sorted = false;
        let mut row = vec![format!("2^{shift}")];
        let mut reference: Option<spk_sparse::CscMatrix<f64>> = None;
        for alg in [
            Algorithm::Spa,
            Algorithm::SlidingSpa,
            Algorithm::Hash,
            Algorithm::SlidingHash,
        ] {
            // One plan per (rows, algorithm) cell, reused across reps.
            let mut plan = spkadd::SpkAdd::new(m, n)
                .algorithm(alg)
                .options(opts.clone())
                .build::<f64>()
                .expect("plan build failed");
            let (out, secs) = time_best(reps, || plan.execute(&mrefs).expect("spkadd failed"));
            match &reference {
                None => reference = Some(out),
                Some(r) => assert!(out.approx_eq(r, 1e-9), "{alg} diverged"),
            }
            row.push(fmt_secs(secs));
        }
        rows_out.push(row);
    }
    print_table(&rows_out);
    println!(
        "\nExpected: plain SPA degrades as rows grow past the cache while \
         sliding SPA tracks the hash family — the paper's §IV-B(b) \
         prediction."
    );
}
