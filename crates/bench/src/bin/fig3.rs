//! Fig 3: strong scaling of the SpKAdd algorithms on three workloads:
//! (a) ER, (b) RMAT, (c) Eukarya-like SpGEMM intermediates (cf ≈ 22.6).
//!
//! Prints, per workload, time vs thread count and parallel efficiency for
//! each algorithm. The thread sweep defaults to 1..#cores of the host
//! (the paper sweeps 1..48 on Skylake).
//!
//! Usage: `cargo run --release -p spk-bench --bin fig3 [--rows R]
//! [--cols C] [--k K] [--threads-list 1,2,4] [--reps N]`

use spk_bench::{fmt_secs, print_table, refs, time_best, workloads, Args};
use spk_sparse::CscMatrix;
use spkadd::{Algorithm, Options};

const ALGS: [Algorithm; 6] = [
    Algorithm::Hash,
    Algorithm::SlidingHash,
    Algorithm::TwoWayTree,
    Algorithm::LibTree,
    Algorithm::Spa,
    Algorithm::Heap,
];

fn main() {
    let args = Args::parse();
    let cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2);
    let default_threads: Vec<usize> = {
        let mut t = vec![1usize];
        while *t.last().unwrap() * 2 <= cores {
            t.push(t.last().unwrap() * 2);
        }
        t
    };
    let threads_list = args.get_list("threads-list", &default_threads);
    let reps = args.get("reps", 1usize);
    let m = args.get("rows", 1 << 17);
    let k = args.get("k", 64usize);

    let workload_specs: Vec<(&str, Vec<CscMatrix<f64>>)> = vec![
        (
            "(a) ER d=128",
            workloads::er_collection(m, args.get("cols", 256), 128, k, 42),
        ),
        (
            "(b) RMAT d=64",
            workloads::rmat_collection(m, args.get("cols", 256), 64, k, 43),
        ),
        (
            "(c) Eukarya-like SpGEMM intermediates (cf≈22.6) d=60",
            workloads::eukarya_like(m / 2, args.get("cols", 256), 60, k, 44),
        ),
    ];

    for (name, mats) in &workload_specs {
        let mrefs = refs(mats);
        println!(
            "\nFig 3 {name}: rows={}, cols={}, k={}, input nnz={}",
            mats[0].nrows(),
            mats[0].ncols(),
            mats.len(),
            workloads::total_nnz(mats)
        );
        let mut header = vec!["Algorithm".to_string()];
        for &t in &threads_list {
            header.push(format!("T={t}"));
        }
        header.push("efficiency".to_string());
        let mut rows = vec![header];
        for alg in ALGS {
            let mut row = vec![alg.name().to_string()];
            let mut first = 0.0f64;
            let mut last = 0.0f64;
            for (i, &t) in threads_list.iter().enumerate() {
                let mut opts = Options::default();
                opts.threads = t;
                opts.validate_sorted = false;
                // One plan per (algorithm, T) cell: budgets resolve for
                // that thread count once, reps reuse the workspaces.
                let mut plan = spkadd::SpkAdd::new(mats[0].nrows(), mats[0].ncols())
                    .algorithm(alg)
                    .options(opts)
                    .build::<f64>()
                    .expect("plan build failed");
                let (_, secs) = time_best(reps, || plan.execute(&mrefs).expect("spkadd failed"));
                if i == 0 {
                    first = secs;
                }
                last = secs;
                row.push(fmt_secs(secs));
            }
            let tmax = *threads_list.last().unwrap() as f64;
            let eff = if last > 0.0 { first / last / tmax } else { 0.0 };
            row.push(format!("{:.0}%", eff * 100.0));
            rows.push(row);
        }
        print_table(&rows);
    }
    println!("\nefficiency = speedup(Tmax) / Tmax relative to T=1.");
}
