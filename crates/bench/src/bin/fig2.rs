//! Fig 2: the best-performing algorithm as a function of the number of
//! matrices (k) and their per-column density (d), for ER and RMAT inputs.
//!
//! Prints one winner grid per pattern (the paper's colored heatmaps).
//! Legend: H = Hash, SH = Sliding Hash, 2T = 2-way Tree,
//! 2I = 2-way Incremental, HP = Heap, SP = SPA.
//!
//! Usage: `cargo run --release -p spk-bench --bin fig2 [--rows R]
//! [--cols C] [--k 4,8,...] [--d 16,...] [--threads T] [--guard OPS]`

use spk_bench::{print_table, refs, time_best, workloads, Args};
use spkadd::{Algorithm, Options};

const CONTENDERS: [(Algorithm, &str); 6] = [
    (Algorithm::Hash, "H"),
    (Algorithm::SlidingHash, "SH"),
    (Algorithm::TwoWayTree, "2T"),
    (Algorithm::TwoWayIncremental, "2I"),
    (Algorithm::Heap, "HP"),
    (Algorithm::Spa, "SP"),
];

fn main() {
    let args = Args::parse();
    let m = args.get("rows", 1 << 16);
    let n = args.get("cols", 32usize);
    let ks = args.get_list("k", &[4, 8, 16, 32, 64, 128]);
    let ds = args.get_list("d", &[16, 64, 256, 1024]);
    let threads = args.get("threads", 0usize);
    let guard: f64 = args.get("guard", 1.0e9);
    let reps = args.get("reps", 3usize);

    let mut opts = Options::default();
    opts.threads = threads;
    opts.validate_sorted = false;

    type Gen = fn(usize, usize, usize, usize, u64) -> Vec<spk_sparse::CscMatrix<f64>>;
    for (pattern, gen) in [
        ("ER", workloads::er_collection as Gen),
        ("RMAT", workloads::rmat_collection as Gen),
    ] {
        println!("\nFig 2 ({pattern}): winner per (d, k); rows={m}, cols={n}");
        let mut header = vec!["d \\ k".to_string()];
        header.extend(ks.iter().map(|k| k.to_string()));
        let mut rows_out = vec![header];
        for &d in &ds {
            let mut row = vec![d.to_string()];
            for &k in &ks {
                let mats = gen(m, n, d, k, 42);
                let mrefs = refs(&mats);
                let inz = workloads::total_nnz(&mats) as f64;
                let mut best = ("?", f64::INFINITY);
                for (alg, tag) in CONTENDERS {
                    let est = spk_bench::tables::estimated_work(alg, inz, k);
                    if est > guard {
                        continue;
                    }
                    // One plan per contender cell, reused across reps.
                    let mut plan = spkadd::SpkAdd::new(m, n)
                        .algorithm(alg)
                        .options(opts.clone())
                        .build::<f64>()
                        .expect("plan build failed");
                    let (_, secs) =
                        time_best(reps, || plan.execute(&mrefs).expect("spkadd failed"));
                    if secs < best.1 {
                        best = (tag, secs);
                    }
                }
                row.push(best.0.to_string());
            }
            rows_out.push(row);
        }
        print_table(&rows_out);
    }
    println!("\nLegend: H=Hash SH=SlidingHash 2T=2-wayTree 2I=2-wayIncr HP=Heap SP=SPA");
}
