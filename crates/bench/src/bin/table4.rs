//! Table IV: runtime of all eight SpKAdd algorithms on RMAT (Graph500)
//! collections across a (k, d) grid — the skewed counterpart of Table III.
//!
//! Usage: `cargo run --release -p spk-bench --bin table4 [--full]
//! [--rows R] [--cols C] [--k 4,32,128] [--d 16,64,512] [--threads T]
//! [--reps N] [--guard OPS]`

use spk_bench::tables::run_runtime_table;
use spk_bench::{workloads, Args};

fn main() {
    let args = Args::parse();
    run_runtime_table(
        &args,
        "RMAT",
        workloads::rmat_collection,
        &[16, 64, 512],
        &[16, 64, 512],
    );
}
