//! Introduction-claim ablation: communication-avoiding (3D) SpGEMM uses
//! SpKAdd at *two* phases — within each 2D grid and across grids.
//!
//! This harness sweeps the replication factor (layer count) of the 3D
//! SUMMA simulator and reports, per configuration: local multiply time,
//! intra-layer SpKAdd, inter-layer SpKAdd, and simulated broadcast
//! volume. The simulation keeps a fixed per-layer grid, so it
//! demonstrates the *phase structure* (reduction work appearing at both
//! levels, correctness across layer counts) rather than the
//! communication saving, which comes from shrinking the per-layer grid
//! as layers grow on a fixed process budget.
//!
//! Usage: `cargo run --release -p spk-bench --bin ablation_3d
//! [--n N] [--deg D] [--grid Q] [--layers 1,2,4,8] [--threads T]`

use spk_bench::{fmt_secs, print_table, Args};
use spk_gen::protein_similarity_matrix;
use spk_summa::{run_summa_3d, ReductionKind, SummaConfig};

fn main() {
    let args = Args::parse();
    let n = args.get("n", 8192usize);
    let deg = args.get("deg", 16usize);
    let grid = args.get("grid", 4usize);
    let layers_list = args.get_list("layers", &[1, 2, 4, 8]);
    let threads = args.get("threads", 0usize);

    let a = protein_similarity_matrix(n, deg, 128, 0.85, 42);
    println!(
        "3D SUMMA ablation: C = A·A, A {n}x{n} ({} nnz), {grid}x{grid} grid per layer",
        a.nnz()
    );
    let mut rows = vec![vec![
        "layers".to_string(),
        "multiply (s)".to_string(),
        "SpKAdd intra (s)".to_string(),
        "SpKAdd inter (s)".to_string(),
        "broadcast (MB)".to_string(),
    ]];
    let mut reference: Option<spk_sparse::CscMatrix<f64>> = None;
    for &layers in &layers_list {
        let report = run_summa_3d(
            &a,
            &a,
            &SummaConfig {
                grid,
                reduction: ReductionKind::SortedHash,
                threads,
            },
            layers,
        )
        .expect("3d summa failed");
        match &reference {
            None => reference = Some(report.result),
            Some(r) => assert!(
                report.result.approx_eq(r, 1e-6),
                "{layers}-layer run changed the product"
            ),
        }
        rows.push(vec![
            layers.to_string(),
            fmt_secs(report.multiply_total),
            fmt_secs(report.spkadd_intra_total),
            fmt_secs(report.spkadd_inter_total),
            format!("{:.1}", report.bytes_broadcast as f64 / 1e6),
        ]);
    }
    print_table(&rows);
    println!(
        "\nExpected: the inter-layer SpKAdd grows from ~zero as layers are \
         added while the intra-layer share shrinks — SpKAdd appears at \
         both phases of the 3D algorithm, as the paper's introduction \
         claims. (Total broadcast bytes stay roughly flat here because the \
         per-layer grid is fixed; the real communication saving comes from \
         shrinking it as layers grow.)"
    );
}
