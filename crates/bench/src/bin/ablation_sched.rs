//! §III-A ablation: static vs dynamic (weight-balanced) column scheduling
//! on skewed inputs.
//!
//! The paper: "for matrices with skewed nonzero distributions such as
//! RMAT matrices … a static scheduling of threads hurts the parallel
//! performance". This harness times the hash algorithm under both
//! policies on an RMAT collection and, as a control, on a uniform ER
//! collection where the policies should tie.
//!
//! Usage: `cargo run --release -p spk-bench --bin ablation_sched
//! [--rows R] [--cols C] [--d D] [--k K] [--threads T] [--reps N]`

use spk_bench::{fmt_secs, print_table, refs, time_best, workloads, Args};
use spkadd::{Algorithm, Options, Scheduling};

fn main() {
    let args = Args::parse();
    let m = args.get("rows", 1 << 16);
    let n = args.get("cols", 512usize);
    let d = args.get("d", 64usize);
    let k = args.get("k", 64usize);
    let threads = args.get("threads", 0usize);
    let reps = args.get("reps", 3usize);

    println!(
        "Scheduling ablation: rows={m}, cols={n}, d={d}, k={k}, threads={}",
        if threads == 0 {
            rayon::current_num_threads()
        } else {
            threads
        }
    );
    let mut rows = vec![vec![
        "Workload".to_string(),
        "Static (s)".to_string(),
        "Dynamic (s)".to_string(),
        "Static/Dynamic".to_string(),
    ]];
    for (name, mats) in [
        ("RMAT (skewed)", workloads::rmat_collection(m, n, d, k, 42)),
        ("ER (uniform)", workloads::er_collection(m, n, d, k, 43)),
    ] {
        let mrefs = refs(&mats);
        let mut static_opts = Options::default();
        static_opts.threads = threads;
        static_opts.validate_sorted = false;
        static_opts.scheduling = Scheduling::Static;
        let mut dynamic_opts = static_opts.clone();
        dynamic_opts.scheduling = Scheduling::Dynamic {
            chunks_per_thread: 8,
        };
        // One plan per scheduling policy, reused across reps.
        let mut static_plan = spkadd::SpkAdd::new(m, n)
            .algorithm(Algorithm::Hash)
            .options(static_opts)
            .build::<f64>()
            .expect("plan build failed");
        let mut dynamic_plan = spkadd::SpkAdd::new(m, n)
            .algorithm(Algorithm::Hash)
            .options(dynamic_opts)
            .build::<f64>()
            .expect("plan build failed");
        let (_, t_static) = time_best(reps, || static_plan.execute(&mrefs).expect("spkadd failed"));
        let (_, t_dynamic) = time_best(reps, || {
            dynamic_plan.execute(&mrefs).expect("spkadd failed")
        });
        rows.push(vec![
            name.to_string(),
            fmt_secs(t_static),
            fmt_secs(t_dynamic),
            format!("{:.2}x", t_static / t_dynamic),
        ]);
    }
    print_table(&rows);
    println!("\nExpected: ratio > 1 on RMAT (dynamic wins), ≈ 1 on ER.");
}
