//! Fig 4: runtime of the sliding-hash algorithm as a function of the hash
//! table size (the per-thread table budget in entries), split into
//! symbolic / computation / total — cases (a)–(d) on the host machine.
//!
//! The paper's cases (e) and (f) contrast a 32 MB-LLC Skylake with an
//! 8 MB-LLC EPYC. One host cannot be two machines, so the contrast is
//! reproduced with the trace-driven cache simulator: the same sweep is
//! replayed under a Skylake-like and an EPYC-like hierarchy and the
//! last-level misses per table size are printed (their minima move with
//! the cache size, which is the figure's point).
//!
//! Usage: `cargo run --release -p spk-bench --bin fig4 [--sizes 64,...]
//! [--threads T] [--reps N] [--skip-sim]`

use spk_bench::{fmt_secs, print_table, refs, time_best, workloads, Args};
use spk_cachesim::CacheHierarchy;
use spk_sparse::CscMatrix;
use spkadd::metered::trace_spkadd;
use spkadd::{Algorithm, Options};

struct Case {
    name: &'static str,
    mats: Vec<CscMatrix<f64>>,
    sizes: Vec<usize>,
}

fn main() {
    let args = Args::parse();
    let threads = args.get("threads", 0usize);
    let reps = args.get("reps", 1usize);

    let cases = vec![
        Case {
            name: "(a) ER d=16 k=32, cf≈1.0 (small tables, L1 regime)",
            mats: workloads::er_collection(1 << 16, 64, 16, 32, 42),
            sizes: args.get_list("sizes", &[64, 128, 256, 512, 1024, 4096, 16384]),
        },
        Case {
            name: "(b) ER d=512 k=64, cf≈1.1 (large tables, LLC regime)",
            mats: workloads::er_collection(1 << 18, 64, 512, 64, 43),
            sizes: args.get_list("sizes", &[256, 1024, 4096, 16384, 65536, 262144]),
        },
        Case {
            name: "(c) RMAT d=128 k=64 (skewed)",
            mats: workloads::rmat_collection(1 << 17, 128, 128, 64, 44),
            sizes: args.get_list("sizes", &[256, 1024, 4096, 16384, 65536]),
        },
        Case {
            name: "(d) Eukarya-like cf≈22.6 d=60 k=64 (symbolic-dominated)",
            mats: workloads::eukarya_like(1 << 16, 128, 60, 64, 45),
            sizes: args.get_list("sizes", &[64, 256, 1024, 4096, 16384]),
        },
    ];

    for case in &cases {
        let mrefs = refs(&case.mats);
        println!(
            "\nFig 4 {}: input nnz = {}",
            case.name,
            workloads::total_nnz(&case.mats)
        );
        let mut rows = vec![vec![
            "table entries".to_string(),
            "symbolic".to_string(),
            "computation".to_string(),
            "total".to_string(),
        ]];
        for &size in &case.sizes {
            let mut opts = Options::default();
            opts.threads = threads;
            opts.validate_sorted = false;
            opts.forced_table_entries = Some(size);
            // One plan per sweep point, reused across the reps: the table
            // budget is fixed at plan build, so only the first rep pays
            // the workspace setup.
            let (m, n) = (case.mats[0].nrows(), case.mats[0].ncols());
            let mut plan = spkadd::SpkAdd::new(m, n)
                .algorithm(Algorithm::SlidingHash)
                .options(opts)
                .build::<f64>()
                .expect("plan build failed");
            let (timings, _) = time_best(reps, || {
                let (_, t) = plan.execute_timed(&mrefs).expect("sliding hash failed");
                t
            });
            rows.push(vec![
                size.to_string(),
                fmt_secs(timings.symbolic),
                fmt_secs(timings.numeric),
                fmt_secs(timings.total()),
            ]);
        }
        print_table(&rows);
    }

    if args.flag("skip-sim") {
        return;
    }
    // Cases (e)/(f): machine contrast via the cache simulator, on a
    // workload whose tables genuinely exceed the smaller LLC. Simulated
    // LLCs are scaled 1:16 with the workloads (2 MB "Skylake" vs 1 MB
    // "EPYC", both above their fixed inner levels so the hierarchy stays
    // monotone).
    println!("\nFig 4 (e)/(f): simulated LL misses vs table size (machine contrast)");
    let sim_mats = workloads::er_collection(1 << 20, 16, 2048, 128, 46);
    let sim_sizes = args.get_list("sim-sizes", &[4096, 16384, 65536, 131072, 262144]);
    {
        let mrefs = refs(&sim_mats);
        println!(
            "\n  workload: ER d=2048 k=128 over 1M rows ({} input nnz)",
            workloads::total_nnz(&sim_mats)
        );
        let mut rows = vec![vec![
            "table entries".to_string(),
            "Skylake-like LL misses".to_string(),
            "EPYC-like LL misses".to_string(),
        ]];
        let mut best = (usize::MAX, u64::MAX, usize::MAX, u64::MAX);
        for &size in &sim_sizes {
            let mut sky = CacheHierarchy::skylake_like(2 << 20);
            trace_spkadd(&mrefs, Algorithm::SlidingHash, size, &mut sky).expect("trace failed");
            let mut epyc = CacheHierarchy::epyc_like(1 << 20);
            trace_spkadd(&mrefs, Algorithm::SlidingHash, size, &mut epyc).expect("trace failed");
            let (s, e) = (sky.ll_stats().misses(), epyc.ll_stats().misses());
            if s < best.1 {
                best.0 = size;
                best.1 = s;
            }
            if e < best.3 {
                best.2 = size;
                best.3 = e;
            }
            rows.push(vec![size.to_string(), s.to_string(), e.to_string()]);
        }
        print_table(&rows);
        println!(
            "  optimum: Skylake-like at {} entries, EPYC-like at {} entries \
             (smaller cache → smaller or equal optimal table, as in the paper)",
            best.0, best.2
        );
    }
}
