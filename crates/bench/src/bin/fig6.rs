//! Fig 6: effect of the SpKAdd algorithm on the computational phases of
//! distributed SpGEMM (simulated sparse SUMMA; communication excluded, as
//! in the paper).
//!
//! Two protein-similarity-like workloads (`A·A`, the HipMCL/Markov-
//! clustering pattern) are run on a `q × q` process grid with the three
//! reduction configurations the paper compares: Heap (sorted multiplies +
//! heap SpKAdd), Sorted Hash, and Unsorted Hash (multiplies skip their
//! per-column sort because hash SpKAdd accepts unsorted inputs).
//!
//! Usage: `cargo run --release -p spk-bench --bin fig6 [--grid Q]
//! [--n N] [--deg D] [--threads T]`

use spk_bench::{fmt_secs, print_table, Args};
use spk_gen::protein_similarity_matrix;
use spk_summa::{run_summa, ReductionKind, SummaConfig};

fn main() {
    let args = Args::parse();
    let grid = args.get("grid", 4usize);
    let threads = args.get("threads", 0usize);

    let workload_specs = [
        (
            "Metaclust50-like",
            args.get("n", 8192usize),
            args.get("deg", 16usize),
            128usize,
            0.85,
        ),
        (
            "Isolates-like",
            args.get("n", 8192usize) / 2,
            args.get("deg", 24usize),
            32usize,
            0.9,
        ),
    ];

    for (name, n, deg, clusters, in_cluster) in workload_specs {
        let a = protein_similarity_matrix(n, deg, clusters, in_cluster, 42);
        println!(
            "\nFig 6 {name}: A is {n}x{n} with {} nnz; C = A·A on a {grid}x{grid} grid \
             ({} simulated processes, k = {grid} intermediates each)",
            a.nnz(),
            grid * grid
        );
        let mut rows = vec![vec![
            "Reduction".to_string(),
            "Local Multiply (s, sum)".to_string(),
            "SpKAdd (s, sum)".to_string(),
            "Total (s)".to_string(),
        ]];
        let mut reference: Option<spk_sparse::CscMatrix<f64>> = None;
        for reduction in [
            ReductionKind::Heap,
            ReductionKind::SortedHash,
            ReductionKind::UnsortedHash,
        ] {
            let report = run_summa(
                &a,
                &a,
                &SummaConfig {
                    grid,
                    reduction,
                    threads,
                },
            )
            .expect("summa failed");
            match &reference {
                None => reference = Some(report.result.clone()),
                Some(r) => assert!(
                    report.result.approx_eq(r, 1e-6),
                    "{} reduction changed the product",
                    reduction.name()
                ),
            }
            let (mul, add) = (report.multiply_total(), report.spkadd_total());
            rows.push(vec![
                reduction.name().to_string(),
                fmt_secs(mul),
                fmt_secs(add),
                fmt_secs(mul + add),
            ]);
        }
        print_table(&rows);
        println!("  (all three reductions verified to produce the same product)");
    }
    // Part 2: the per-process SpKAdd at paper-scale stage counts. The
    // paper's runs used 4096–16384 processes (64–128 SUMMA stages), so
    // each process reduced k = 64 Eukarya SpGEMM intermediates with
    // cf ≈ 22.6 — exactly the Fig 3(c)/Fig 4(d) workload, which the
    // generator reproduces directly. The heap's lg k work factor and its
    // need for sorted inputs both bite in this regime.
    let k = args.get("stages", 64usize);
    let d = args.get("d", 240usize);
    let inter = spk_bench::workloads::eukarya_like(1 << 17, 1024, d, k, 46);
    let total_nnz: usize = inter.iter().map(|m| m.nnz()).sum();
    println!(
        "\nFig 6 (per-process reduction at paper-scale k): {} Eukarya-like \
         SpGEMM intermediates, {} input nnz, cf≈22.6",
        k, total_nnz
    );
    // The unsorted variant reduces column-reversed copies — what an
    // unsorted local multiply hands to the reduction.
    let unsorted: Vec<spk_sparse::CscMatrix<f64>> = inter
        .iter()
        .map(|m| {
            let (rows_n, cols_n, colptr, mut ridx, mut vals) = m.clone().into_parts();
            for j in 0..cols_n {
                ridx[colptr[j]..colptr[j + 1]].reverse();
                vals[colptr[j]..colptr[j + 1]].reverse();
            }
            spk_sparse::CscMatrix::from_parts(rows_n, cols_n, colptr, ridx, vals)
        })
        .collect();

    let mut rows = vec![vec![
        "Reduction".to_string(),
        "SpKAdd (s)".to_string(),
        "vs Heap".to_string(),
    ]];
    let mut opts = spkadd::Options::default();
    opts.threads = threads;
    opts.validate_sorted = false;
    let sorted_refs: Vec<&spk_sparse::CscMatrix<f64>> = inter.iter().collect();
    let unsorted_refs: Vec<&spk_sparse::CscMatrix<f64>> = unsorted.iter().collect();
    let mut heap_time = 0.0f64;
    let mut reference: Option<spk_sparse::CscMatrix<f64>> = None;
    for (reduction, mrefs) in [
        (ReductionKind::Heap, &sorted_refs),
        (ReductionKind::SortedHash, &sorted_refs),
        (ReductionKind::UnsortedHash, &unsorted_refs),
    ] {
        let mut inputs_sorted_opts = opts.clone();
        if reduction == ReductionKind::UnsortedHash {
            // Let the driver know it cannot assume sorted inputs.
            inputs_sorted_opts.validate_sorted = true;
        }
        let (_, t_add) = spk_bench::time_best(3, || {
            spkadd::spkadd_with(mrefs, reduction.algorithm(), &inputs_sorted_opts)
                .expect("reduction failed")
        });
        let sum = spkadd::spkadd_with(mrefs, reduction.algorithm(), &inputs_sorted_opts)
            .expect("reduction failed");
        match &reference {
            None => reference = Some(sum),
            Some(r) => assert!(sum.approx_eq(r, 1e-6)),
        }
        if reduction == ReductionKind::Heap {
            heap_time = t_add;
        }
        rows.push(vec![
            reduction.name().to_string(),
            fmt_secs(t_add),
            format!("{:.2}x", heap_time / t_add),
        ]);
    }
    print_table(&rows);
    println!(
        "\nExpected shape (paper Fig 6): hash SpKAdd well under heap SpKAdd \
         at paper-scale k (the paper reports ~10x with CombBLAS's heap \
         implementation); unsorted inputs cost hash little, while heap \
         cannot accept them at all."
    );
}
