//! Offline validation of the per-partition kernel scorer: for every
//! column chunk of a skewed collection, compare the kernel the
//! [`ChunkScorer`] *predicts* against the kernel the trace-driven cache
//! simulator *measures* as cheapest (fewest last-level misses).
//!
//! Each chunk's column range is sliced out of every input matrix
//! (colptr rebased, row/value slices shared shape), then all five k-way
//! numeric kernels run over the slice through a fresh Skylake-like
//! hierarchy via `trace_spkadd`. The scorer sees exactly what the
//! driver's dispatcher sees — `ChunkProfile` built from the input and
//! output colptrs — so this checks the decision surface, not the
//! plumbing.
//!
//! Agreement is judged at kernel-*family* granularity (SPA panel, hash
//! table, heap stream): cache traffic is what separates the families at
//! a given chunk shape, and that is the axis a trace simulator can
//! validate. The plain↔sliding split *within* a family trades traffic
//! against recomputation and is tuned in wall-clock terms by the LLC
//! budget heuristic (covered by the `adaptive_selection` bench); at a
//! single window the two siblings are the same algorithm and differ
//! only in emission bookkeeping. A prediction agrees when the best
//! simulated member of its family is within 10% of the per-chunk miss
//! floor.
//!
//! Usage: `cargo run --release -p spk_bench --bin adaptive_cachesim
//! [--llc-kb KB] [--rows R]`

use spk_bench::{print_table, refs, Args};
use spk_cachesim::CacheHierarchy;
use spk_gen::{generate_collection, Pattern};
use spk_sparse::CscMatrix;
use spkadd::metered::trace_spkadd;
use spkadd::{Algorithm, ChunkProfile, ChunkScorer, NumericKernel, SpkAdd};

/// The trace driver speaks `Algorithm`; the scorer speaks `NumericKernel`.
fn kernel_algorithm(kernel: NumericKernel) -> Algorithm {
    match kernel {
        NumericKernel::Hash => Algorithm::Hash,
        NumericKernel::SlidingHash => Algorithm::SlidingHash,
        NumericKernel::Spa => Algorithm::Spa,
        NumericKernel::SlidingSpa => Algorithm::SlidingSpa,
        NumericKernel::Heap => Algorithm::Heap,
    }
}

/// Accumulator family: what the cache-traffic comparison distinguishes.
fn family(kernel: NumericKernel) -> &'static str {
    match kernel {
        NumericKernel::Hash | NumericKernel::SlidingHash => "hash table",
        NumericKernel::Spa | NumericKernel::SlidingSpa => "SPA panel",
        NumericKernel::Heap => "heap stream",
    }
}

/// Copies columns `[lo, hi)` of `mat` into a standalone matrix with a
/// rebased colptr, preserving per-column order (slices of sorted
/// columns stay sorted, so the heap kernel remains eligible).
fn slice_columns(mat: &CscMatrix<f64>, lo: usize, hi: usize) -> CscMatrix<f64> {
    let colptr = mat.colptr();
    let (start, end) = (colptr[lo], colptr[hi]);
    let rebased: Vec<usize> = colptr[lo..=hi].iter().map(|p| p - start).collect();
    CscMatrix::try_new(
        mat.shape().0,
        hi - lo,
        rebased,
        mat.rowidx()[start..end].to_vec(),
        mat.values()[start..end].to_vec(),
    )
    .expect("column slice is structurally valid")
}

fn main() {
    let args = Args::parse();
    let rows = args.get("rows", 1 << 16);
    // Default LL share comfortably holds the 786 KB SPA panel plus the
    // streaming inputs, matching the scorer's panel-fits-LLC reasoning.
    let llc = (args.get("llc-kb", 8192usize) << 10).max(2 << 20);
    let budget = (llc / 12).max(64);

    // Three column regions, each owned by a different group of
    // matrices, so chunks hit all three scorer branches:
    // * dense  — 8 matrices, two fully-dense columns (high duplication,
    //   input traffic dominates, SPA panel amortized);
    // * mid    — 8 matrices, sparse columns (k_eff too high for the
    //   heap rule, output too sparse for the panel: hash regime);
    // * tail   — 4 matrices, hypersparse near-disjoint columns (heap).
    let (dense_cols, mid_cols, tail_cols) = (2usize, 256usize, 256usize);
    let ncols = dense_cols + mid_cols + tail_cols;
    // Places a column block at `offset`, padding empty columns around it.
    let embed = |block: CscMatrix<f64>, offset: usize| -> CscMatrix<f64> {
        let (_, _, ptr, ridx, vals) = block.into_parts();
        let mut colptr = vec![0usize; offset];
        colptr.extend_from_slice(&ptr);
        colptr.resize(ncols + 1, *colptr.last().unwrap());
        CscMatrix::try_new(rows, ncols, colptr, ridx, vals).unwrap()
    };
    let mut mats: Vec<CscMatrix<f64>> = Vec::new();
    for d in generate_collection(Pattern::Er, rows, dense_cols, rows, 8, 42) {
        mats.push(embed(d, 0));
    }
    for s in generate_collection(Pattern::Er, rows, mid_cols, 8, 8, 42 ^ 0x111D) {
        mats.push(embed(s, dense_cols));
    }
    for t in generate_collection(Pattern::Er, rows, tail_cols, 8, 4, 42 ^ 0x7A11) {
        mats.push(embed(t, dense_cols + mid_cols));
    }
    for m in &mut mats {
        m.sort_columns();
    }
    let mrefs = refs(&mats);

    // The exact output colptr, as the symbolic phase hands the dispatcher.
    let sum = SpkAdd::new(rows, ncols)
        .algorithm(Algorithm::Hash)
        .threads(1)
        .build::<f64>()
        .unwrap()
        .execute(&mrefs)
        .expect("reference sum failed");
    let out_colptr = sum.colptr();

    // One chunk per region plus a split, mirroring weight-balanced
    // column chunks.
    let mid_end = dense_cols + mid_cols;
    let chunks: Vec<(usize, usize)> = vec![
        (0, dense_cols),
        (dense_cols, dense_cols + mid_cols / 2),
        (dense_cols + mid_cols / 2, mid_end),
        (mid_end, mid_end + tail_cols / 2),
        (mid_end + tail_cols / 2, ncols),
    ];

    let scorer = ChunkScorer {
        rows,
        entry_bytes: 12,
        threads: 1,
        llc_bytes: llc,
        heap_allowed: true,
    };

    println!(
        "Per-chunk predicted kernel vs simulated LL misses \
         (rows={rows}, LLC share {} KB, budget {budget} entries)",
        llc >> 10
    );
    let mut table = vec![vec![
        "chunk".to_string(),
        "k_eff".to_string(),
        "nnz_in".to_string(),
        "nnz_out".to_string(),
        "predicted".to_string(),
        "sim best".to_string(),
        "family misses".to_string(),
        "best misses".to_string(),
        "agree".to_string(),
    ]];
    let mut disagreements = 0usize;
    for &(lo, hi) in &chunks {
        let nnz_in: usize = mats.iter().map(|m| m.colptr()[hi] - m.colptr()[lo]).sum();
        let k_eff = mats
            .iter()
            .filter(|m| m.colptr()[hi] > m.colptr()[lo])
            .count();
        let profile = ChunkProfile {
            cols: hi - lo,
            k: mats.len(),
            k_eff,
            nnz_in,
            nnz_out: out_colptr[hi] - out_colptr[lo],
        };
        let predicted = scorer.choose(&profile);

        let slices: Vec<CscMatrix<f64>> = mats.iter().map(|m| slice_columns(m, lo, hi)).collect();
        let srefs = refs(&slices);
        let mut misses = Vec::new();
        for kernel in NumericKernel::ALL {
            let mut hier = CacheHierarchy::skylake_like(llc);
            trace_spkadd(&srefs, kernel_algorithm(kernel), budget, &mut hier)
                .expect("trace failed");
            misses.push((kernel, hier.ll_stats().misses()));
        }
        let &(sim_best, best_misses) = misses.iter().min_by_key(|(_, m)| *m).unwrap();
        let pred_misses = misses
            .iter()
            .filter(|(k, _)| family(*k) == family(predicted))
            .map(|&(_, m)| m)
            .min()
            .unwrap();
        // Family floor within 10% of the global floor; see module doc.
        let agree = pred_misses as f64 <= best_misses as f64 * 1.10;
        if !agree {
            disagreements += 1;
        }
        table.push(vec![
            format!("cols {lo}..{hi}"),
            profile.k_eff.to_string(),
            profile.nnz_in.to_string(),
            profile.nnz_out.to_string(),
            format!("{predicted:?}"),
            format!("{sim_best:?}"),
            pred_misses.to_string(),
            best_misses.to_string(),
            if agree { "yes" } else { "NO" }.to_string(),
        ]);
    }
    print_table(&table);
    println!(
        "\n{}/{} chunks: predicted kernel family within 10% of the simulated miss floor.",
        chunks.len() - disagreements,
        chunks.len()
    );
    assert_eq!(
        disagreements, 0,
        "the scorer picked a kernel family with >10% more simulated LL \
         misses than the per-chunk best on {disagreements} chunk(s)"
    );
}
