//! Table V: last-level cache misses of hash vs sliding-hash SpKAdd on the
//! Fig 4 workloads, measured with the trace-driven cache simulator
//! (standing in for Cachegrind; see DESIGN.md substitution 4).
//!
//! Like Cachegrind, the trace is single-threaded; the multi-thread LLC
//! contention of the real runs is modelled by giving the simulated thread
//! a 1/T share of the LLC (`--llc-kb`, default 512 KB ≈ 32 MB / 64
//! hardware threads at paper scale).
//!
//! Usage: `cargo run --release -p spk-bench --bin table5 [--llc-kb KB]`

use spk_bench::{print_table, refs, workloads, Args};
use spk_cachesim::CacheHierarchy;
use spk_sparse::CscMatrix;
use spkadd::metered::trace_spkadd;
use spkadd::Algorithm;

fn main() {
    let args = Args::parse();
    // The simulated LL share must stay above the fixed 1 MB L2 of the
    // Skylake-like hierarchy, or the outer level would never be reached.
    let llc = (args.get("llc-kb", 2048usize) << 10).max(2 << 20);
    // Numeric entries are 12 bytes (u32 + f64); symbolic 4. The shared
    // budget uses the numeric size, the conservative choice.
    let budget = (llc / 12).max(64);

    // Cases (b) and (c) are sized so the per-column tables (≈ d·k output
    // entries, 12 B each) exceed the simulated LL share — the paper's
    // out-of-cache regime; (a) and (d) fit comfortably.
    let cases: Vec<(&str, Vec<CscMatrix<f64>>)> = vec![
        (
            "(a) ER d=16 k=32 (small tables)",
            workloads::er_collection(1 << 16, 64, 16, 32, 42),
        ),
        (
            "(b) ER d=2048 k=128 (large tables)",
            workloads::er_collection(1 << 20, 32, 2048, 128, 43),
        ),
        (
            "(c) RMAT d=512 k=128 (skewed)",
            workloads::rmat_collection(1 << 20, 32, 512, 128, 44),
        ),
        (
            "(d) Eukarya-like cf≈22.6 (high compression)",
            workloads::eukarya_like(1 << 16, 128, 60, 64, 45),
        ),
    ];

    println!(
        "Table V: simulated LL misses (LLC share = {} KB, sliding budget = {} entries)",
        llc >> 10,
        budget
    );
    let mut rows = vec![vec![
        "Case".to_string(),
        "Sliding Hash".to_string(),
        "Hash".to_string(),
        "ratio".to_string(),
    ]];
    for (name, mats) in &cases {
        let mrefs = refs(mats);
        let mut h_plain = CacheHierarchy::skylake_like(llc);
        trace_spkadd(&mrefs, Algorithm::Hash, usize::MAX, &mut h_plain).expect("trace failed");
        let mut h_slide = CacheHierarchy::skylake_like(llc);
        trace_spkadd(&mrefs, Algorithm::SlidingHash, budget, &mut h_slide).expect("trace failed");
        let (p, s) = (h_plain.ll_stats().misses(), h_slide.ll_stats().misses());
        rows.push(vec![
            name.to_string(),
            s.to_string(),
            p.to_string(),
            format!("{:.2}x", p as f64 / s.max(1) as f64),
        ]);
    }
    print_table(&rows);
    println!(
        "\nExpected shape (paper Table V): sliding ≪ hash for (b), sliding < \
         hash for (c), parity for (a) and (d) where tables fit anyway."
    );
}
