//! §II-D ablation: symbolic-phase strategies across compression factors.
//!
//! The symbolic phase sizes its tables by *input* entries — `cf×` more
//! than the output — so high-cf collections stress it disproportionately
//! (the paper's Fig 4(d) observation: "the symbolic phase needed hash
//! tables that are 27× larger"). This harness times the hash numeric
//! phase under four symbolic strategies (hash, sliding hash, SPA, and
//! the upper-bound/no-symbolic path with post-compaction) for collections
//! with cf ∈ {1.5, 4, 16}.
//!
//! Usage: `cargo run --release -p spk-bench --bin ablation_symbolic
//! [--rows R] [--cols C] [--d D] [--k K] [--threads T]`

use spk_bench::{fmt_secs, print_table, refs, Args};
use spk_gen::{protein_collection, ProteinConfig};
use spkadd::{Algorithm, Options, SymbolicStrategy};

fn main() {
    let args = Args::parse();
    let m = args.get("rows", 1 << 15);
    let n = args.get("cols", 256usize);
    let d = args.get("d", 32usize);
    let k = args.get("k", 32usize);
    let threads = args.get("threads", 0usize);

    println!("Symbolic ablation: rows={m}, cols={n}, d={d}, k={k} (hash numeric phase)");
    let mut rows = vec![vec![
        "cf".to_string(),
        "strategy".to_string(),
        "symbolic (s)".to_string(),
        "numeric (s)".to_string(),
        "total (s)".to_string(),
        "output nnz".to_string(),
    ]];
    for cf in [1.5f64, 4.0, 16.0] {
        let mats = protein_collection(
            &ProteinConfig {
                nrows: m,
                ncols: n,
                d,
                k,
                cf,
                skew: 0.4,
            },
            42,
        );
        let mrefs = refs(&mats);
        // Warm up allocator and page cache so the first strategy row is
        // not penalized.
        let mut warm = Options::default();
        warm.validate_sorted = false;
        let _ = spkadd::spkadd_with(&mrefs, Algorithm::Hash, &warm).expect("warmup failed");
        for strategy in [
            SymbolicStrategy::Hash,
            SymbolicStrategy::SlidingHash,
            SymbolicStrategy::Spa,
            SymbolicStrategy::UpperBound,
        ] {
            let mut opts = Options::default();
            opts.threads = threads;
            opts.validate_sorted = false;
            opts.symbolic = strategy;
            // One plan per strategy, reused across the three reps.
            let mut plan = spkadd::SpkAdd::new(m, n)
                .algorithm(Algorithm::Hash)
                .options(opts)
                .build::<f64>()
                .expect("plan build failed");
            // Best of three to damp scheduler noise.
            let mut best: Option<(spk_sparse::CscMatrix<f64>, spkadd::ExecuteStats)> = None;
            for _ in 0..3 {
                let (out, timings) = plan.execute_timed(&mrefs).expect("spkadd failed");
                if best
                    .as_ref()
                    .is_none_or(|(_, b)| timings.total() < b.total())
                {
                    best = Some((out, timings));
                }
            }
            let (out, timings) = best.unwrap();
            rows.push(vec![
                format!("{cf}"),
                format!("{strategy:?}"),
                fmt_secs(timings.symbolic),
                fmt_secs(timings.numeric),
                fmt_secs(timings.total()),
                out.nnz().to_string(),
            ]);
        }
    }
    print_table(&rows);
    println!(
        "\nExpected: symbolic share of total grows with cf; UpperBound \
         trades the symbolic pass for over-allocation plus compaction."
    );
}
