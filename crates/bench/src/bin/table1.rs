//! Table I: empirical validation of the work and I/O complexity summary.
//!
//! The paper's Table I is analytic; this harness measures it. Every
//! algorithm runs single-threaded under a `CountingModel` across a sweep
//! of k, and the growth exponent of ops (work) and bytes (I/O) in k is
//! fitted from consecutive doublings:
//!
//! * 2-way Incremental → work/I-O exponent ≈ 2 (O(k²nd));
//! * 2-way Tree        → ≈ 1 + lg-factor (O(knd·lg k)) in both;
//! * Heap              → work ≈ lg-factor, I/O ≈ 1 (streams inputs once);
//! * SPA / Hash / Sliding Hash → ≈ 1 in both (work- and I/O-optimal).
//!
//! Usage: `cargo run --release -p spk-bench --bin table1 [--rows R]
//! [--cols C] [--d D] [--k 2,4,...]`

use spk_bench::{print_table, refs, workloads, Args};
use spkadd::metered::meter_spkadd;
use spkadd::Algorithm;

const ALGS: [Algorithm; 6] = [
    Algorithm::TwoWayIncremental,
    Algorithm::TwoWayTree,
    Algorithm::Heap,
    Algorithm::Spa,
    Algorithm::Hash,
    Algorithm::SlidingHash,
];

fn main() {
    let args = Args::parse();
    let m = args.get("rows", 1 << 14);
    let n = args.get("cols", 32usize);
    let d = args.get("d", 16usize);
    let ks = args.get_list("k", &[4, 8, 16, 32, 64]);
    let budget = args.get("budget", 1usize << 12);

    println!("Table I empirical check: ER rows={m}, cols={n}, d={d}; per-entry counters");

    // measurements[alg][ki] = (ops, bytes)
    let mut measurements: Vec<Vec<(u64, u64)>> = vec![Vec::new(); ALGS.len()];
    for &k in &ks {
        let mats = workloads::er_collection(m, n, d, k, 42);
        let mrefs = refs(&mats);
        for (ai, alg) in ALGS.iter().enumerate() {
            let (_, c) = meter_spkadd(&mrefs, *alg, budget).expect("meter failed");
            measurements[ai].push((c.ops, c.bytes_total()));
        }
    }

    let mut rows = vec![vec![
        "Algorithm".to_string(),
        "ops@kmax".to_string(),
        "bytes@kmax".to_string(),
        "work exp".to_string(),
        "I/O exp".to_string(),
        "paper work".to_string(),
        "paper I/O".to_string(),
    ]];
    for (ai, alg) in ALGS.iter().enumerate() {
        let series = &measurements[ai];
        let last = series.last().unwrap();
        let (wexp, ioexp) = (
            fit_exponent(&ks, series.iter().map(|s| s.0).collect()),
            fit_exponent(&ks, series.iter().map(|s| s.1).collect()),
        );
        let (paper_work, paper_io) = match alg {
            Algorithm::TwoWayIncremental => ("O(k^2 nd)", "O(k^2 nd)"),
            Algorithm::TwoWayTree => ("O(knd lg k)", "O(knd lg k)"),
            Algorithm::Heap => ("O(knd lg k)", "O(knd)"),
            _ => ("O(knd)", "O(knd)"),
        };
        rows.push(vec![
            alg.name().to_string(),
            last.0.to_string(),
            last.1.to_string(),
            format!("{wexp:.2}"),
            format!("{ioexp:.2}"),
            paper_work.to_string(),
            paper_io.to_string(),
        ]);
    }
    print_table(&rows);
    println!(
        "\nexp = least-squares slope of log(metric) vs log(k); 1.0 = linear \
         in k (work/I-O optimal), 2.0 = quadratic. lg-k terms show up as \
         exponents slightly above 1."
    );
}

/// Least-squares slope of log2(value) against log2(k).
fn fit_exponent(ks: &[usize], values: Vec<u64>) -> f64 {
    let pts: Vec<(f64, f64)> = ks
        .iter()
        .zip(&values)
        .map(|(&k, &v)| ((k as f64).ln(), (v.max(1) as f64).ln()))
        .collect();
    let nf = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (nf * sxy - sx * sy) / (nf * sxx - sx * sx)
}
