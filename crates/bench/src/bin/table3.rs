//! Table III: runtime of all eight SpKAdd algorithms on ER collections
//! across a (k, d) grid.
//!
//! Usage: `cargo run --release -p spk-bench --bin table3 [--full]
//! [--rows R] [--cols C] [--k 4,32,128] [--d 16,256,2048] [--threads T]
//! [--reps N] [--guard OPS]`
//!
//! `--full` switches to the paper's parameters (4M rows, d up to 8192) —
//! only sensible on a machine with tens of GB of RAM.

use spk_bench::tables::run_runtime_table;
use spk_bench::{workloads, Args};

fn main() {
    let args = Args::parse();
    run_runtime_table(
        &args,
        "ER",
        workloads::er_collection,
        &[16, 256, 2048],
        &[16, 1024, 8192],
    );
}
