//! End-to-end throughput of the sharded aggregation service: matrices/sec
//! vs. shard count, for a uniform (ER) and a skewed (R-MAT/Graph500)
//! submission stream — plus a planned-vs-unplanned flush comparison that
//! isolates the workspace-reuse win a retained `SpkAddPlan` delivers to
//! the shards' streaming accumulators.
//!
//! The service (and its worker threads) is stood up once per shard
//! count; each timed iteration drives the whole pre-generated stream
//! through it from several producer threads (so the submit path itself
//! is contended, as in production) under a fresh key, finalizes, and
//! checks the result is non-trivial. Throughput is reported in matrices
//! per second; on a multi-core machine it grows with the shard count
//! until the producers become the bottleneck. (On a single-core runner
//! the curve is flat-to-declining — the shards have no extra hardware
//! to run on and the per-shard slicing overhead still accrues.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spk_gen::{generate_collection, Pattern};
use spk_server::{AggregatorService, ServiceConfig};
use spk_sparse::CscMatrix;
use spkadd::{spkadd_with, Algorithm, Options, SpkAdd};
use std::sync::atomic::{AtomicU64, Ordering};

const ROWS: usize = 1 << 14;
const COLS: usize = 48;
const NNZ_PER_COL: usize = 8;
const STREAM_LEN: usize = 32;
const PRODUCERS: usize = 4;

fn drive(svc: &AggregatorService<f64>, mats: &[CscMatrix<f64>], key: &str) -> usize {
    std::thread::scope(|scope| {
        for chunk in mats.chunks(mats.len().div_ceil(PRODUCERS)) {
            scope.spawn(move || {
                for m in chunk {
                    svc.submit(key, m).expect("submit failed");
                }
            });
        }
    });
    let sum = svc.finalize(key).expect("finalize failed");
    sum.nnz()
}

fn bench_server(c: &mut Criterion) {
    let job = AtomicU64::new(0);
    for (name, pattern) in [("er", Pattern::Er), ("rmat", Pattern::Rmat)] {
        let mats = generate_collection(pattern, ROWS, COLS, NNZ_PER_COL, STREAM_LEN, 42);
        let mut group = c.benchmark_group(format!("server_throughput/{name}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(STREAM_LEN as u64));
        for shards in [1usize, 2, 4, 8] {
            let svc = AggregatorService::new(ROWS, COLS, ServiceConfig::with_shards(shards));
            group.bench_function(BenchmarkId::new("shards", shards), |b| {
                b.iter(|| {
                    let key = format!("job-{}", job.fetch_add(1, Ordering::Relaxed));
                    let nnz = drive(&svc, &mats, &key);
                    assert!(nnz > 0, "aggregate must be non-empty");
                    nnz
                });
            });
        }
        group.finish();
    }
}

/// Planned vs unplanned flush: the same batch reduction a shard's
/// accumulator performs on every flush, once through a retained
/// `SpkAddPlan` (what `StreamingAccumulator` now does) and once through
/// the throwaway-plan `spkadd_with` shim (what it used to do). The gap
/// is pure workspace-setup amortization.
fn bench_flush_reuse(c: &mut Criterion) {
    let batch = generate_collection(Pattern::Rmat, ROWS, COLS, NNZ_PER_COL, 8, 7);
    let refs: Vec<&CscMatrix<f64>> = batch.iter().collect();
    let opts = Options::default().with_threads(1);

    let mut group = c.benchmark_group("server_throughput/flush");
    group.sample_size(20);
    group.throughput(Throughput::Elements(refs.len() as u64));
    let mut plan = SpkAdd::new(ROWS, COLS)
        .algorithm(Algorithm::Hash)
        .options(opts.clone())
        .build::<f64>()
        .expect("plan build failed");
    group.bench_function("planned", |b| {
        b.iter(|| plan.execute(&refs).expect("flush failed"));
    });
    group.bench_function("oneshot", |b| {
        b.iter(|| spkadd_with(&refs, Algorithm::Hash, &opts).expect("flush failed"));
    });
    group.finish();
}

criterion_group!(benches, bench_server, bench_flush_reuse);
criterion_main!(benches);
