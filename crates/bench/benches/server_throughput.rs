//! End-to-end throughput of the sharded aggregation service: matrices/sec
//! vs. shard count, for a uniform (ER) and a skewed (R-MAT/Graph500)
//! submission stream.
//!
//! The service (and its worker threads) is stood up once per shard
//! count; each timed iteration drives the whole pre-generated stream
//! through it from several producer threads (so the submit path itself
//! is contended, as in production) under a fresh key, finalizes, and
//! checks the result is non-trivial. Throughput is reported in matrices
//! per second; on a multi-core machine it grows with the shard count
//! until the producers become the bottleneck. (On a single-core runner
//! the curve is flat-to-declining — the shards have no extra hardware
//! to run on and the per-shard slicing overhead still accrues.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spk_gen::{generate_collection, Pattern};
use spk_server::{AggregatorService, ServiceConfig};
use spk_sparse::CscMatrix;
use std::sync::atomic::{AtomicU64, Ordering};

const ROWS: usize = 1 << 14;
const COLS: usize = 48;
const NNZ_PER_COL: usize = 8;
const STREAM_LEN: usize = 32;
const PRODUCERS: usize = 4;

fn drive(svc: &AggregatorService<f64>, mats: &[CscMatrix<f64>], key: &str) -> usize {
    std::thread::scope(|scope| {
        for chunk in mats.chunks(mats.len().div_ceil(PRODUCERS)) {
            scope.spawn(move || {
                for m in chunk {
                    svc.submit(key, m).expect("submit failed");
                }
            });
        }
    });
    let sum = svc.finalize(key).expect("finalize failed");
    sum.nnz()
}

fn bench_server(c: &mut Criterion) {
    let job = AtomicU64::new(0);
    for (name, pattern) in [("er", Pattern::Er), ("rmat", Pattern::Rmat)] {
        let mats = generate_collection(pattern, ROWS, COLS, NNZ_PER_COL, STREAM_LEN, 42);
        let mut group = c.benchmark_group(format!("server_throughput/{name}"));
        group.sample_size(10);
        group.throughput(Throughput::Elements(STREAM_LEN as u64));
        for shards in [1usize, 2, 4, 8] {
            let svc = AggregatorService::new(ROWS, COLS, ServiceConfig::with_shards(shards));
            group.bench_function(BenchmarkId::new("shards", shards), |b| {
                b.iter(|| {
                    let key = format!("job-{}", job.fetch_add(1, Ordering::Relaxed));
                    let nnz = drive(&svc, &mats, &key);
                    assert!(nnz > 0, "aggregate must be non-empty");
                    nnz
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
