//! End-to-end throughput of the sharded aggregation service: matrices/sec
//! vs. shard count, for a uniform (ER) and a skewed (R-MAT/Graph500)
//! submission stream — plus a planned-vs-unplanned flush comparison that
//! isolates the workspace-reuse win a retained `SpkAddPlan` delivers to
//! the shards' streaming accumulators.
//!
//! The service (and its worker threads) is stood up once per shard
//! count; each timed iteration drives the whole pre-generated stream
//! through it from several producer threads (so the submit path itself
//! is contended, as in production) under a fresh key, finalizes, and
//! checks the result is non-trivial. Throughput is reported in matrices
//! per second; each shard-count row also carries its parallel efficiency
//! against the 1-shard run of the same stream (`t1 / (S * tS) * 100`).
//! On a multi-core machine throughput grows with the shard count until
//! the producers become the bottleneck. (On a single-core runner the
//! curve is flat-to-declining — the shards have no extra hardware to run
//! on and the per-shard slicing overhead still accrues — which is why
//! the report keeps the `cores` field and single-core caveat.)
//!
//! Emits a human table on stdout plus a machine-readable
//! `spk_obs.run_report.v1` JSON report to `--out` (default
//! `BENCH_server_throughput.json`).
//!
//! Usage: `cargo bench -p spk_bench --bench server_throughput --
//! [--reps N] [--out FILE]`

use spk_bench::{print_table, Args};
use spk_gen::{generate_collection, Pattern};
use spk_obs::RunReport;
use spk_server::{AggregatorService, ServiceConfig};
use spk_sparse::CscMatrix;
use spkadd::{spkadd_with, Algorithm, Options, SpkAdd};
use std::sync::atomic::{AtomicU64, Ordering};

const ROWS: usize = 1 << 14;
const COLS: usize = 48;
const NNZ_PER_COL: usize = 8;
const STREAM_LEN: usize = 32;
const PRODUCERS: usize = 4;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn drive(svc: &AggregatorService<f64>, mats: &[CscMatrix<f64>], key: &str) -> usize {
    std::thread::scope(|scope| {
        for chunk in mats.chunks(mats.len().div_ceil(PRODUCERS)) {
            scope.spawn(move || {
                for m in chunk {
                    svc.submit(key, m).expect("submit failed");
                }
            });
        }
    });
    let sum = svc.finalize(key).expect("finalize failed");
    sum.nnz()
}

fn main() {
    let args = Args::parse();
    let reps = args.get("reps", 5usize).max(1);
    let out_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_server_throughput.json".to_string());
    let job = AtomicU64::new(0);

    let mut report = RunReport::new("server_throughput");
    report
        .threads(SHARD_COUNTS[SHARD_COUNTS.len() - 1])
        .config("rows", ROWS)
        .config("cols", COLS)
        .config("nnz_per_col", NNZ_PER_COL)
        .config("stream_len", STREAM_LEN)
        .config("producers", PRODUCERS)
        .config("reps", reps);

    let mut table = vec![vec![
        "stream".to_string(),
        "shards".to_string(),
        "time (ms)".to_string(),
        "matrices/s".to_string(),
        "efficiency".to_string(),
    ]];
    for (name, pattern) in [("er", Pattern::Er), ("rmat", Pattern::Rmat)] {
        let mats = generate_collection(pattern, ROWS, COLS, NNZ_PER_COL, STREAM_LEN, 42);
        let mut serial_secs = f64::NAN;
        for shards in SHARD_COUNTS {
            let svc = AggregatorService::new(ROWS, COLS, ServiceConfig::with_shards(shards));
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let key = format!("job-{}", job.fetch_add(1, Ordering::Relaxed));
                let t = std::time::Instant::now();
                let nnz = drive(&svc, &mats, &key);
                best = best.min(t.elapsed().as_secs_f64());
                assert!(nnz > 0, "aggregate must be non-empty");
            }
            if shards == 1 {
                serial_secs = best;
            }
            let eff = RunReport::efficiency(serial_secs, best, shards);
            let throughput = STREAM_LEN as f64 / best;
            report.result(
                spk_obs::Row::new()
                    .with("stream", name)
                    .with("shards", shards)
                    .with("secs", best)
                    .with("throughput", throughput)
                    .with("unit", "matrices_per_s")
                    .with("parallel_efficiency_pct", eff),
            );
            table.push(vec![
                name.to_string(),
                shards.to_string(),
                format!("{:.3}", best * 1e3),
                format!("{throughput:.0}"),
                format!("{eff:.1}%"),
            ]);
            if shards == SHARD_COUNTS[SHARD_COUNTS.len() - 1] {
                report.summary(&format!("{name}_efficiency_at_{shards}_shards_pct"), eff);
            }
        }
    }

    // Planned vs unplanned flush: the same batch reduction a shard's
    // accumulator performs on every flush, once through a retained
    // `SpkAddPlan` (what `StreamingAccumulator` now does) and once
    // through the throwaway-plan `spkadd_with` shim (what it used to
    // do). The gap is pure workspace-setup amortization.
    let batch = generate_collection(Pattern::Rmat, ROWS, COLS, NNZ_PER_COL, 8, 7);
    let refs: Vec<&CscMatrix<f64>> = batch.iter().collect();
    let opts = Options::default().with_threads(1);
    let mut plan = SpkAdd::new(ROWS, COLS)
        .algorithm(Algorithm::Hash)
        .options(opts.clone())
        .build::<f64>()
        .expect("plan build failed");
    let flush_reps = (4 * reps).max(10);
    let mut planned = f64::INFINITY;
    let mut oneshot = f64::INFINITY;
    for _ in 0..flush_reps {
        let t = std::time::Instant::now();
        plan.execute(&refs).expect("flush failed");
        planned = planned.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        spkadd_with(&refs, Algorithm::Hash, &opts).expect("flush failed");
        oneshot = oneshot.min(t.elapsed().as_secs_f64());
    }
    for (mode, secs) in [("planned", planned), ("oneshot", oneshot)] {
        report.result(
            spk_obs::Row::new()
                .with("stream", "flush")
                .with("mode", mode)
                .with("secs", secs)
                .with("throughput", refs.len() as f64 / secs)
                .with("unit", "matrices_per_s"),
        );
        table.push(vec![
            "flush".to_string(),
            mode.to_string(),
            format!("{:.3}", secs * 1e3),
            format!("{:.0}", refs.len() as f64 / secs),
            "-".to_string(),
        ]);
    }
    report.summary("flush_oneshot_over_planned", oneshot / planned);

    print_table(&table);
    println!(
        "flush: planned {:.3} ms vs oneshot {:.3} ms → {:.2}x",
        planned * 1e3,
        oneshot * 1e3,
        oneshot / planned
    );
    report
        .write_json_file(&out_path)
        .expect("writing benchmark JSON failed");
    eprintln!("wrote {out_path}");
}
