//! Criterion benchmarks of the symbolic phase strategies (§II-D) on a
//! high-compression collection, where the symbolic tables are cf× larger
//! than the numeric ones.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spk_gen::{protein_collection, ProteinConfig};
use spkadd::{spkadd_with, Algorithm, Options, SymbolicStrategy};

fn bench_symbolic(c: &mut Criterion) {
    let mats = protein_collection(
        &ProteinConfig {
            nrows: 1 << 14,
            ncols: 128,
            d: 32,
            k: 16,
            cf: 8.0,
            skew: 0.4,
        },
        42,
    );
    let refs: Vec<&spk_sparse::CscMatrix<f64>> = mats.iter().collect();

    let mut group = c.benchmark_group("symbolic");
    group.sample_size(15);
    for strategy in [
        SymbolicStrategy::Hash,
        SymbolicStrategy::SlidingHash,
        SymbolicStrategy::Spa,
        SymbolicStrategy::Heap,
        SymbolicStrategy::UpperBound,
    ] {
        group.bench_function(BenchmarkId::from_parameter(format!("{strategy:?}")), |b| {
            let mut opts = Options::default();
            opts.validate_sorted = false;
            opts.symbolic = strategy;
            b.iter(|| spkadd_with(&refs, Algorithm::Hash, &opts).expect("spkadd failed"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_symbolic);
criterion_main!(benches);
