//! Pattern-cache benchmark: cold (symbolic + numeric) vs warm
//! (fingerprint + numeric-only) execution over fixed-sparsity
//! collections — the FEM-assembly / gradient-aggregation repeat workload
//! the cache targets.
//!
//! Three groups:
//! * `plan` — a retained `SpkAddPlan` re-executing one collection, per
//!   k-way algorithm family, cache off vs on;
//! * `stream` — `StreamingAccumulator` flush rounds over a repeating
//!   batch structure, cache off vs on;
//! * `server` — an `AggregatorService` key aggregating a steady stream
//!   (several flushes per key), cache off vs on. End-to-end this path
//!   is dominated by submit-side slicing and worker handoff (especially
//!   on a single-core runner), so expect the warm win to be small here —
//!   the group's value is confirming the per-key caches hit (asserted
//!   on the shard metrics) without regressing throughput. The
//!   flush-level win itself is what `plan` and `stream` isolate.
//!
//! Emits a human table on stdout plus a machine-readable
//! `spk_obs.run_report.v1` JSON report (config + per-result phase
//! timings and throughput, keeping the historical result keys) to
//! `--out` (default `BENCH_pattern_cache.json`, the checked-in baseline
//! path).
//!
//! Usage: `cargo bench -p spk_bench --bench pattern_cache --
//! [--rows R] [--cols C] [--d D] [--k K] [--reps N] [--out FILE]`

use spk_bench::{print_table, refs, Args};
use spk_gen::{generate_collection, Pattern};
use spk_obs::RunReport;
use spk_server::{AggregatorService, ServiceConfig};
use spk_sparse::CscMatrix;
use spkadd::{
    Algorithm, ExecuteStats, FlushPolicy, Options, PatternOutcome, SpkAdd, StreamingAccumulator,
};

/// One benchmark row: a (group, case, mode) cell with its phase split.
struct Row {
    group: &'static str,
    case: String,
    mode: &'static str,
    secs: f64,
    stats: Option<ExecuteStats>,
    throughput: f64,
    unit: &'static str,
}

impl Row {
    /// The row in report form, keeping the historical key set and order.
    fn to_report_row(&self) -> spk_obs::Row {
        let mut row = spk_obs::Row::new()
            .with("group", self.group)
            .with("case", self.case.as_str())
            .with("mode", self.mode)
            .with("secs", self.secs);
        if let Some(s) = &self.stats {
            row = row
                .with("symbolic_secs", s.symbolic)
                .with("numeric_secs", s.numeric)
                .with("fingerprint_secs", s.fingerprint)
                .with("symbolic_skipped", s.symbolic_skipped);
        }
        row.with("throughput", self.throughput)
            .with("unit", self.unit)
    }
}

/// Rescales every value — new numerics, identical sparsity, so warm
/// passes never degenerate into adding the exact same floats.
fn rescale(mats: &mut [CscMatrix<f64>], f: f64) {
    for m in mats {
        for v in m.values_mut() {
            *v *= f;
        }
    }
}

fn main() {
    let args = Args::parse();
    let m = args.get("rows", 1 << 14);
    let n = args.get("cols", 48usize);
    let d = args.get("d", 8usize);
    let k = args.get("k", 32usize);
    let reps = args.get("reps", 5usize).max(1);
    let out_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_pattern_cache.json".to_string());

    let mut mats = generate_collection(Pattern::Rmat, m, n, d, k, 42);
    for mat in &mut mats {
        mat.sort_columns();
    }
    let total_nnz: usize = mats.iter().map(|a| a.nnz()).sum();
    println!(
        "pattern_cache bench: rows={m}, cols={n}, d={d}, k={k}, reps={reps}, \
         total input nnz {total_nnz}"
    );
    let mut rows: Vec<Row> = Vec::new();

    // --- plan group: cold vs warm per algorithm family -----------------
    for alg in [
        Algorithm::Hash,
        Algorithm::SlidingHash,
        Algorithm::Spa,
        Algorithm::SlidingSpa,
        Algorithm::Heap,
    ] {
        let case = format!("{alg}");
        for (mode, capacity) in [("cold", 0usize), ("warm", 2usize)] {
            let mut plan = SpkAdd::new(m, n)
                .algorithm(alg)
                .pattern_cache(capacity)
                .build::<f64>()
                .expect("plan build failed");
            let mut sum = CscMatrix::zeros(m, n);
            // Prime: warms workspaces for both modes and, with a cache,
            // inserts the pattern so the timed passes all hit.
            let mut stats = plan
                .execute_into_timed(&refs(&mats), &mut sum)
                .expect("prime failed");
            let mut best = f64::INFINITY;
            let mut best_stats = stats;
            for _ in 0..reps {
                rescale(&mut mats, 1.0 + 1.0 / 64.0);
                let mrefs = refs(&mats);
                let t = std::time::Instant::now();
                stats = plan
                    .execute_into_timed(&mrefs, &mut sum)
                    .expect("execute failed");
                let secs = t.elapsed().as_secs_f64();
                if secs < best {
                    best = secs;
                    best_stats = stats;
                }
            }
            match mode {
                "warm" => assert!(
                    stats.pattern == PatternOutcome::Hit && stats.symbolic_skipped,
                    "warm pass must hit the cache ({alg}: {:?})",
                    stats.pattern
                ),
                _ => assert!(!stats.symbolic_skipped),
            }
            rows.push(Row {
                group: "plan",
                case: case.clone(),
                mode,
                secs: best,
                stats: Some(best_stats),
                throughput: total_nnz as f64 / best,
                unit: "input_nnz_per_s",
            });
        }
    }

    // --- stream group: repeated flush rounds ---------------------------
    const ROUNDS: usize = 6;
    for (mode, capacity) in [("cold", 0usize), ("warm", 4usize)] {
        let mut opts = Options::default();
        opts.pattern_cache = capacity;
        let mut acc = StreamingAccumulator::<f64>::with_policy(
            m,
            n,
            FlushPolicy::Matrices(k),
            Algorithm::Hash,
            opts,
        );
        // Prime round: first flushes miss even with a cache (the running
        // total joins the collection and stabilizes the pattern).
        for mat in &mats {
            acc.push(mat.clone()).expect("push failed");
        }
        acc.flush().expect("flush failed");
        let t = std::time::Instant::now();
        for _ in 0..ROUNDS {
            rescale(&mut mats, 1.0 + 1.0 / 64.0);
            for mat in &mats {
                acc.push(mat.clone()).expect("push failed");
            }
            acc.flush().expect("flush failed");
        }
        let secs = t.elapsed().as_secs_f64() / ROUNDS as f64;
        if let Some(stats) = acc.pattern_stats() {
            assert!(
                stats.hits >= ROUNDS as u64,
                "steady-state stream flushes must hit ({} hits / {} misses)",
                stats.hits,
                stats.misses
            );
        }
        let nnz = acc.finish().expect("finish failed").nnz();
        assert!(nnz > 0);
        rows.push(Row {
            group: "stream",
            case: format!("flush_k{k}"),
            mode,
            secs,
            stats: None,
            throughput: total_nnz as f64 / secs,
            unit: "input_nnz_per_s",
        });
    }

    // --- server group: steady per-key stream, several flushes ----------
    const STREAM_LEN: usize = 64;
    const BATCH: usize = 8;
    // Denser than the plan-group collection so the per-flush reduction
    // (where the cache acts) dominates the submit/slicing overhead.
    let server_base = {
        let mut mat = generate_collection(Pattern::Rmat, m, n, 4 * d, 1, 7).remove(0);
        mat.sort_columns();
        mat
    };
    for (mode, capacity) in [("cold", 0usize), ("warm", 2usize)] {
        let svc: AggregatorService<f64> = AggregatorService::new(
            m,
            n,
            ServiceConfig::with_shards(1)
                .with_flush(FlushPolicy::Matrices(BATCH))
                .with_pattern_cache(capacity),
        );
        // A steady stream repeats one sparsity with fresh values (a
        // fixed sensor/model emitting every tick), so each flushed batch
        // after the first presents the same pattern to the shard's plan.
        let stream: Vec<CscMatrix<f64>> = (0..STREAM_LEN)
            .map(|i| {
                let mut mat = server_base.clone();
                rescale(std::slice::from_mut(&mut mat), 1.0 + i as f64 / 64.0);
                mat
            })
            .collect();
        let mut best = f64::INFINITY;
        for rep in 0..reps {
            let key = format!("{mode}-{rep}");
            let t = std::time::Instant::now();
            for mat in &stream {
                svc.submit(&key, mat).expect("submit failed");
            }
            let sum = svc.finalize(&key).expect("finalize failed");
            best = best.min(t.elapsed().as_secs_f64());
            assert!(sum.nnz() > 0);
        }
        let metrics = svc.metrics();
        if capacity > 0 {
            assert!(
                metrics.pattern_hits() > metrics.pattern_misses(),
                "steady server streams should mostly hit ({} hits / {} misses)",
                metrics.pattern_hits(),
                metrics.pattern_misses()
            );
        }
        rows.push(Row {
            group: "server",
            case: format!("stream{STREAM_LEN}_batch{BATCH}"),
            mode,
            secs: best,
            stats: None,
            throughput: STREAM_LEN as f64 / best,
            unit: "matrices_per_s",
        });
    }

    // --- report --------------------------------------------------------
    let mut table = vec![vec![
        "group".to_string(),
        "case".to_string(),
        "mode".to_string(),
        "time (ms)".to_string(),
        "symbolic (ms)".to_string(),
        "throughput".to_string(),
    ]];
    for r in &rows {
        let symbolic = match &r.stats {
            Some(s) if s.symbolic_skipped => "skipped (hit)".to_string(),
            Some(s) => format!("{:.3}", s.symbolic * 1e3),
            None => "-".to_string(),
        };
        table.push(vec![
            r.group.to_string(),
            r.case.clone(),
            r.mode.to_string(),
            format!("{:.3}", r.secs * 1e3),
            symbolic,
            format!("{:.0} {}", r.throughput, r.unit),
        ]);
    }
    print_table(&table);
    for pair in rows.chunks(2) {
        if let [cold, warm] = pair {
            println!(
                "{}/{}: warm is {:.2}x cold",
                cold.group,
                cold.case,
                cold.secs / warm.secs
            );
        }
    }

    let mut report = RunReport::new("pattern_cache");
    report
        .threads(1)
        .config("rows", m)
        .config("cols", n)
        .config("nnz_per_col", d)
        .config("k", k)
        .config("reps", reps)
        .config("total_input_nnz", total_nnz);
    for r in &rows {
        report.result(r.to_report_row());
    }
    report
        .write_json_file(&out_path)
        .expect("writing benchmark JSON failed");
    eprintln!("wrote {out_path}");
}
