//! Criterion end-to-end SpKAdd benchmarks: the k-way algorithms and the
//! 2-way tree on a fixed ER collection (Table III's center cell, scaled).
//!
//! Each algorithm holds one `SpkAddPlan` across its iterations, so the
//! numbers reflect the steady-state (workspace-reused) path; the
//! `oneshot-hash` row times the throwaway-plan `spkadd_with` shim for
//! contrast — the gap is the per-call setup the plan amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spk_gen::{generate_collection, Pattern};
use spkadd::{spkadd_with, Algorithm, Options, SpkAdd};

fn bench_e2e(c: &mut Criterion) {
    let (rows, cols) = (1 << 14, 32);
    let mats = generate_collection(Pattern::Er, rows, cols, 64, 16, 42);
    let refs: Vec<&spk_sparse::CscMatrix<f64>> = mats.iter().collect();
    let mut opts = Options::default();
    opts.validate_sorted = false;

    let mut group = c.benchmark_group("spkadd_e2e");
    group.sample_size(15);
    for alg in [
        Algorithm::Hash,
        Algorithm::SlidingHash,
        Algorithm::Spa,
        Algorithm::Heap,
        Algorithm::TwoWayTree,
    ] {
        let mut plan = SpkAdd::new(rows, cols)
            .algorithm(alg)
            .options(opts.clone())
            .build::<f64>()
            .expect("plan build failed");
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter(|| plan.execute(&refs).expect("spkadd failed"));
        });
    }
    group.bench_function(BenchmarkId::from_parameter("oneshot-hash"), |b| {
        b.iter(|| spkadd_with(&refs, Algorithm::Hash, &opts).expect("spkadd failed"));
    });
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
