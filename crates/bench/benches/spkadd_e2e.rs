//! Criterion end-to-end SpKAdd benchmarks: the k-way algorithms and the
//! 2-way tree on a fixed ER collection (Table III's center cell, scaled).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spk_gen::{generate_collection, Pattern};
use spkadd::{spkadd_with, Algorithm, Options};

fn bench_e2e(c: &mut Criterion) {
    let mats = generate_collection(Pattern::Er, 1 << 14, 32, 64, 16, 42);
    let refs: Vec<&spk_sparse::CscMatrix<f64>> = mats.iter().collect();
    let mut opts = Options::default();
    opts.validate_sorted = false;

    let mut group = c.benchmark_group("spkadd_e2e");
    group.sample_size(15);
    for alg in [
        Algorithm::Hash,
        Algorithm::SlidingHash,
        Algorithm::Spa,
        Algorithm::Heap,
        Algorithm::TwoWayTree,
    ] {
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            b.iter(|| spkadd_with(&refs, alg, &opts).expect("spkadd failed"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
