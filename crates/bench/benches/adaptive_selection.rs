//! Adaptive per-partition kernel selection vs every forced global
//! kernel, on a uniform and a skewed collection.
//!
//! Two workloads:
//! * `uniform` — an ER collection with one flat density everywhere; the
//!   per-chunk scorer should agree with the collection-level choice on
//!   every chunk, so adaptive dispatch measures its own overhead here;
//! * `skewed` — a block of near-dense columns contributed by most of
//!   the matrices followed by a wide hypersparse tail contributed by a
//!   few; chunks differ in both density and effective k, so no single
//!   kernel fits both regions and the adaptive driver should mix (SPA
//!   family on the dense block, heap on the low-`k_eff` tail) and beat
//!   whichever global kernel the forced runs crown.
//!
//! Modes per workload: `adaptive` (Auto, per-chunk scoring), `pinned`
//! (Auto with `adaptive(false)` — one collection-level choice), and the
//! five forced k-way kernels. The summary reports adaptive vs the best
//! forced/pinned time and the kernel histogram the adaptive run
//! produced; on the skewed workload the histogram must name ≥ 2
//! kernels. Emits a human table plus a machine-readable
//! `spk_obs.run_report.v1` JSON report to `--out` (default
//! `BENCH_adaptive.json`, the checked-in baseline path).
//!
//! Usage: `cargo bench -p spk_bench --bench adaptive_selection --
//! [--rows R] [--reps N] [--threads T] [--out FILE]`

use spk_bench::{print_table, refs, Args};
use spk_gen::{generate_collection, Pattern};
use spk_obs::{Json, RunReport};
use spk_sparse::CscMatrix;
use spkadd::{Algorithm, CacheConfig, KernelCounts, SpkAdd};

struct Row {
    workload: &'static str,
    mode: String,
    secs: f64,
    kernels: String,
    distinct: usize,
    throughput: f64,
}

/// A skewed collection whose column regions differ in *both* density
/// and effective k: `dense_k` matrices populate only the first
/// `dense_cols` columns (near-dense), and `tail_k` different matrices
/// populate only the remaining `tail_cols` (hypersparse, nearly
/// disjoint). Chunks over the dense block see `k_eff = dense_k` and a
/// dense output (SPA territory); chunks over the tail see
/// `k_eff = tail_k` narrow disjoint merges (heap territory). No global
/// kernel fits both regions.
#[allow(clippy::too_many_arguments)]
fn skewed_collection(
    rows: usize,
    dense_cols: usize,
    d_dense: usize,
    dense_k: usize,
    tail_cols: usize,
    d_tail: usize,
    tail_k: usize,
    seed: u64,
) -> Vec<CscMatrix<f64>> {
    let ncols = dense_cols + tail_cols;
    let mut dense = generate_collection(Pattern::Er, rows, dense_cols, d_dense, dense_k, seed);
    let mut tail = generate_collection(Pattern::Er, rows, tail_cols, d_tail, tail_k, seed ^ 0x7A11);
    for m in dense.iter_mut().chain(tail.iter_mut()) {
        m.sort_columns();
    }
    let mut out = Vec::with_capacity(dense_k + tail_k);
    for d in dense {
        // Dense block in place, empty tail columns.
        let (_, _, mut colptr, rowsv, vals) = d.into_parts();
        colptr.resize(ncols + 1, *colptr.last().unwrap());
        out.push(CscMatrix::try_new(rows, ncols, colptr, rowsv, vals).unwrap());
    }
    for t in tail {
        // Empty dense columns, tail shifted into place.
        let (_, _, tail_ptr, rowsv, vals) = t.into_parts();
        let mut colptr = vec![0usize; dense_cols];
        colptr.extend_from_slice(&tail_ptr);
        out.push(CscMatrix::try_new(rows, ncols, colptr, rowsv, vals).unwrap());
    }
    out
}

fn main() {
    let args = Args::parse();
    let m = args.get("rows", 1 << 23);
    let reps = args.get("reps", 5usize).max(1);
    let threads = args.get("threads", 1usize);
    let k = args.get("k", 8usize);
    let out_path = std::env::args()
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "BENCH_adaptive.json".to_string());
    // Pin the machine model so the decision surface (and therefore the
    // histogram in the checked-in baseline) is host-independent. Sized
    // for a large-LLC server part: at 8M rows a one-thread f64 SPA
    // panel (96 MB) still fits, so dense chunks score as plain SPA.
    let cache = CacheConfig {
        llc_bytes: 256 << 20,
        l1_bytes: 32 << 10,
    };

    let uniform = {
        let mut mats = generate_collection(Pattern::Er, m, 512, 8, k, 42);
        for mat in &mut mats {
            mat.sort_columns();
        }
        mats
    };
    // 12 matrices own two near-dense columns, 4 others own a wide
    // hypersparse tail: dense chunks score as k_eff=12 SPA panels, tail
    // chunks as k_eff=4 near-disjoint heap merges.
    let skewed = skewed_collection(m, 2, m / 16, 12, 32766, 8, 4, 42);

    let mut rows_out: Vec<Row> = Vec::new();
    let mut summary: Vec<(String, Json)> = Vec::new();

    for (workload, mats) in [("uniform", &uniform), ("skewed", &skewed)] {
        let mrefs = refs(mats);
        let (nrows, ncols) = mrefs[0].shape();
        let total_nnz: usize = mats.iter().map(|a| a.nnz()).sum();
        println!(
            "{workload}: rows={nrows}, cols={ncols}, k={}, total input nnz {total_nnz}, \
             threads={threads}, reps={reps}",
            mrefs.len()
        );

        // (mode label, algorithm, adaptive?)
        let modes: Vec<(String, Algorithm, bool)> =
            std::iter::once(("adaptive".into(), Algorithm::Auto, true))
                .chain(std::iter::once(("pinned".into(), Algorithm::Auto, false)))
                .chain(
                    [
                        Algorithm::Hash,
                        Algorithm::SlidingHash,
                        Algorithm::Spa,
                        Algorithm::SlidingSpa,
                        Algorithm::Heap,
                    ]
                    .into_iter()
                    .map(|alg| (format!("forced-{alg}"), alg, true)),
                )
                .collect();

        let mut adaptive_secs = f64::INFINITY;
        let mut adaptive_counts = KernelCounts::default();
        let mut best_global = ("-".to_string(), f64::INFINITY);
        for (mode, alg, adaptive) in modes {
            let mut plan = SpkAdd::new(nrows, ncols)
                .algorithm(alg)
                .adaptive(adaptive)
                .threads(threads)
                .cache(cache)
                .build::<f64>()
                .expect("plan build failed");
            let mut sum = CscMatrix::zeros(nrows, ncols);
            // Prime: builds the retained workspaces outside the timing.
            let mut stats = plan
                .execute_into_timed(&mrefs, &mut sum)
                .expect("prime failed");
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t = std::time::Instant::now();
                stats = plan
                    .execute_into_timed(&mrefs, &mut sum)
                    .expect("execute failed");
                best = best.min(t.elapsed().as_secs_f64());
            }
            if mode == "adaptive" {
                adaptive_secs = best;
                adaptive_counts = stats.kernel_counts;
            } else if best < best_global.1 {
                best_global = (mode.clone(), best);
            }
            rows_out.push(Row {
                workload,
                mode,
                secs: best,
                kernels: format!("{}", stats.kernel_counts),
                distinct: stats.kernel_counts.distinct(),
                throughput: total_nnz as f64 / best,
            });
        }

        if workload == "skewed" {
            assert!(
                adaptive_counts.distinct() >= 2,
                "the skewed workload must mix kernels, got {adaptive_counts}"
            );
        }
        let ratio = adaptive_secs / best_global.1;
        println!(
            "{workload}: adaptive {:.3} ms ({adaptive_counts}) vs best global \
             '{}' {:.3} ms → {ratio:.2}x",
            adaptive_secs * 1e3,
            best_global.0,
            best_global.1 * 1e3
        );
        summary.push((
            format!("{workload}_adaptive_secs"),
            Json::from(adaptive_secs),
        ));
        summary.push((
            format!("{workload}_best_global_mode"),
            Json::from(best_global.0.as_str()),
        ));
        summary.push((
            format!("{workload}_best_global_secs"),
            Json::from(best_global.1),
        ));
        summary.push((
            format!("{workload}_adaptive_over_best_global"),
            Json::from(ratio),
        ));
        summary.push((
            format!("{workload}_adaptive_kernels"),
            Json::from(format!("{adaptive_counts}")),
        ));
        summary.push((
            format!("{workload}_adaptive_distinct_kernels"),
            Json::from(adaptive_counts.distinct()),
        ));
    }

    let mut table = vec![vec![
        "workload".to_string(),
        "mode".to_string(),
        "time (ms)".to_string(),
        "kernels".to_string(),
        "throughput (nnz/s)".to_string(),
    ]];
    for r in &rows_out {
        table.push(vec![
            r.workload.to_string(),
            r.mode.clone(),
            format!("{:.3}", r.secs * 1e3),
            r.kernels.clone(),
            format!("{:.2e}", r.throughput),
        ]);
    }
    print_table(&table);

    let mut report = RunReport::new("adaptive_selection");
    report
        .threads(threads)
        .config("rows", m)
        .config("k", k)
        .config("threads", threads)
        .config("reps", reps)
        .config("llc_bytes", cache.llc_bytes);
    for r in &rows_out {
        report.result(
            spk_obs::Row::new()
                .with("workload", r.workload)
                .with("mode", r.mode.as_str())
                .with("secs", r.secs)
                .with("kernels", r.kernels.as_str())
                .with("distinct_kernels", r.distinct)
                .with("throughput", r.throughput)
                .with("unit", "input_nnz_per_s"),
        );
    }
    for (key, value) in summary {
        report.summary(&key, value);
    }
    report
        .write_json_file(&out_path)
        .expect("writing benchmark JSON failed");
    eprintln!("wrote {out_path}");
}
