//! Criterion benchmarks of the 2-way building blocks: a single pairwise
//! add, incremental vs tree reduction, and the library-style baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use spk_gen::{generate_collection, Pattern};
use spkadd::libstyle::lib_add_pair;
use spkadd::parallel::Scheduling;
use spkadd::twoway::{add_pair, spkadd_incremental, spkadd_tree};

fn bench_twoway(c: &mut Criterion) {
    let mats = generate_collection(Pattern::Er, 1 << 14, 32, 64, 8, 42);
    let refs: Vec<&spk_sparse::CscMatrix<f64>> = mats.iter().collect();

    let mut group = c.benchmark_group("twoway");
    group.sample_size(15);
    group.bench_function("add_pair", |b| {
        b.iter(|| add_pair(refs[0], refs[1], 0, Scheduling::default()));
    });
    group.bench_function("lib_add_pair", |b| {
        b.iter(|| lib_add_pair(refs[0], refs[1]));
    });
    group.bench_function("incremental_k8", |b| {
        b.iter(|| spkadd_incremental(&refs, 0, Scheduling::default()));
    });
    group.bench_function("tree_k8", |b| {
        b.iter(|| spkadd_tree(&refs, 0, Scheduling::default()));
    });
    group.finish();
}

criterion_group!(benches, bench_twoway);
criterion_main!(benches);
