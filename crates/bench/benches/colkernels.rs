//! Criterion micro-benchmarks of the per-column k-way kernels
//! (hash / SPA / heap) on one synthetic merged column — the innermost
//! loops every SpKAdd algorithm is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spk_sparse::ColView;
use spkadd::hashtab::HashAccumulator;
use spkadd::heap::KwayHeap;
use spkadd::kernels::{hash_add_column, heap_add_column, spa_add_column};
use spkadd::mem::NullModel;
use spkadd::spa::Spa;

/// Builds k sorted pseudo-random columns of ~d entries over m rows.
fn make_columns(m: usize, d: usize, k: usize) -> Vec<(Vec<u32>, Vec<f64>)> {
    (0..k)
        .map(|i| {
            let mut rows: Vec<u32> = (0..d)
                .map(|j| (((j * k + i) * 2654435761usize) % m) as u32)
                .collect();
            rows.sort_unstable();
            rows.dedup();
            let vals = vec![1.0f64; rows.len()];
            (rows, vals)
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let m = 1 << 16;
    let mut group = c.benchmark_group("colkernels");
    group.sample_size(20);
    for &(d, k) in &[(64usize, 8usize), (256, 32)] {
        let cols_data = make_columns(m, d, k);
        let views: Vec<ColView<'_, f64>> = cols_data
            .iter()
            .map(|(r, v)| ColView { rows: r, vals: v })
            .collect();
        let out_cap = d * k;
        let mut out_rows = vec![0u32; out_cap];
        let mut out_vals = vec![0.0f64; out_cap];

        group.bench_function(BenchmarkId::new("hash", format!("d{d}_k{k}")), |b| {
            let mut ht = HashAccumulator::<f64>::with_capacity(out_cap);
            b.iter(|| {
                hash_add_column(
                    &views,
                    &mut ht,
                    &mut out_rows,
                    &mut out_vals,
                    true,
                    &mut NullModel,
                )
            });
        });
        group.bench_function(BenchmarkId::new("spa", format!("d{d}_k{k}")), |b| {
            let mut spa = Spa::<f64>::new(m);
            b.iter(|| {
                spa_add_column(
                    &views,
                    &mut spa,
                    &mut out_rows,
                    &mut out_vals,
                    true,
                    &mut NullModel,
                )
            });
        });
        group.bench_function(BenchmarkId::new("heap", format!("d{d}_k{k}")), |b| {
            let mut heap = KwayHeap::<f64>::new(k);
            b.iter(|| {
                heap_add_column(
                    &views,
                    &mut heap,
                    &mut out_rows,
                    &mut out_vals,
                    &mut NullModel,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
