//! Criterion benchmarks of the local SpGEMM: hash vs heap algorithms and
//! sorted vs unsorted emission (the Fig 6 multiply-side effect).

use criterion::{criterion_group, criterion_main, Criterion};
use spk_gen::protein_similarity_matrix;
use spk_spgemm::{spgemm_hash, spgemm_heap, SpgemmOptions};

fn bench_spgemm(c: &mut Criterion) {
    let a = protein_similarity_matrix(4096, 12, 64, 0.85, 42);
    let sorted = SpgemmOptions::default();
    let unsorted = SpgemmOptions {
        sorted_output: false,
        ..Default::default()
    };

    let mut group = c.benchmark_group("spgemm_local");
    group.sample_size(10);
    group.bench_function("hash_sorted", |b| {
        b.iter(|| spgemm_hash(&a, &a, &sorted).expect("spgemm failed"));
    });
    group.bench_function("hash_unsorted", |b| {
        b.iter(|| spgemm_hash(&a, &a, &unsorted).expect("spgemm failed"));
    });
    group.bench_function("heap", |b| {
        b.iter(|| spgemm_heap(&a, &a, &sorted).expect("spgemm failed"));
    });
    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);
