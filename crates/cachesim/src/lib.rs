//! # spk-cachesim — trace-driven cache hierarchy simulator
//!
//! Reproduces the paper's Cachegrind experiment (Table V: last-level
//! cache misses of hash vs sliding-hash SpKAdd) without Valgrind: the
//! SpKAdd kernels are generic over [`spkadd::MemModel`], so running them
//! with a [`CacheHierarchy`] replays their *exact* address streams —
//! input column reads, hash probes, output writes — through a
//! set-associative LRU hierarchy.
//!
//! Like Cachegrind, the simulation is single-threaded; multi-threaded
//! cache sharing is modelled the way the sliding-hash algorithm itself
//! models it — by giving the simulated thread a `1/T` share of the LLC
//! (see the Table V harness in `spk-bench`).

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

use spkadd::mem::MemModel;

/// Hit/miss counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
}

impl CacheStats {
    /// All misses (read + write).
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// All accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Miss ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses() as f64 / a as f64
        }
    }
}

/// One set-associative, LRU, write-allocate cache level.
#[derive(Debug, Clone)]
pub struct CacheLevel {
    /// Human-readable level name ("L1", "LL", …).
    pub name: &'static str,
    line_bytes: usize,
    sets: usize,
    assoc: usize,
    /// `tags[set]` holds up to `assoc` line tags, most recent last.
    tags: Vec<Vec<u64>>,
    /// Access statistics.
    pub stats: CacheStats,
}

impl CacheLevel {
    /// Builds a level of `capacity` bytes with the given line size and
    /// associativity. Capacity is rounded down to a whole number of sets
    /// (at least one).
    pub fn new(name: &'static str, capacity: usize, line_bytes: usize, assoc: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(assoc >= 1);
        let sets = (capacity / (line_bytes * assoc)).max(1);
        Self {
            name,
            line_bytes,
            sets,
            assoc,
            tags: vec![Vec::new(); sets],
            stats: CacheStats::default(),
        }
    }

    /// Effective capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets * self.assoc * self.line_bytes
    }

    /// Looks up (and on miss, fills) one line. Returns `true` on hit.
    fn touch_line(&mut self, line_addr: u64, write: bool) -> bool {
        let set = (line_addr as usize) % self.sets;
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == line_addr) {
            ways.remove(pos);
            ways.push(line_addr); // move to MRU
            if write {
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            true
        } else {
            if ways.len() == self.assoc {
                ways.remove(0); // evict LRU
            }
            ways.push(line_addr);
            if write {
                self.stats.write_misses += 1;
            } else {
                self.stats.read_misses += 1;
            }
            false
        }
    }
}

/// A multi-level inclusive hierarchy: an access walks the levels until it
/// hits; every missed level is filled.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<CacheLevel>,
}

impl CacheHierarchy {
    /// Builds a hierarchy from outermost-last levels (`[L1, L2, LL]`).
    pub fn new(levels: Vec<CacheLevel>) -> Self {
        assert!(!levels.is_empty());
        Self { levels }
    }

    /// A Skylake-like hierarchy (Table II): 32 KB 8-way L1, 1 MB 16-way
    /// L2, and a caller-sized 11-way LL cache, 64-byte lines throughout.
    pub fn skylake_like(llc_bytes: usize) -> Self {
        Self::new(vec![
            CacheLevel::new("L1", 32 << 10, 64, 8),
            CacheLevel::new("L2", 1 << 20, 64, 16),
            CacheLevel::new("LL", llc_bytes, 64, 11),
        ])
    }

    /// An EPYC-like hierarchy (Table II): 32 KB L1, 512 KB L2, and a
    /// caller-sized LL cache (the paper's EPYC has 8 MB per CCX).
    pub fn epyc_like(llc_bytes: usize) -> Self {
        Self::new(vec![
            CacheLevel::new("L1", 32 << 10, 64, 8),
            CacheLevel::new("L2", 512 << 10, 64, 8),
            CacheLevel::new("LL", llc_bytes, 64, 16),
        ])
    }

    /// Simulates one access of `bytes` bytes at `addr`, touching every
    /// spanned line.
    pub fn access(&mut self, addr: usize, bytes: usize, write: bool) {
        if bytes == 0 {
            return;
        }
        let line = self.levels[0].line_bytes as u64;
        let first = addr as u64 / line;
        let last = (addr + bytes - 1) as u64 / line;
        for line_addr in first..=last {
            for level in &mut self.levels {
                if level.touch_line(line_addr, write) {
                    break; // hit: inner levels already filled on the way
                }
            }
        }
    }

    /// Statistics of the last (outermost) level — the paper's "LL".
    pub fn ll_stats(&self) -> CacheStats {
        self.levels.last().unwrap().stats
    }

    /// Statistics of every level, innermost first.
    pub fn all_stats(&self) -> Vec<(&'static str, CacheStats)> {
        self.levels.iter().map(|l| (l.name, l.stats)).collect()
    }

    /// Resets all counters (keeps cache contents).
    pub fn reset_stats(&mut self) {
        for l in &mut self.levels {
            l.stats = CacheStats::default();
        }
    }
}

impl MemModel for CacheHierarchy {
    #[inline]
    fn read(&mut self, addr: usize, bytes: usize) {
        self.access(addr, bytes, false);
    }
    #[inline]
    fn write(&mut self, addr: usize, bytes: usize) {
        self.access(addr, bytes, true);
    }
    #[inline]
    fn op(&mut self, _n: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use spk_sparse::CscMatrix;
    use spkadd::metered::trace_spkadd;
    use spkadd::Algorithm;

    #[test]
    fn sequential_streaming_mostly_hits() {
        let mut h = CacheHierarchy::skylake_like(1 << 20);
        // Stream 64 KB sequentially in 8-byte reads: one compulsory miss
        // per 64-byte line, 7 hits.
        for i in 0..8192usize {
            h.access(i * 8, 8, false);
        }
        let l1 = h.all_stats()[0].1;
        assert_eq!(l1.read_misses, 1024, "one miss per line");
        assert_eq!(l1.read_hits, 7168);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut small = CacheLevel::new("t", 4 << 10, 64, 4);
        // Cyclic sweep over 64 KB with a 4 KB cache: every access to a new
        // line misses on every pass (LRU worst case).
        for pass in 0..3 {
            for i in 0..1024usize {
                small.touch_line(i as u64, false);
            }
            let _ = pass;
        }
        assert_eq!(small.stats.read_misses, 3 * 1024);
        assert_eq!(small.stats.read_hits, 0);
    }

    #[test]
    fn lru_keeps_hot_lines() {
        let mut l = CacheLevel::new("t", 4 * 64, 64, 4); // 4 lines, 1 set? no: sets=1, assoc=4
        assert_eq!(l.capacity(), 256);
        // Touch lines 0..4 (fills), re-touch 0 (hit), touch 4 (evicts LRU=1).
        for i in 0..4u64 {
            l.touch_line(i, false);
        }
        assert!(l.touch_line(0, false), "0 still resident");
        l.touch_line(4, false); // evicts 1
        assert!(!l.touch_line(1, false), "1 was evicted");
        assert!(l.touch_line(0, false), "0 survived as MRU");
    }

    #[test]
    fn hierarchy_fills_inner_levels() {
        let mut h = CacheHierarchy::new(vec![
            CacheLevel::new("L1", 128, 64, 2),
            CacheLevel::new("LL", 1 << 16, 64, 8),
        ]);
        h.access(0, 8, false); // miss both
        h.access(0, 8, false); // hit L1
        let stats = h.all_stats();
        assert_eq!(stats[0].1.read_misses, 1);
        assert_eq!(stats[0].1.read_hits, 1);
        assert_eq!(stats[1].1.read_misses, 1);
        assert_eq!(stats[1].1.read_hits, 0, "second access never reached LL");
    }

    #[test]
    fn multi_line_access_touches_every_line() {
        let mut h = CacheHierarchy::skylake_like(1 << 20);
        h.access(0, 256, false); // 4 lines
        assert_eq!(h.all_stats()[0].1.read_misses, 4);
    }

    /// The Table V effect in miniature: with a big output column and a
    /// tiny LLC, sliding hash takes fewer LL misses than plain hash.
    #[test]
    fn sliding_beats_hash_on_ll_misses_when_table_spills() {
        // One column, 32k distinct rows over 256k row space: the numeric
        // hash table needs 64k entries ≈ 768 KB ≫ the 64 KB LLC below.
        let d = 32_768usize;
        let m = 1 << 18;
        let mats: Vec<CscMatrix<f64>> = (0..2u64)
            .map(|s| {
                let mut rows: Vec<u32> = (0..d)
                    .map(|i| {
                        (((i as u64).wrapping_mul(2654435761).wrapping_add(s * 7919)) % m as u64)
                            as u32
                    })
                    .collect();
                rows.sort_unstable();
                rows.dedup();
                let nnz = rows.len();
                CscMatrix::try_new(m, 1, vec![0, nnz], rows, vec![1.0; nnz]).unwrap()
            })
            .collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();

        let llc = 64 << 10;
        let mut plain = CacheHierarchy::skylake_like(llc);
        trace_spkadd(&refs, Algorithm::Hash, usize::MAX, &mut plain).unwrap();

        let mut sliding = CacheHierarchy::skylake_like(llc);
        // Budget sized to the LLC share: 64 KB / 12 B/entry ≈ 5 400.
        trace_spkadd(&refs, Algorithm::SlidingHash, 4096, &mut sliding).unwrap();

        let (pm, sm) = (plain.ll_stats().misses(), sliding.ll_stats().misses());
        assert!(
            sm * 2 < pm,
            "sliding LL misses {sm} should be well under hash's {pm}"
        );
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let mut h = CacheHierarchy::skylake_like(1 << 20);
        h.access(0, 8, false);
        h.reset_stats();
        assert_eq!(h.ll_stats().accesses(), 0);
        h.access(0, 8, false);
        assert_eq!(
            h.all_stats()[0].1.read_hits,
            1,
            "contents survived the stats reset"
        );
    }
}
