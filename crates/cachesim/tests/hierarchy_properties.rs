//! Property tests for the cache simulator: conservation laws and
//! monotonicity that any set-associative LRU hierarchy must satisfy.

use proptest::prelude::*;
use spk_cachesim::{CacheHierarchy, CacheLevel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inner-level hits never reach outer levels: accesses(L_{i+1}) =
    /// misses(L_i), and every level's hits + misses equals what arrived.
    #[test]
    fn level_traffic_conserves(
        addrs in proptest::collection::vec((0usize..1 << 16, 1usize..64), 1..400),
    ) {
        let mut h = CacheHierarchy::new(vec![
            CacheLevel::new("L1", 1 << 10, 64, 2),
            CacheLevel::new("L2", 4 << 10, 64, 4),
            CacheLevel::new("LL", 16 << 10, 64, 8),
        ]);
        let mut lines_issued = 0u64;
        for &(addr, bytes) in &addrs {
            let first = addr / 64;
            let last = (addr + bytes - 1) / 64;
            lines_issued += (last - first + 1) as u64;
            h.access(addr, bytes, false);
        }
        let stats = h.all_stats();
        prop_assert_eq!(stats[0].1.accesses(), lines_issued);
        prop_assert_eq!(stats[1].1.accesses(), stats[0].1.misses());
        prop_assert_eq!(stats[2].1.accesses(), stats[1].1.misses());
    }

    /// A strictly larger (same-geometry) cache never takes more misses on
    /// the same single-level trace (LRU inclusion property).
    #[test]
    fn bigger_cache_never_misses_more(
        addrs in proptest::collection::vec(0usize..1 << 14, 1..500),
    ) {
        let mut small = CacheHierarchy::new(vec![CacheLevel::new("c", 1 << 10, 64, 16)]);
        let mut big = CacheHierarchy::new(vec![CacheLevel::new("c", 4 << 10, 64, 64)]);
        for &a in &addrs {
            small.access(a, 8, false);
            big.access(a, 8, false);
        }
        // With full associativity at both sizes, LRU satisfies inclusion.
        prop_assert!(big.ll_stats().misses() <= small.ll_stats().misses());
    }

    /// Repeating a working set that fits produces no new misses.
    #[test]
    fn resident_set_replays_for_free(
        lines in proptest::collection::vec(0usize..8, 1..64),
    ) {
        // 8 distinct lines, cache holds 16.
        let mut h = CacheHierarchy::new(vec![CacheLevel::new("c", 16 * 64, 64, 16)]);
        for &l in &lines {
            h.access(l * 64, 8, false);
        }
        let misses_after_warmup = h.ll_stats().misses();
        for &l in &lines {
            h.access(l * 64, 8, false);
        }
        prop_assert_eq!(h.ll_stats().misses(), misses_after_warmup);
    }
}
