//! Property tests for the workload generators: bounds, determinism,
//! canonical form, and the structural contrasts the paper relies on.

use proptest::prelude::*;
use spk_gen::{er, generate_collection, rmat, Pattern, RmatConfig, RmatParams};
use spk_sparse::DegreeStats;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated entry is in bounds and the matrix is canonical.
    #[test]
    fn rmat_respects_bounds_and_form(
        rows in 1usize..300,
        cols in 1usize..40,
        samples in 0usize..400,
        seed in 0u64..1000,
        skewed in proptest::bool::ANY,
    ) {
        let cfg = RmatConfig {
            nrows: rows,
            ncols: cols,
            samples,
            params: if skewed { RmatParams::G500 } else { RmatParams::ER },
            sum_duplicates: true,
        };
        let m = rmat(&cfg, seed);
        prop_assert_eq!(m.shape(), (rows, cols));
        prop_assert!(m.nnz() <= samples);
        prop_assert!(m.is_sorted());
        for (r, c, _) in m.iter() {
            prop_assert!((r as usize) < rows && (c as usize) < cols);
        }
    }

    /// Generation is a pure function of the configuration and seed.
    #[test]
    fn generators_are_deterministic(seed in 0u64..500) {
        let a = er(128, 8, 4, seed);
        let b = er(128, 8, 4, seed);
        prop_assert_eq!(a, b);
        let c = generate_collection(Pattern::Rmat, 128, 4, 4, 3, seed);
        let d = generate_collection(Pattern::Rmat, 128, 4, 4, 3, seed);
        prop_assert_eq!(c, d);
    }

    /// The split protocol conserves entries exactly.
    #[test]
    fn split_conserves_nnz(
        k in 1usize..6,
        d in 1usize..16,
        seed in 0u64..200,
    ) {
        let mats = generate_collection(Pattern::Er, 256, 8, d, k, seed);
        prop_assert_eq!(mats.len(), k);
        let whole = er(256, 8 * k, d, seed);
        let split_total: usize = mats.iter().map(|m| m.nnz()).sum();
        prop_assert_eq!(split_total, whole.nnz());
    }
}

/// The paper's structural premise: G500 parameters produce visibly more
/// column skew than ER at identical density.
#[test]
fn g500_gini_exceeds_er_gini() {
    let er_m = rmat(
        &RmatConfig {
            nrows: 4096,
            ncols: 128,
            samples: 8192,
            params: RmatParams::ER,
            sum_duplicates: true,
        },
        9,
    );
    let g500_m = rmat(
        &RmatConfig {
            nrows: 4096,
            ncols: 128,
            samples: 8192,
            params: RmatParams::G500,
            sum_duplicates: true,
        },
        9,
    );
    let (ge, gg) = (DegreeStats::of(&er_m).gini, DegreeStats::of(&g500_m).gini);
    assert!(
        gg > ge + 0.2,
        "G500 gini {gg:.3} should clearly exceed ER gini {ge:.3}"
    );
}
