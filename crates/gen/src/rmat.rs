//! R-MAT and uniform (ER) matrix generation.
//!
//! R-MAT (Chakrabarti, Zhan, Faloutsos — the paper's \[14\]) recursively
//! bisects the adjacency matrix: at each level a quadrant is chosen with
//! probabilities (a, b, c, d) and one more bit of the row and column
//! indices is fixed. Skewed parameter sets concentrate nonzeros in a few
//! heavy rows/columns — the load-imbalance stressor of §III-A.
//!
//! This implementation generalizes to rectangular `m × n` matrices by
//! descending `⌈lg m⌉` row levels and `⌈lg n⌉` column levels
//! simultaneously and rejection-sampling indices that land outside the
//! actual shape.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use spk_sparse::{CooMatrix, CscMatrix};

/// R-MAT quadrant probabilities. Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left (small row, small col).
    pub a: f64,
    /// Top-right (small row, large col).
    pub b: f64,
    /// Bottom-left (large row, small col).
    pub c: f64,
    /// Bottom-right (large row, large col).
    pub d: f64,
}

impl RmatParams {
    /// The paper's ER setting: a=b=c=d=0.25 (uniform).
    pub const ER: RmatParams = RmatParams {
        a: 0.25,
        b: 0.25,
        c: 0.25,
        d: 0.25,
    };

    /// The paper's Graph500/RMAT setting: a=0.57, b=c=0.19, d=0.05.
    pub const G500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    /// Validates that the probabilities are non-negative and sum to ~1.
    pub fn is_valid(&self) -> bool {
        let s = self.a + self.b + self.c + self.d;
        self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0 && (s - 1.0).abs() < 1e-9
    }
}

/// Configuration for [`rmat`].
#[derive(Debug, Clone)]
pub struct RmatConfig {
    /// Number of rows.
    pub nrows: usize,
    /// Number of columns.
    pub ncols: usize,
    /// Number of samples drawn. After duplicate merging the stored nnz is
    /// at most this (noticeably less for skewed parameters).
    pub samples: usize,
    /// Quadrant probabilities.
    pub params: RmatParams,
    /// Merge duplicate samples by summation (otherwise they are kept,
    /// producing a non-canonical matrix — useful for testing unsorted/
    /// duplicate tolerance).
    pub sum_duplicates: bool,
}

/// Number of parallel sample chunks — fixed so results do not depend on
/// the thread count.
const GEN_CHUNKS: usize = 64;

/// Generates an R-MAT matrix with uniform values in `[0.5, 1.5)`.
pub fn rmat(cfg: &RmatConfig, seed: u64) -> CscMatrix<f64> {
    assert!(cfg.params.is_valid(), "R-MAT parameters must sum to 1");
    assert!(cfg.nrows > 0 && cfg.ncols > 0, "matrix must be non-empty");
    let row_levels = usize::BITS - (cfg.nrows - 1).max(1).leading_zeros();
    let col_levels = usize::BITS - (cfg.ncols - 1).max(1).leading_zeros();
    let levels = row_levels.max(col_levels);

    let per_chunk = cfg.samples / GEN_CHUNKS;
    let remainder = cfg.samples % GEN_CHUNKS;
    let chunks: Vec<(Vec<u32>, Vec<u32>, Vec<f64>)> = (0..GEN_CHUNKS)
        .into_par_iter()
        .map(|chunk| {
            let quota = per_chunk + usize::from(chunk < remainder);
            let mut rng = SmallRng::seed_from_u64(
                seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(chunk as u64 + 1)),
            );
            let mut rows = Vec::with_capacity(quota);
            let mut cols = Vec::with_capacity(quota);
            let mut vals = Vec::with_capacity(quota);
            for _ in 0..quota {
                let (r, c) = sample_edge(&mut rng, cfg, levels, row_levels, col_levels);
                rows.push(r);
                cols.push(c);
                vals.push(rng.gen_range(0.5..1.5));
            }
            (rows, cols, vals)
        })
        .collect();

    let mut coo = CooMatrix::with_capacity(cfg.nrows, cfg.ncols, cfg.samples);
    for (rows, cols, vals) in chunks {
        for ((r, c), v) in rows.into_iter().zip(cols).zip(vals) {
            coo.push(r, c, v);
        }
    }
    if cfg.sum_duplicates {
        coo.to_csc_sum_duplicates()
    } else {
        coo.to_csc()
    }
}

#[inline]
fn sample_edge(
    rng: &mut SmallRng,
    cfg: &RmatConfig,
    levels: u32,
    row_levels: u32,
    col_levels: u32,
) -> (u32, u32) {
    loop {
        let mut row = 0usize;
        let mut col = 0usize;
        for level in 0..levels {
            let x: f64 = rng.gen();
            // Quadrant: a | b over c | d.
            let (rbit, cbit) = if x < cfg.params.a {
                (0, 0)
            } else if x < cfg.params.a + cfg.params.b {
                (0, 1)
            } else if x < cfg.params.a + cfg.params.b + cfg.params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            if level < row_levels {
                row = (row << 1) | rbit;
            }
            if level < col_levels {
                col = (col << 1) | cbit;
            }
        }
        if row < cfg.nrows && col < cfg.ncols {
            return (row as u32, col as u32);
        }
    }
}

/// Uniform Erdős–Rényi-style matrix: `d` samples per column on average,
/// values in `[0.5, 1.5)`, duplicates merged. Statistically equivalent to
/// `rmat` with [`RmatParams::ER`] but samples indices directly.
pub fn er(nrows: usize, ncols: usize, d_per_col: usize, seed: u64) -> CscMatrix<f64> {
    assert!(nrows > 0 && ncols > 0);
    let samples = d_per_col * ncols;
    let per_chunk = samples / GEN_CHUNKS;
    let remainder = samples % GEN_CHUNKS;
    let chunks: Vec<(Vec<u32>, Vec<u32>, Vec<f64>)> = (0..GEN_CHUNKS)
        .into_par_iter()
        .map(|chunk| {
            let quota = per_chunk + usize::from(chunk < remainder);
            let mut rng = SmallRng::seed_from_u64(
                seed ^ (0xD1B5_4A32_D192_ED03u64.wrapping_mul(chunk as u64 + 1)),
            );
            let mut rows = Vec::with_capacity(quota);
            let mut cols = Vec::with_capacity(quota);
            let mut vals = Vec::with_capacity(quota);
            for _ in 0..quota {
                rows.push(rng.gen_range(0..nrows as u32));
                cols.push(rng.gen_range(0..ncols as u32));
                vals.push(rng.gen_range(0.5..1.5));
            }
            (rows, cols, vals)
        })
        .collect();
    let mut coo = CooMatrix::with_capacity(nrows, ncols, samples);
    for (rows, cols, vals) in chunks {
        for ((r, c), v) in rows.into_iter().zip(cols).zip(vals) {
            coo.push(r, c, v);
        }
    }
    coo.to_csc_sum_duplicates()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(params: RmatParams) -> RmatConfig {
        RmatConfig {
            nrows: 256,
            ncols: 64,
            samples: 4096,
            params,
            sum_duplicates: true,
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = rmat(&cfg(RmatParams::G500), 123);
        let b = rmat(&cfg(RmatParams::G500), 123);
        assert_eq!(a, b);
        let c = rmat(&cfg(RmatParams::G500), 124);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn respects_shape_and_canonical_form() {
        let m = rmat(&cfg(RmatParams::ER), 7);
        assert_eq!(m.shape(), (256, 64));
        assert!(m.nnz() <= 4096);
        assert!(m.nnz() > 3000, "ER dedup should lose few samples");
        assert!(m.is_sorted());
    }

    #[test]
    fn g500_is_more_skewed_than_er() {
        let e = rmat(&cfg(RmatParams::ER), 99);
        let g = rmat(&cfg(RmatParams::G500), 99);
        let max_col = |m: &CscMatrix<f64>| (0..m.ncols()).map(|j| m.col_nnz(j)).max().unwrap();
        assert!(
            max_col(&g) > 2 * max_col(&e),
            "G500 max column degree {} should dwarf ER's {}",
            max_col(&g),
            max_col(&e)
        );
    }

    #[test]
    fn duplicates_kept_when_requested() {
        let mut c = cfg(RmatParams::G500);
        c.sum_duplicates = false;
        let m = rmat(&c, 42);
        assert_eq!(m.nnz(), 4096, "every sample stored");
    }

    #[test]
    fn er_direct_matches_shape_and_density() {
        let m = er(512, 32, 8, 5);
        assert_eq!(m.shape(), (512, 32));
        let nnz = m.nnz();
        assert!(nnz <= 8 * 32);
        assert!(nnz > 8 * 32 * 9 / 10, "uniform sampling rarely collides");
    }

    #[test]
    fn non_power_of_two_shapes() {
        let m = rmat(
            &RmatConfig {
                nrows: 100,
                ncols: 7,
                samples: 500,
                params: RmatParams::G500,
                sum_duplicates: true,
            },
            3,
        );
        assert_eq!(m.shape(), (100, 7));
        assert!(m
            .iter()
            .all(|(r, c, _)| (r as usize) < 100 && (c as usize) < 7));
    }

    #[test]
    fn params_validation() {
        assert!(RmatParams::ER.is_valid());
        assert!(RmatParams::G500.is_valid());
        assert!(!RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5
        }
        .is_valid());
    }
}
