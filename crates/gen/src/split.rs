//! The paper's SpKAdd workload protocol (§IV-A): "we create an `m × n`
//! matrix and then split this matrix along the column to create `k`
//! matrices".
//!
//! Splitting one big matrix — rather than generating `k` independent
//! ones — matters for skewed patterns: the `k` summands inherit the same
//! heavy rows, so their sum concentrates, exactly the load-imbalance
//! scenario §III-A targets.

use crate::rmat::{er, rmat, RmatConfig, RmatParams};
use spk_sparse::CscMatrix;

/// Which sparsity pattern to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Uniform (Erdős–Rényi; R-MAT with a=b=c=d=0.25).
    Er,
    /// Power-law (Graph500; R-MAT with a=0.57, b=c=0.19, d=0.05).
    Rmat,
}

/// Splits a matrix along columns into `k` equal slabs (the last slab picks
/// up the remainder columns).
pub fn split_columns<T: spk_sparse::Scalar>(m: &CscMatrix<T>, k: usize) -> Vec<CscMatrix<T>> {
    assert!(k > 0);
    let n = m.ncols();
    let per = n / k;
    assert!(per > 0, "fewer columns ({n}) than splits ({k})");
    (0..k)
        .map(|i| {
            let c1 = i * per;
            let c2 = if i + 1 == k { n } else { (i + 1) * per };
            m.slice_cols(c1, c2)
        })
        .collect()
}

/// Generates the paper's SpKAdd input collection: `k` matrices of shape
/// `m × n`, each with ~`d` nonzeros per column, produced by splitting one
/// `m × (n·k)` matrix of the requested pattern.
pub fn generate_collection(
    pattern: Pattern,
    m: usize,
    n: usize,
    d: usize,
    k: usize,
    seed: u64,
) -> Vec<CscMatrix<f64>> {
    let whole = match pattern {
        Pattern::Er => er(m, n * k, d, seed),
        Pattern::Rmat => rmat(
            &RmatConfig {
                nrows: m,
                ncols: n * k,
                samples: d * n * k,
                params: RmatParams::G500,
                sum_duplicates: true,
            },
            seed,
        ),
    };
    split_columns(&whole, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spk_sparse::DenseMatrix;

    #[test]
    fn split_preserves_all_entries() {
        let whole = er(128, 24, 5, 11);
        let parts = split_columns(&whole, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(|p| p.nnz()).sum::<usize>(), whole.nnz());
        for p in &parts {
            assert_eq!(p.shape(), (128, 8));
        }
        // Entry-level check against the source slabs.
        for (i, p) in parts.iter().enumerate() {
            let expect = whole.slice_cols(i * 8, (i + 1) * 8);
            assert!(p.approx_eq(&expect, 0.0));
        }
    }

    #[test]
    fn split_remainder_goes_to_last() {
        let whole = er(64, 10, 3, 2);
        let parts = split_columns(&whole, 3);
        assert_eq!(parts[0].ncols(), 3);
        assert_eq!(parts[1].ncols(), 3);
        assert_eq!(parts[2].ncols(), 4);
    }

    #[test]
    fn collection_has_uniform_shape() {
        let ms = generate_collection(Pattern::Rmat, 256, 8, 4, 4, 21);
        assert_eq!(ms.len(), 4);
        for m in &ms {
            assert_eq!(m.shape(), (256, 8));
            assert!(m.is_sorted());
        }
    }

    #[test]
    fn rmat_collection_sum_is_consistent_with_whole() {
        // Summing the k splits must reproduce the whole matrix's column
        // histogram — they are literally its columns.
        let k = 4;
        let ms = generate_collection(Pattern::Er, 64, 4, 6, k, 5);
        let dense: Vec<DenseMatrix<f64>> = ms.iter().map(DenseMatrix::from_csc).collect();
        let total: f64 = ms.iter().map(|m| m.value_sum()).sum();
        assert!(total > 0.0);
        assert_eq!(dense.len(), k);
    }

    #[test]
    #[should_panic(expected = "fewer columns")]
    fn split_more_than_columns_panics() {
        let whole = er(8, 2, 1, 1);
        let _ = split_columns(&whole, 4);
    }
}
