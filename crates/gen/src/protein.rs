//! Synthetic protein-similarity workloads.
//!
//! The paper's real-data experiments use HipMCL protein-similarity
//! networks (Eukarya 3M×3M/360M nnz, Isolates 35M/17B, Metaclust50
//! 282M/37B) and, for Fig 3(c)/Fig 4(d), the *intermediate* matrices a
//! distributed SpGEMM produces from Eukarya — a collection of k=64
//! low-rank pieces with compression factor cf ≈ 22.6. Those datasets are
//! tens of gigabytes to terabytes; this module generates scaled stand-ins
//! that preserve the properties the SpKAdd algorithms are sensitive to:
//!
//! * **compression factor** — [`protein_collection`] draws each matrix's
//!   column entries from a shared per-column row pool of size `k·d/cf`,
//!   so the summands overlap heavily, exactly like SpGEMM intermediates
//!   of a clustered graph;
//! * **skew** — per-column densities follow a Zipf-like law;
//! * **clustered structure** — [`protein_similarity_matrix`] builds a
//!   block-community graph with power-law community sizes plus background
//!   noise, the input shape of the Fig 6 SpGEMM runs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use spk_sparse::{CooMatrix, CscMatrix};

/// Configuration for [`protein_collection`].
#[derive(Debug, Clone)]
pub struct ProteinConfig {
    /// Rows of every matrix.
    pub nrows: usize,
    /// Columns of every matrix.
    pub ncols: usize,
    /// Average nonzeros per column per matrix.
    pub d: usize,
    /// Number of matrices in the collection.
    pub k: usize,
    /// Target compression factor `Σ nnz(A_i) / nnz(B)` (≥ 1). Eukarya's
    /// SpGEMM intermediates measure ≈ 22.6 (paper Fig 4(d)).
    pub cf: f64,
    /// Zipf-like column-density skew exponent; 0 = uniform columns.
    pub skew: f64,
}

impl Default for ProteinConfig {
    fn default() -> Self {
        Self {
            nrows: 1 << 16,
            ncols: 1 << 10,
            d: 64,
            k: 64,
            cf: 22.6,
            skew: 0.6,
        }
    }
}

/// Generates a collection of `k` matrices whose sum compresses by ≈ `cf`.
pub fn protein_collection(cfg: &ProteinConfig, seed: u64) -> Vec<CscMatrix<f64>> {
    assert!(cfg.cf >= 1.0, "compression factor must be ≥ 1");
    assert!(cfg.k >= 1 && cfg.ncols >= 1 && cfg.nrows >= 1);
    // Zipf-ish per-column weight, normalized so the average stays d.
    let weights: Vec<f64> = (0..cfg.ncols)
        .map(|j| 1.0 / ((j + 1) as f64).powf(cfg.skew))
        .collect();
    let wsum: f64 = weights.iter().sum();
    let scale = cfg.ncols as f64 / wsum;

    (0..cfg.k)
        .map(|i| {
            // Columns are generated in parallel; every (matrix, column)
            // pool is derived from the seed alone, so matrix i's column j
            // draws from the same pool as matrix i'≠i's column j.
            let triplets: Vec<(Vec<u32>, Vec<f64>)> = (0..cfg.ncols)
                .into_par_iter()
                .map(|j| {
                    let d_j = ((cfg.d as f64) * weights[j] * scale).round().max(1.0) as usize;
                    let pool_size = (((cfg.k * d_j) as f64) / cfg.cf).round().max(1.0) as usize;
                    // Pool RNG: shared across matrices (depends on j only).
                    let mut pool_rng = SmallRng::seed_from_u64(
                        seed ^ (j as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                    );
                    let pool: Vec<u32> = (0..pool_size)
                        .map(|_| pool_rng.gen_range(0..cfg.nrows as u32))
                        .collect();
                    // Draw RNG: distinct per (matrix, column).
                    let mut rng = SmallRng::seed_from_u64(
                        seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            ^ (j as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
                    );
                    let mut rows: Vec<u32> = (0..d_j)
                        .map(|_| pool[rng.gen_range(0..pool.len())])
                        .collect();
                    rows.sort_unstable();
                    rows.dedup();
                    let vals = rows.iter().map(|_| rng.gen_range(0.0..1.0)).collect();
                    (rows, vals)
                })
                .collect();
            let nnz: usize = triplets.iter().map(|(r, _)| r.len()).sum();
            let mut coo = CooMatrix::with_capacity(cfg.nrows, cfg.ncols, nnz);
            for (j, (rows, vals)) in triplets.iter().enumerate() {
                for (r, v) in rows.iter().zip(vals) {
                    coo.push(*r, j as u32, *v);
                }
            }
            coo.to_csc_sum_duplicates()
        })
        .collect()
}

/// Generates a square clustered similarity graph: `n` proteins in
/// power-law-sized communities, each vertex connecting to ~`avg_deg`
/// others, `in_cluster` of them within its community. The Fig 6 SpGEMM
/// inputs (Metaclust50-like / Isolates-like) are scaled instances of this.
pub fn protein_similarity_matrix(
    n: usize,
    avg_deg: usize,
    num_clusters: usize,
    in_cluster: f64,
    seed: u64,
) -> CscMatrix<f64> {
    assert!(n > 0 && num_clusters > 0);
    assert!((0.0..=1.0).contains(&in_cluster));
    // Power-law community boundaries: community c covers a share ∝ 1/(c+1).
    let weights: Vec<f64> = (0..num_clusters).map(|c| 1.0 / (c + 1) as f64).collect();
    let wsum: f64 = weights.iter().sum();
    let mut bounds = Vec::with_capacity(num_clusters + 1);
    bounds.push(0usize);
    let mut acc = 0.0;
    for w in &weights {
        acc += w / wsum;
        bounds.push(((acc * n as f64) as usize).min(n));
    }
    *bounds.last_mut().unwrap() = n;

    let triplets: Vec<(Vec<u32>, Vec<f64>)> = (0..n)
        .into_par_iter()
        .map(|v| {
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (v as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
            let c = bounds.partition_point(|&b| b <= v) - 1;
            let (lo, hi) = (bounds[c], bounds[c + 1]);
            let mut rows: Vec<u32> = (0..avg_deg)
                .map(|_| {
                    if hi > lo && rng.gen::<f64>() < in_cluster {
                        rng.gen_range(lo..hi) as u32
                    } else {
                        rng.gen_range(0..n as u32)
                    }
                })
                .collect();
            rows.sort_unstable();
            rows.dedup();
            let vals = rows.iter().map(|_| rng.gen_range(0.1..1.0)).collect();
            (rows, vals)
        })
        .collect();
    let nnz: usize = triplets.iter().map(|(r, _)| r.len()).sum();
    let mut coo = CooMatrix::with_capacity(n, n, nnz);
    for (j, (rows, vals)) in triplets.iter().enumerate() {
        for (r, v) in rows.iter().zip(vals) {
            coo.push(*r, j as u32, *v);
        }
    }
    coo.to_csc_sum_duplicates()
}

/// Measured compression factor of a collection: `Σ nnz / nnz(union)`,
/// computed independently of the SpKAdd kernels (so tests can use it as
/// an oracle-side check).
pub fn measured_cf(mats: &[CscMatrix<f64>]) -> f64 {
    assert!(!mats.is_empty());
    let n = mats[0].ncols();
    let total: usize = mats.iter().map(|m| m.nnz()).sum();
    let union: usize = (0..n)
        .into_par_iter()
        .map(|j| {
            let mut rows: Vec<u32> = mats
                .iter()
                .flat_map(|m| m.col(j).rows.iter().copied())
                .collect();
            rows.sort_unstable();
            rows.dedup();
            rows.len()
        })
        .sum();
    total as f64 / union.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_is_deterministic() {
        let cfg = ProteinConfig {
            nrows: 1 << 10,
            ncols: 32,
            d: 8,
            k: 8,
            cf: 4.0,
            skew: 0.4,
        };
        let a = protein_collection(&cfg, 77);
        let b = protein_collection(&cfg, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn shapes_and_sortedness() {
        let cfg = ProteinConfig {
            nrows: 512,
            ncols: 16,
            d: 6,
            k: 4,
            cf: 3.0,
            skew: 0.0,
        };
        for m in protein_collection(&cfg, 9) {
            assert_eq!(m.shape(), (512, 16));
            assert!(m.is_sorted());
            assert!(m.nnz() > 0);
        }
    }

    #[test]
    fn compression_factor_tracks_target() {
        for target in [2.0, 8.0] {
            let cfg = ProteinConfig {
                nrows: 1 << 14,
                ncols: 64,
                d: 16,
                k: 16,
                cf: target,
                skew: 0.0,
            };
            let ms = protein_collection(&cfg, 5);
            let cf = measured_cf(&ms);
            assert!(
                (cf / target - 1.0).abs() < 0.5,
                "measured cf {cf} too far from target {target}"
            );
        }
    }

    #[test]
    fn similarity_matrix_is_clustered() {
        let m = protein_similarity_matrix(1000, 16, 10, 0.9, 31);
        assert_eq!(m.shape(), (1000, 1000));
        assert!(m.nnz() > 1000 * 8);
        assert!(m.is_sorted());
    }
}
