//! # spk-gen — deterministic sparse workload generators
//!
//! Reproduces the paper's input protocols (§IV-A):
//!
//! * [`mod@rmat`] — the recursive R-MAT generator for rectangular matrices,
//!   with the paper's two parameter sets: [`RmatParams::ER`]
//!   (a=b=c=d=0.25, Erdős–Rényi-like uniform) and [`RmatParams::G500`]
//!   (a=0.57, b=c=0.19, d=0.05, the Graph500 power-law pattern);
//! * [`er`] — direct uniform sampling (equivalent to R-MAT/ER, faster);
//! * [`split::generate_collection`] — the paper's SpKAdd workload
//!   protocol: generate one `m × (n·k)` matrix and split it along columns
//!   into `k` matrices of `m × n`, so the `k` summands share the global
//!   row-degree structure (critical for RMAT skew);
//! * [`protein`] — compression-factor-controlled synthetic stand-ins for
//!   the HipMCL protein-similarity workloads (Eukarya/Isolates/
//!   Metaclust50), which are not redistributable at laptop scale (see
//!   DESIGN.md, substitution 3).
//!
//! Everything is deterministic given an explicit `u64` seed, and
//! independent of thread count: parallel generation uses a fixed fan-out
//! of per-chunk RNG streams derived from the seed.

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

pub mod protein;
pub mod rmat;
pub mod split;

pub use protein::{protein_collection, protein_similarity_matrix, ProteinConfig};
pub use rmat::{er, rmat, RmatConfig, RmatParams};
pub use split::{generate_collection, split_columns, Pattern};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_work() {
        let m = er(64, 8, 4, 42);
        assert_eq!(m.shape(), (64, 8));
        let ms = generate_collection(Pattern::Er, 64, 4, 4, 4, 7);
        assert_eq!(ms.len(), 4);
    }
}
