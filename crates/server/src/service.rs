//! The aggregation service: shard workers, routing, and finalization.
//!
//! One OS thread per shard, each fed by a bounded channel. `submit`
//! slices the incoming matrix along the [`ShardPlan`] and sends one slab
//! to every shard; a full queue blocks the producer (backpressure), so
//! the pending-work footprint is bounded by
//! `shards × queue_depth × slab size` no matter how fast producers run.
//!
//! Each shard folds its slab stream through one
//! [`StreamingAccumulator`] per key. The accumulator's flush policy
//! defaults to the machine-model budget: a shard flushes its pending
//! slabs into the running partial once their entries outgrow the
//! shard's share of the last-level cache (the same `M / (b·T)` budget
//! the sliding-hash algorithm uses for its tables). Every accumulator
//! routes its flushes through a retained `SpkAddPlan`, so a shard
//! flushing thousands of batches at its fixed slab shape reuses its
//! hash tables instead of reallocating them per flush.

use crate::plan::ShardPlan;
use crate::ServerError;
use spk_obs::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
use spk_sparse::{CscMatrix, Element, Scalar, SparseError};
use spkadd::sliding::budget_entries;
use spkadd::{
    numeric_entry_bytes, Algorithm, FlushPolicy, KernelCounts, Monoid, NumericKernel, Options,
    Plus, SpkaddError, StreamingAccumulator,
};
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

// Channels, worker handles, and the submit counter come from the
// cfg-gated shim: `std` by default, `spk_check`'s model-aware
// primitives under `--cfg spk_model` so the submit→flush→finalize
// handoff is model-checkable (see sync_shim.rs).
use crate::sync_shim::{
    channel, spawn_worker, sync_channel, AtomicU64, JoinHandle, Ordering, Receiver, Sender,
    SyncSender,
};

/// Configuration for [`AggregatorService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shard worker count; 0 uses the machine's available parallelism.
    pub shards: usize,
    /// Bounded-queue capacity per shard (slabs); producers block when a
    /// shard's queue is full.
    pub queue_depth: usize,
    /// Local reduction algorithm each shard runs.
    pub algorithm: Algorithm,
    /// Per-shard reduction options. Defaults to one thread per shard —
    /// the service's parallelism is *across* shards, so shard-internal
    /// rayon parallelism would oversubscribe the machine.
    pub opts: Options,
    /// Flush policy for the per-key accumulators. `None` derives
    /// [`FlushPolicy::CacheBudget`] with the shard count as the number
    /// of LLC sharers.
    pub flush: Option<FlushPolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 0,
            queue_depth: 8,
            algorithm: Algorithm::Hash,
            opts: Options::default().with_threads(1),
            flush: None,
        }
    }
}

impl ServiceConfig {
    /// Default configuration with an explicit shard count.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }

    /// Sets the local reduction algorithm (builder-style).
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the flush policy (builder-style).
    pub fn with_flush(mut self, flush: FlushPolicy) -> Self {
        self.flush = Some(flush);
        self
    }

    /// Enables the pattern-keyed symbolic cache in every per-key
    /// accumulator (builder-style): each key's retained plan keeps up to
    /// `capacity` output structures keyed by input-sparsity fingerprint,
    /// skipping the symbolic phase when a batch's structure repeats. A
    /// key receiving fixed-sparsity submissions — the gradient
    /// aggregation workload this service models — hits on every flush
    /// after the first, so a capacity of 1–2 per key is usually enough.
    pub fn with_pattern_cache(mut self, capacity: usize) -> Self {
        self.opts.pattern_cache = capacity;
        self
    }
}

/// What a shard can answer during the two-round finalize protocol.
enum ShardReply<T> {
    /// Round 1: the per-column entry counts of the shard's finished
    /// partial (now stashed shard-side awaiting collection).
    Counts(Vec<usize>),
    /// Round 2: the stashed partial itself.
    Partial(CscMatrix<T>),
    Unknown,
    Failed(SpkaddError),
}

enum Msg<T: Element> {
    Slice {
        key: Arc<str>,
        slab: CscMatrix<T>,
        /// When `submit` accepted the parent matrix; the shard records
        /// `submitted_at → flush` latency when the slab's batch flushes.
        submitted_at: Instant,
    },
    /// Round 1 of finalize: flush the key's accumulator, stash the
    /// partial, answer its per-column counts.
    Finalize {
        key: Arc<str>,
        reply: Sender<ShardReply<T>>,
    },
    /// Round 2 of finalize: hand over (and forget) the stashed partial.
    Collect {
        key: Arc<str>,
        reply: Sender<ShardReply<T>>,
    },
    Shutdown,
}

/// Registry-backed handles for one shard's metrics (named
/// `shard<N>.<metric>` in the service's [`Registry`]). Handles are
/// resolved once at spawn, so the hot path is the same single relaxed
/// atomic op the old hand-rolled `AtomicU64` fields cost — migrating
/// `ShardMetrics`/`ServiceMetrics` onto the registry must not change
/// any counter value.
#[derive(Debug)]
struct ShardInstruments {
    slices: Arc<Counter>,
    batches_flushed: Arc<Counter>,
    pattern_hits: Arc<Counter>,
    pattern_misses: Arc<Counter>,
    /// Chunks dispatched per numeric kernel, indexed in
    /// [`NumericKernel::ALL`] order.
    kernels: [Arc<Counter>; NumericKernel::COUNT],
    /// Slabs sent to the shard's queue and not yet received by the
    /// worker (bounded by `queue_depth` per producer backpressure).
    queue_depth: Arc<Gauge>,
    /// Submit→flush latency per slab, in nanoseconds: from `submit`
    /// accepting the parent matrix to the batch reduction that folded
    /// the slab into the shard's running partial. Aggregated over every
    /// key the shard owns (per-key histograms would be unbounded
    /// cardinality); [`ServiceMetrics::flush_latency`] merges shards.
    flush_latency_ns: Arc<Histogram>,
}

impl ShardInstruments {
    fn new(registry: &Registry, shard: usize) -> Self {
        let name = |metric: &str| format!("shard{shard}.{metric}");
        ShardInstruments {
            slices: registry.counter(&name("slices")),
            batches_flushed: registry.counter(&name("batches_flushed")),
            pattern_hits: registry.counter(&name("pattern.hits")),
            pattern_misses: registry.counter(&name("pattern.misses")),
            kernels: NumericKernel::ALL
                .map(|k| registry.counter(&name(&format!("kernels.{}", k.token())))),
            queue_depth: registry.gauge(&name("queue_depth")),
            flush_latency_ns: registry.histogram(&name("submit_to_flush_ns")),
        }
    }
}

/// Point-in-time counters for one shard.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Row range the shard owns.
    pub rows: Range<usize>,
    /// Slabs received so far.
    pub slices: u64,
    /// Streaming batch reductions performed so far.
    pub batches_flushed: u64,
    /// Batch reductions that skipped their symbolic phase via the
    /// pattern cache (0 unless [`ServiceConfig::with_pattern_cache`]).
    pub pattern_hits: u64,
    /// Batch reductions that fingerprinted their inputs but found no
    /// cached structure.
    pub pattern_misses: u64,
    /// Histogram of numeric kernels the shard's flushes dispatched, one
    /// count per column chunk. Single-kernel for an explicit
    /// [`ServiceConfig::algorithm`]; mixes under adaptive
    /// [`Algorithm::Auto`].
    pub kernel_counts: KernelCounts,
    /// Slabs queued (or being folded) and not yet flushed-visible; 0
    /// once the shard is drained (e.g. after a finalize synchronized
    /// with it).
    pub queue_depth: i64,
    /// Submit→flush latency histogram (ns) across every key the shard
    /// owns.
    pub flush_latency: HistogramSnapshot,
}

/// Point-in-time counters for the whole service.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// Matrices accepted by [`AggregatorService::submit`].
    pub submitted: u64,
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardMetrics>,
}

impl ServiceMetrics {
    /// Total slabs routed across all shards.
    pub fn slices_routed(&self) -> u64 {
        self.shards.iter().map(|s| s.slices).sum()
    }

    /// Total streaming batch reductions across all shards.
    pub fn batches_flushed(&self) -> u64 {
        self.shards.iter().map(|s| s.batches_flushed).sum()
    }

    /// Total symbolic phases skipped via the pattern cache.
    pub fn pattern_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.pattern_hits).sum()
    }

    /// Total pattern-cache misses (cold flushes that captured structure).
    pub fn pattern_misses(&self) -> u64 {
        self.shards.iter().map(|s| s.pattern_misses).sum()
    }

    /// Service-wide kernel histogram: every shard's per-chunk dispatch
    /// counts merged.
    pub fn kernel_counts(&self) -> KernelCounts {
        let mut total = KernelCounts::default();
        for s in &self.shards {
            total.merge(&s.kernel_counts);
        }
        total
    }

    /// Total slabs currently queued across all shards.
    pub fn queue_depth(&self) -> i64 {
        self.shards.iter().map(|s| s.queue_depth).sum()
    }

    /// Service-wide submit→flush latency: the shard-local histograms
    /// folded with the associative snapshot merge.
    pub fn flush_latency(&self) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::default();
        for s in &self.shards {
            total.merge(&s.flush_latency);
        }
        total
    }

    /// The snapshot in report form: one row per shard plus service
    /// totals — the same `RunReport` shape the benches emit
    /// (`serve-demo --metrics-json` writes this).
    pub fn to_report(&self) -> spk_obs::RunReport {
        let mut report = spk_obs::RunReport::new("spk_server.service");
        report.threads(self.shards.len().max(1));
        report.config("shards", self.shards.len());
        report.config("submitted", self.submitted);
        for (s, shard) in self.shards.iter().enumerate() {
            let lat = &shard.flush_latency;
            report.result(
                spk_obs::Row::new()
                    .with("shard", s)
                    .with("rows", format!("{}..{}", shard.rows.start, shard.rows.end))
                    .with("slices", shard.slices)
                    .with("batches_flushed", shard.batches_flushed)
                    .with("pattern_hits", shard.pattern_hits)
                    .with("pattern_misses", shard.pattern_misses)
                    .with("kernels", shard.kernel_counts.to_string())
                    .with("queue_depth", shard.queue_depth)
                    .with("flush_latency_p50_ns", lat.quantile(0.5))
                    .with("flush_latency_p90_ns", lat.quantile(0.9))
                    .with("flush_latency_mean_ns", lat.mean()),
            );
        }
        report.summary("submitted", self.submitted);
        report.summary("slices_routed", self.slices_routed());
        report.summary("batches_flushed", self.batches_flushed());
        report.summary("pattern_hits", self.pattern_hits());
        report.summary("pattern_misses", self.pattern_misses());
        report.summary("kernel_counts", self.kernel_counts().to_string());
        report.summary("queue_depth", self.queue_depth());
        let lat = self.flush_latency();
        report.summary("flush_latency_count", lat.count);
        report.summary("flush_latency_p50_ns", lat.quantile(0.5));
        report.summary("flush_latency_p90_ns", lat.quantile(0.9));
        report
    }
}

/// A row-range-sharded, concurrent, keyed SpKAdd aggregation engine.
///
/// See the [crate docs](crate) for the architecture. Submissions for
/// one key may come from many threads; the caller must ensure all
/// `submit` calls for a key happen-before its `finalize` (join the
/// producers first). Finalizing while submissions for the same key are
/// still in flight yields an unspecified torn state — an in-flight
/// matrix may be counted by some shards' partials and missed by others,
/// so the result is not the sum of any prefix of the stream.
pub struct AggregatorService<T: Element, O: Monoid<Value = T> = Plus<T>> {
    shape: (usize, usize),
    plan: ShardPlan,
    algorithm: Algorithm,
    validate_sorted: bool,
    senders: Vec<SyncSender<Msg<T>>>,
    /// Per-service metric registry; shard instruments resolve their
    /// handles here once at spawn.
    registry: Arc<Registry>,
    instruments: Vec<Arc<ShardInstruments>>,
    submitted: AtomicU64,
    workers: Vec<JoinHandle<()>>,
    _monoid: std::marker::PhantomData<O>,
}

impl<T: Scalar> AggregatorService<T> {
    /// Spawns the shard workers for `nrows × ncols` matrices.
    pub fn new(nrows: usize, ncols: usize, config: ServiceConfig) -> Self {
        Self::with_monoid(nrows, ncols, config, Plus::new())
    }
}

impl<T: Element, O: Monoid<Value = T>> AggregatorService<T, O> {
    /// Spawns the shard workers, reducing every key's stream under
    /// `monoid` instead of `+`. The shards partition *rows*, so entries
    /// owned by different shards are never combined with each other —
    /// the monoid only ever folds same-position entries inside one
    /// shard's accumulator, and the finalize concatenation is
    /// monoid-independent.
    pub fn with_monoid(nrows: usize, ncols: usize, config: ServiceConfig, monoid: O) -> Self {
        let shards = if config.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.shards
        };
        let plan = ShardPlan::uniform(nrows, shards);
        let policy = config
            .flush
            .unwrap_or(FlushPolicy::CacheBudget { sharers: shards });
        // S shard reductions run concurrently, but each shard's Options
        // see threads=1 — left alone, the sliding algorithms would size
        // their tables as if they owned the whole LLC. Force the shared
        // budget `M/(b·S)` unless the caller pinned one explicitly.
        let mut shard_opts = config.opts.clone();
        if shard_opts.forced_table_entries.is_none() {
            shard_opts.forced_table_entries = Some(budget_entries(
                shard_opts.cache.llc_bytes,
                numeric_entry_bytes::<T>(),
                shards,
            ));
        }
        let queue_depth = config.queue_depth.max(1);
        let registry = Arc::new(Registry::new());
        let mut senders = Vec::with_capacity(shards);
        let mut instruments = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for s in 0..shards {
            let (tx, rx) = sync_channel::<Msg<T>>(queue_depth);
            let ins = Arc::new(ShardInstruments::new(&registry, s));
            let shard_rows = plan.range(s).len();
            let algorithm = config.algorithm;
            let opts = shard_opts.clone();
            let worker_ins = Arc::clone(&ins);
            let handle = spawn_worker(format!("spk-shard-{s}"), move || {
                shard_worker(
                    rx, shard_rows, ncols, algorithm, policy, opts, monoid, worker_ins,
                )
            });
            senders.push(tx);
            instruments.push(ins);
            workers.push(handle);
        }
        Self {
            shape: (nrows, ncols),
            plan,
            algorithm: config.algorithm,
            validate_sorted: config.opts.validate_sorted,
            senders,
            registry,
            instruments,
            submitted: AtomicU64::new(0),
            workers,
            _monoid: std::marker::PhantomData,
        }
    }

    /// The service's metric registry (`shard<N>.<metric>` names); for
    /// raw named access — [`AggregatorService::metrics`] is the typed
    /// view of the same values.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Name-keyed snapshot of every service metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The service's row partition.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Shape every submitted matrix must have.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// Accepts one matrix for aggregation under `key`: slices it along
    /// the shard plan and routes one slab to every shard. Blocks when a
    /// shard queue is full (backpressure).
    ///
    /// Rejection errors always describe the matrix passed to *this*
    /// call, so their `operand` index is 0 — with concurrent producers
    /// and many keys there is no meaningful global stream position.
    pub fn submit(&self, key: &str, m: &CscMatrix<T>) -> Result<(), ServerError> {
        if m.shape() != self.shape {
            return Err(ServerError::Sparse(SparseError::DimensionMismatch {
                expected: self.shape,
                found: m.shape(),
                operand: 0,
            }));
        }
        // Row slabs of a sorted matrix are sorted, so one up-front check
        // covers every shard's precondition.
        if self.validate_sorted && self.algorithm.needs_sorted_inputs() && !m.is_sorted() {
            return Err(ServerError::Spkadd(SpkaddError::UnsortedInput {
                algorithm: self.algorithm.name(),
                operand: 0,
            }));
        }
        let key: Arc<str> = Arc::from(key);
        let submitted_at = spk_obs::now();
        // One pass over the matrix produces every shard's slab. Route to
        // every live shard even if one is down, so the surviving shards
        // stay mutually consistent; the error still reports the outage.
        let mut first_down: Option<ServerError> = None;
        let slabs = m.row_split(self.plan.bounds());
        for (s, (tx, slab)) in self.senders.iter().zip(slabs).enumerate() {
            if tx
                .send(Msg::Slice {
                    key: Arc::clone(&key),
                    slab,
                    submitted_at,
                })
                .is_err()
            {
                first_down.get_or_insert(ServerError::ShardDown(s));
            } else {
                // Decremented by the worker when it dequeues the slab.
                self.instruments[s].queue_depth.add(1);
            }
        }
        if let Some(e) = first_down {
            return Err(e);
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Finalizes `key` with a two-round, column-streaming sink.
    ///
    /// Round 1 asks every shard to flush its accumulator and answer only
    /// the *per-column entry counts* of its (stashed) partial. Summing
    /// the counts column-interleaved gives the exact global `colptr`, so
    /// the result buffers are allocated **once**, at their final size.
    /// Round 2 then collects the partials one shard at a time, in shard
    /// order, scattering each straight into its per-column windows and
    /// dropping it immediately — the transient memory above the final
    /// result is one shard's partial, not a second full copy as a
    /// materialize-everything-then-`vstack` sink would need.
    ///
    /// Consumes the key's state on every reachable shard — even when an
    /// error is returned — so a second finalize for the same key reports
    /// [`ServerError::UnknownKey`]; a failed finalize cannot be retried.
    pub fn finalize(&self, key: &str) -> Result<CscMatrix<T>, ServerError> {
        let key: Arc<str> = Arc::from(key);
        // Round 1: one reply channel per shard keeps the counts in shard
        // order. Broadcast to every live shard before draining any
        // reply, so a downed shard cannot leave the others' per-key
        // state half-consumed.
        let mut first_error: Option<ServerError> = None;
        let mut replies = Vec::with_capacity(self.senders.len());
        for (s, tx) in self.senders.iter().enumerate() {
            let (reply_tx, reply_rx) = channel();
            match tx.send(Msg::Finalize {
                key: Arc::clone(&key),
                reply: reply_tx,
            }) {
                Ok(()) => replies.push(Some(reply_rx)),
                Err(_) => {
                    first_error.get_or_insert(ServerError::ShardDown(s));
                    replies.push(None);
                }
            }
        }
        // `counted[s]` = Some(per-column counts) iff shard s stashed a
        // partial that round 2 must consume no matter what.
        let mut counted: Vec<Option<Vec<usize>>> = Vec::with_capacity(replies.len());
        for (s, rx) in replies.into_iter().enumerate() {
            let Some(rx) = rx else {
                counted.push(None);
                continue;
            };
            match rx.recv() {
                Ok(ShardReply::Counts(c)) => counted.push(Some(c)),
                Ok(ShardReply::Partial(_)) => unreachable!("round 1 never ships a partial"),
                Ok(ShardReply::Unknown) => {
                    first_error.get_or_insert_with(|| ServerError::UnknownKey(key.to_string()));
                    counted.push(None);
                }
                Ok(ShardReply::Failed(e)) => {
                    first_error.get_or_insert(ServerError::Spkadd(e));
                    counted.push(None);
                }
                Err(_) => {
                    first_error.get_or_insert(ServerError::ShardDown(s));
                    counted.push(None);
                }
            }
        }
        if let Some(e) = first_error {
            // Failed finalize still consumes the key: collect and drop
            // the stashed partials of the shards that did flush.
            for (s, c) in counted.iter().enumerate() {
                if c.is_some() {
                    if let Some(rx) = self.collect_from(s, &key) {
                        let _ = rx.recv();
                    }
                }
            }
            return Err(e);
        }

        // Exact global colptr: within each column, shard partials land in
        // ascending shard order (their row ranges are disjoint and
        // increasing), so counts interleave per column.
        let ncols = self.shape.1;
        let mut colptr = vec![0usize; ncols + 1];
        for counts in counted.iter().flatten() {
            debug_assert_eq!(counts.len(), ncols);
            for (j, &c) in counts.iter().enumerate() {
                colptr[j + 1] += c;
            }
        }
        for j in 0..ncols {
            colptr[j + 1] += colptr[j];
        }
        let nnz = colptr[ncols];
        let mut rowidx = vec![0u32; nnz];
        let mut values = vec![T::default(); nnz];
        // Per-column write cursors; shard s's slice of column j starts
        // where shard s-1's ended.
        let mut cursor = colptr.clone();
        cursor.pop();

        // Round 2: stream the partials through, one shard at a time.
        for s in 0..counted.len() {
            let row_base = self.plan.range(s).start as u32;
            let Some(rx) = self.collect_from(s, &key) else {
                return Err(ServerError::ShardDown(s));
            };
            let partial = match rx.recv() {
                Ok(ShardReply::Partial(p)) => p,
                _ => return Err(ServerError::ShardDown(s)),
            };
            for (j, cur) in cursor.iter_mut().enumerate() {
                let col = partial.col(j);
                let dst = *cur;
                let end = dst + col.rows.len();
                for (slot, &r) in rowidx[dst..end].iter_mut().zip(col.rows) {
                    *slot = r + row_base;
                }
                values[dst..end].copy_from_slice(col.vals);
                *cur = end;
            }
            // `partial` drops here, before the next shard's arrives.
        }
        debug_assert!(cursor.iter().zip(&colptr[1..]).all(|(c, p)| c == p));
        Ok(CscMatrix::from_parts(
            self.shape.0,
            ncols,
            colptr,
            rowidx,
            values,
        ))
    }

    /// Sends a round-2 `Collect` for `key` to shard `s`; `None` if the
    /// shard is down.
    fn collect_from(&self, s: usize, key: &Arc<str>) -> Option<Receiver<ShardReply<T>>> {
        let (reply_tx, reply_rx) = channel();
        self.senders[s]
            .send(Msg::Collect {
                key: Arc::clone(key),
                reply: reply_tx,
            })
            .ok()?;
        Some(reply_rx)
    }

    /// Current service counters.
    pub fn metrics(&self) -> ServiceMetrics {
        ServiceMetrics {
            submitted: self.submitted.load(Ordering::Relaxed),
            shards: self
                .instruments
                .iter()
                .enumerate()
                .map(|(s, ins)| {
                    let mut kernel_counts = KernelCounts::default();
                    for (slot, kern) in ins.kernels.iter().zip(NumericKernel::ALL) {
                        kernel_counts.add(kern, slot.get());
                    }
                    ShardMetrics {
                        rows: self.plan.range(s),
                        slices: ins.slices.get(),
                        batches_flushed: ins.batches_flushed.get(),
                        pattern_hits: ins.pattern_hits.get(),
                        pattern_misses: ins.pattern_misses.get(),
                        kernel_counts,
                        queue_depth: ins.queue_depth.get(),
                        flush_latency: ins.flush_latency_ns.snapshot(),
                    }
                })
                .collect(),
        }
    }

    /// Stops the workers and waits for them to exit. Dropping the
    /// service does the same; this form surfaces worker panics.
    pub fn shutdown(mut self) -> std::thread::Result<()> {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        let mut result = Ok(());
        for h in self.workers.drain(..) {
            if let Err(e) = h.join() {
                result = Err(e);
            }
        }
        result
    }
}

impl<T: Element, O: Monoid<Value = T>> Drop for AggregatorService<T, O> {
    fn drop(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Per-key accumulation state inside one shard worker.
struct KeyState<T: Element, O: Monoid<Value = T>> {
    acc: StreamingAccumulator<T, O>,
    /// First reduction error, if any; reported at finalize. Later slices
    /// for the key are dropped once poisoned.
    error: Option<SpkaddError>,
    /// Pattern-cache counts already folded into the shard counters, so
    /// each flush's hits/misses are published exactly once.
    pattern_seen: (u64, u64),
    /// Kernel histogram already folded into the shard counters; deltas
    /// against the accumulator's running histogram are published after
    /// every flush.
    kernels_seen: KernelCounts,
    /// Submit timestamps of the slabs buffered in `acc` (zero-nnz slabs
    /// excluded — the accumulator drops them without ever flushing).
    /// Drained into the shard's latency histogram when a flush folds
    /// the whole pending batch.
    pending_since: Vec<Instant>,
}

/// Publishes the accumulator's pattern-cache activity since the last
/// sync to the shard counters.
fn sync_pattern_counters<T: Element, O: Monoid<Value = T>>(
    acc: &StreamingAccumulator<T, O>,
    seen: &mut (u64, u64),
    instruments: &ShardInstruments,
) {
    if let Some(stats) = acc.pattern_stats() {
        let (dh, dm) = (stats.hits - seen.0, stats.misses - seen.1);
        if dh > 0 {
            instruments.pattern_hits.add(dh);
        }
        if dm > 0 {
            instruments.pattern_misses.add(dm);
        }
        *seen = (stats.hits, stats.misses);
    }
}

/// Publishes the accumulator's kernel-dispatch activity since the last
/// sync to the shard counters.
fn sync_kernel_counters<T: Element, O: Monoid<Value = T>>(
    acc: &StreamingAccumulator<T, O>,
    seen: &mut KernelCounts,
    instruments: &ShardInstruments,
) {
    let now = acc.kernel_counts();
    for (slot, kern) in instruments.kernels.iter().zip(NumericKernel::ALL) {
        let delta = now.get(kern) - seen.get(kern);
        if delta > 0 {
            slot.add(delta);
        }
    }
    *seen = now;
}

/// Drains the pending submit timestamps into the shard's latency
/// histogram — called after a flush folded the whole pending batch.
fn record_flush_latencies(pending_since: &mut Vec<Instant>, instruments: &ShardInstruments) {
    let now = spk_obs::now();
    for t in pending_since.drain(..) {
        instruments
            .flush_latency_ns
            .record(now.saturating_duration_since(t).as_nanos() as u64);
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_worker<T: Element, O: Monoid<Value = T>>(
    rx: Receiver<Msg<T>>,
    shard_rows: usize,
    ncols: usize,
    algorithm: Algorithm,
    policy: FlushPolicy,
    opts: Options,
    monoid: O,
    instruments: Arc<ShardInstruments>,
) {
    let mut keys: HashMap<Arc<str>, KeyState<T, O>> = HashMap::new();
    // Partials flushed by a round-1 `Finalize`, awaiting their round-2
    // `Collect`.
    let mut stash: HashMap<Arc<str>, CscMatrix<T>> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            Msg::Slice {
                key,
                slab,
                submitted_at,
            } => {
                instruments.queue_depth.sub(1);
                instruments.slices.inc();
                let state = keys.entry(key).or_insert_with(|| KeyState {
                    acc: StreamingAccumulator::with_monoid(
                        shard_rows,
                        ncols,
                        policy,
                        algorithm,
                        opts.clone(),
                        monoid,
                    ),
                    error: None,
                    pattern_seen: (0, 0),
                    kernels_seen: KernelCounts::default(),
                    pending_since: Vec::new(),
                });
                if state.error.is_none() {
                    // The accumulator drops zero-nnz slabs without ever
                    // flushing them, so they get no latency sample.
                    if slab.nnz() > 0 {
                        state.pending_since.push(submitted_at);
                    }
                    let before = state.acc.batches_flushed();
                    if let Err(e) = state.acc.push(slab) {
                        state.error = Some(e);
                        state.pending_since.clear();
                    }
                    let flushed = state.acc.batches_flushed() - before;
                    if flushed > 0 {
                        instruments.batches_flushed.add(flushed as u64);
                        sync_pattern_counters(&state.acc, &mut state.pattern_seen, &instruments);
                        sync_kernel_counters(&state.acc, &mut state.kernels_seen, &instruments);
                        // A flush folds the entire pending batch
                        // (including the slab that triggered it).
                        record_flush_latencies(&mut state.pending_since, &instruments);
                    }
                }
            }
            Msg::Finalize { key, reply } => {
                let answer = match keys.remove(&key) {
                    None => ShardReply::Unknown,
                    Some(KeyState { error: Some(e), .. }) => ShardReply::Failed(e),
                    Some(KeyState {
                        mut acc,
                        error: None,
                        mut pattern_seen,
                        mut kernels_seen,
                        mut pending_since,
                    }) => {
                        // Flush the tail batch explicitly so its
                        // pattern-cache activity is still observable
                        // (`finish` consumes the accumulator).
                        let had_pending = acc.pending() > 0;
                        match acc.flush() {
                            Err(e) => ShardReply::Failed(e),
                            Ok(()) => {
                                if had_pending {
                                    instruments.batches_flushed.inc();
                                    sync_pattern_counters(&acc, &mut pattern_seen, &instruments);
                                }
                                sync_kernel_counters(&acc, &mut kernels_seen, &instruments);
                                record_flush_latencies(&mut pending_since, &instruments);
                                match acc.finish() {
                                    Ok(partial) => {
                                        let counts = partial.col_nnz_counts();
                                        stash.insert(key, partial);
                                        ShardReply::Counts(counts)
                                    }
                                    Err(e) => ShardReply::Failed(e),
                                }
                            }
                        }
                    }
                };
                let _ = reply.send(answer);
            }
            Msg::Collect { key, reply } => {
                let answer = match stash.remove(&key) {
                    Some(p) => ShardReply::Partial(p),
                    None => ShardReply::Unknown,
                };
                let _ = reply.send(answer);
            }
            Msg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spkadd::{spkadd_with, Options};

    fn shifted_diag(n: usize, s: u32) -> CscMatrix<f64> {
        let colptr = (0..=n).collect();
        let rows = (0..n as u32).map(|j| (j + s) % n as u32).collect();
        CscMatrix::try_new(n, n, colptr, rows, vec![1.0; n]).unwrap()
    }

    #[test]
    fn sharded_sum_matches_one_shot() {
        let mats: Vec<CscMatrix<f64>> = (0..12).map(|i| shifted_diag(32, i % 7)).collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let oneshot = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();

        let svc = AggregatorService::new(32, 32, ServiceConfig::with_shards(4));
        for m in &mats {
            svc.submit("job", m).unwrap();
        }
        let sum = svc.finalize("job").unwrap();
        assert_eq!(sum, oneshot, "integer-valued stream must agree exactly");
    }

    #[test]
    fn keys_are_isolated() {
        let svc = AggregatorService::<f64>::new(8, 8, ServiceConfig::with_shards(2));
        svc.submit("a", &shifted_diag(8, 0)).unwrap();
        svc.submit("b", &shifted_diag(8, 1)).unwrap();
        svc.submit("a", &shifted_diag(8, 0)).unwrap();
        let a = svc.finalize("a").unwrap();
        let b = svc.finalize("b").unwrap();
        assert_eq!(a.get(0, 0).unwrap(), 2.0);
        assert_eq!(b.get(1, 0).unwrap(), 1.0);
        assert_eq!(b.nnz(), 8);
    }

    #[test]
    fn finalize_consumes_the_key() {
        let svc = AggregatorService::<f64>::new(8, 8, ServiceConfig::with_shards(2));
        svc.submit("once", &shifted_diag(8, 0)).unwrap();
        svc.finalize("once").unwrap();
        assert!(matches!(
            svc.finalize("once"),
            Err(ServerError::UnknownKey(_))
        ));
    }

    #[test]
    fn unknown_key_rejected() {
        let svc = AggregatorService::<f64>::new(8, 8, ServiceConfig::with_shards(2));
        svc.submit("present", &shifted_diag(8, 0)).unwrap();
        assert!(matches!(
            svc.finalize("absent"),
            Err(ServerError::UnknownKey(_))
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let svc = AggregatorService::<f64>::new(8, 8, ServiceConfig::with_shards(2));
        assert!(matches!(
            svc.submit("job", &CscMatrix::zeros(9, 8)),
            Err(ServerError::Sparse(SparseError::DimensionMismatch { .. }))
        ));
    }

    #[test]
    fn unsorted_input_rejected_for_sorted_algorithms() {
        let svc = AggregatorService::<f64>::new(
            4,
            1,
            ServiceConfig::with_shards(2).with_algorithm(Algorithm::Heap),
        );
        let unsorted =
            CscMatrix::try_new(4, 1, vec![0, 3], vec![3, 0, 2], vec![1.0, 2.0, 3.0]).unwrap();
        assert!(matches!(
            svc.submit("job", &unsorted),
            Err(ServerError::Spkadd(SpkaddError::UnsortedInput { .. }))
        ));
    }

    #[test]
    fn concurrent_producers_agree_with_one_shot() {
        let mats: Vec<CscMatrix<f64>> = (0..32).map(|i| shifted_diag(64, i % 9)).collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let oneshot = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();

        let svc = AggregatorService::new(64, 64, ServiceConfig::with_shards(4));
        std::thread::scope(|scope| {
            for chunk in mats.chunks(8) {
                let svc = &svc;
                scope.spawn(move || {
                    for m in chunk {
                        svc.submit("job", m).unwrap();
                    }
                });
            }
        });
        let sum = svc.finalize("job").unwrap();
        assert_eq!(sum, oneshot);
        let metrics = svc.metrics();
        assert_eq!(metrics.submitted, 32);
        assert_eq!(metrics.slices_routed(), 32 * 4);
    }

    #[test]
    fn tiny_flush_budget_still_exact() {
        // Force a flush after every single slab: exercises the
        // batch + 2-way streaming path inside every shard.
        let config = ServiceConfig::with_shards(3).with_flush(FlushPolicy::Nnz(1));
        let mats: Vec<CscMatrix<f64>> = (0..6).map(|i| shifted_diag(16, i)).collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let oneshot = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        let svc = AggregatorService::new(16, 16, config);
        for m in &mats {
            svc.submit("job", m).unwrap();
        }
        let sum = svc.finalize("job").unwrap();
        assert_eq!(sum, oneshot);
        assert!(svc.metrics().batches_flushed() >= 6, "every slab flushed");
    }

    #[test]
    fn more_shards_than_rows() {
        let svc = AggregatorService::<f64>::new(3, 5, ServiceConfig::with_shards(8));
        let m = CscMatrix::try_new(
            3,
            5,
            vec![0, 1, 1, 2, 2, 3],
            vec![0, 2, 1],
            vec![1.0, 2.0, 3.0],
        )
        .unwrap();
        svc.submit("job", &m).unwrap();
        svc.submit("job", &m).unwrap();
        let sum = svc.finalize("job").unwrap();
        let mut expect = m.clone();
        expect.scale(2.0);
        assert_eq!(sum, expect);
    }

    #[test]
    fn invalid_shard_options_surface_as_typed_errors() {
        // A nonsense per-shard config (zero-entry sliding tables) must
        // come back as `SpkaddError::InvalidOptions` from the poisoned
        // key's finalize — not a worker panic.
        let mut opts = Options::default().with_threads(1);
        opts.forced_table_entries = Some(0);
        let config = ServiceConfig {
            shards: 2,
            queue_depth: 4,
            algorithm: Algorithm::Hash,
            opts,
            flush: Some(FlushPolicy::Nnz(1)),
        };
        let svc = AggregatorService::new(8, 8, config);
        svc.submit("job", &shifted_diag(8, 0)).unwrap();
        assert!(matches!(
            svc.finalize("job"),
            Err(ServerError::Spkadd(SpkaddError::InvalidOptions(_)))
        ));
    }

    #[test]
    fn pattern_cache_hits_on_steady_sparsity() {
        // A fixed-structure stream (the gradient workload): every flush
        // after a shard's first should hit the per-key pattern cache.
        let config = ServiceConfig::with_shards(2)
            .with_flush(FlushPolicy::Matrices(2))
            .with_pattern_cache(2);
        let mats: Vec<CscMatrix<f64>> = (0..8)
            .map(|i| {
                let mut m = shifted_diag(16, 3);
                m.values_mut().iter_mut().for_each(|v| *v = 1.0 + i as f64);
                m
            })
            .collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let oneshot = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        let svc = AggregatorService::new(16, 16, config);
        for m in &mats {
            svc.submit("job", m).unwrap();
        }
        // Finalize first: it synchronizes with the shard workers, so the
        // counters are final when read.
        let sum = svc.finalize("job").unwrap();
        assert_eq!(sum, oneshot, "cache hits must not change the result");
        let metrics = svc.metrics();
        // 4 flushes per shard: one cold miss, then steady hits.
        assert_eq!(metrics.pattern_misses(), 2, "one cold flush per shard");
        assert_eq!(metrics.pattern_hits(), 6, "3 warm flushes per shard");
    }

    #[test]
    fn kernel_histogram_counts_flush_chunks() {
        // Explicit Hash algorithm: every k-way flush chunk must land in
        // the hash bucket and nowhere else, and the counts must survive
        // aggregation across shards.
        let config = ServiceConfig::with_shards(2).with_flush(FlushPolicy::Matrices(2));
        let mats: Vec<CscMatrix<f64>> = (0..8).map(|i| shifted_diag(16, i % 5)).collect();
        let svc = AggregatorService::new(16, 16, config);
        for m in &mats {
            svc.submit("job", m).unwrap();
        }
        // Finalize synchronizes with the workers, so the histogram is
        // final when read.
        svc.finalize("job").unwrap();
        let kc = svc.metrics().kernel_counts();
        assert!(
            kc.get(NumericKernel::Hash) > 0,
            "warm flushes (batch + running total = 3-way) must dispatch hash chunks"
        );
        assert_eq!(
            kc.total(),
            kc.get(NumericKernel::Hash),
            "an explicit algorithm never mixes kernels"
        );
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let svc = AggregatorService::<f64>::new(8, 8, ServiceConfig::with_shards(2));
        svc.submit("job", &shifted_diag(8, 0)).unwrap();
        svc.shutdown().unwrap();
    }

    #[test]
    fn registry_metrics_bit_identical_to_direct_accumulator() {
        // The registry migration is observability plumbing, not
        // accounting: a 1-shard service must report exactly the values a
        // directly-driven StreamingAccumulator accrues for the same
        // stream.
        let mats: Vec<CscMatrix<f64>> = (0..8).map(|i| shifted_diag(16, i % 5)).collect();
        let config = ServiceConfig::with_shards(1)
            .with_flush(FlushPolicy::Matrices(2))
            .with_pattern_cache(2);
        let svc = AggregatorService::new(16, 16, config);
        for m in &mats {
            svc.submit("job", m).unwrap();
        }
        svc.finalize("job").unwrap();
        let metrics = svc.metrics();

        // Mirror the worker's accumulator: threads=1 options, the shared
        // table budget for a single sharer, same policy + pattern cache.
        let mut opts = Options::default().with_threads(1);
        opts.pattern_cache = 2;
        opts.forced_table_entries = Some(budget_entries(
            opts.cache.llc_bytes,
            numeric_entry_bytes::<f64>(),
            1,
        ));
        let mut acc = StreamingAccumulator::<f64>::with_policy(
            16,
            16,
            FlushPolicy::Matrices(2),
            Algorithm::Hash,
            opts,
        );
        for m in &mats {
            acc.push(m.clone()).unwrap();
        }
        acc.flush().unwrap();

        assert_eq!(metrics.slices_routed(), mats.len() as u64);
        assert_eq!(metrics.batches_flushed(), acc.batches_flushed() as u64);
        let stats = acc.pattern_stats().expect("pattern cache enabled");
        assert_eq!(metrics.pattern_hits(), stats.hits);
        assert_eq!(metrics.pattern_misses(), stats.misses);
        assert_eq!(metrics.kernel_counts(), acc.kernel_counts());

        // The raw registry snapshot agrees with the ShardMetrics view.
        let snap = svc.metrics_snapshot();
        assert_eq!(snap.counter("shard0.slices"), Some(metrics.slices_routed()));
        assert_eq!(
            snap.counter("shard0.batches_flushed"),
            Some(metrics.batches_flushed())
        );
        assert_eq!(snap.counter("shard0.pattern.hits"), Some(stats.hits));
        assert_eq!(snap.counter("shard0.pattern.misses"), Some(stats.misses));
        assert_eq!(
            snap.counter("shard0.kernels.hash"),
            Some(acc.kernel_counts().get(NumericKernel::Hash))
        );
    }

    #[test]
    fn queue_depth_gauge_drains_to_zero() {
        let svc = AggregatorService::new(16, 16, ServiceConfig::with_shards(2));
        for i in 0..6 {
            svc.submit("job", &shifted_diag(16, i)).unwrap();
        }
        // Finalize synchronizes with every worker (FIFO queues), so all
        // Slice messages were dequeued by the time it returns.
        svc.finalize("job").unwrap();
        let metrics = svc.metrics();
        assert_eq!(metrics.queue_depth(), 0, "drained queues read depth 0");
        for shard in &metrics.shards {
            assert_eq!(shard.queue_depth, 0);
        }
    }

    #[test]
    fn flush_latency_histogram_samples_every_flushed_slab() {
        let config = ServiceConfig::with_shards(2).with_flush(FlushPolicy::Matrices(2));
        let mats: Vec<CscMatrix<f64>> = (0..8).map(|i| shifted_diag(16, i % 5)).collect();
        let svc = AggregatorService::new(16, 16, config);
        for m in &mats {
            svc.submit("job", m).unwrap();
        }
        svc.finalize("job").unwrap();
        let lat = svc.metrics().flush_latency();
        // Every shifted-diagonal slab keeps entries in both 8-row shards,
        // and Matrices(2) flushes them all before finalize.
        assert_eq!(lat.count, 16, "one latency sample per flushed slab");
        assert_eq!(
            lat.count,
            lat.buckets.iter().sum::<u64>(),
            "bucket counts account for every sample"
        );
        let report = svc.metrics().to_report();
        let json = report.json_string();
        spk_obs::schema::validate_str(&json).expect("service report validates");
    }
}
