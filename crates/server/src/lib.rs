//! # spk_server — a sharded, concurrent SpKAdd aggregation service
//!
//! The SpKAdd kernels (arXiv:2112.10223) are single-call primitives: hand
//! them `k` matrices, get the sum. Production aggregation traffic looks
//! different — gradients and FEM element blocks arrive *one at a time*,
//! tagged with a key (a training step, a mesh), from many producers at
//! once. This crate turns the kernels into a service for that shape of
//! load, borrowing the canonical scaling recipe of 2D-partitioned sparse
//! algebra (Buluç–Gilbert, arXiv:1109.3739): partition the index space,
//! run the cache-optimal local kernel per partition, reduce across
//! partitions.
//!
//! * [`ShardPlan`] partitions the row space into `S` contiguous ranges.
//! * [`AggregatorService`] owns `S` shard workers — one OS thread each,
//!   fed by **bounded** channels, so a fast producer blocks instead of
//!   ballooning memory (backpressure).
//! * [`AggregatorService::submit`] splits an incoming CSC matrix into
//!   row slabs in one pass
//!   ([`CscMatrix::row_split`](spk_sparse::CscMatrix::row_split)) and
//!   routes one slab to every shard.
//! * Each shard folds its slab stream through a
//!   [`StreamingAccumulator`](spkadd::StreamingAccumulator) whose
//!   [`FlushPolicy`](spkadd::FlushPolicy) is derived from the machine
//!   model ([`CacheConfig`](spkadd::CacheConfig)): pending slab entries
//!   must fit in the shard's share of the LLC.
//! * [`AggregatorService::finalize`] assembles the exact global sum with
//!   a two-round, column-streaming sink: round 1 gathers only each
//!   shard's per-column entry *counts* (which fix the global `colptr`
//!   and let the result be allocated once, at final size), round 2
//!   collects the partials one shard at a time and scatters each into
//!   its column windows before the next arrives. Because the row ranges
//!   are disjoint, the cross-shard tree reduction `Σ_s partial_s`
//!   degenerates to concatenation — no numeric work, no rounding: the
//!   result is *entry-for-entry identical* to a one-shot `spkadd_with`
//!   over the same stream whenever the scalar additions are exact
//!   (integers, or integer-valued floats), which the service test-suite
//!   asserts.
//! * [`AggregatorService::with_monoid`] runs the same machinery under
//!   any [`Monoid`](spkadd::Monoid) — e.g. `Or` folds boolean adjacency
//!   snapshots into their structural union (see
//!   `examples/graph_union.rs`).
//!
//! ```
//! use spk_server::{AggregatorService, ServiceConfig};
//! use spk_sparse::CscMatrix;
//!
//! let svc = AggregatorService::<f64>::new(4, 4, ServiceConfig::with_shards(2));
//! svc.submit("step-0", &CscMatrix::identity(4)).unwrap();
//! svc.submit("step-0", &CscMatrix::identity(4)).unwrap();
//! let sum = svc.finalize("step-0").unwrap();
//! assert_eq!(sum.get(3, 3).unwrap(), 2.0);
//! ```

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

pub mod plan;
pub mod service;
pub(crate) mod sync_shim;

pub use plan::ShardPlan;
pub use service::{AggregatorService, ServiceConfig, ServiceMetrics, ShardMetrics};

use spk_sparse::SparseError;
use spkadd::SpkaddError;

/// Errors surfaced by the aggregation service.
#[derive(Debug)]
pub enum ServerError {
    /// Structural/shape problem with a submitted matrix.
    Sparse(SparseError),
    /// A shard's local SpKAdd reduction failed (e.g. an algorithm that
    /// needs sorted inputs received an unsorted matrix).
    Spkadd(SpkaddError),
    /// [`AggregatorService::finalize`] was called for a key that no
    /// [`AggregatorService::submit`] ever mentioned (or that was already
    /// finalized — finalize consumes the key's state).
    UnknownKey(String),
    /// A shard worker is gone (panicked or shut down) — the service can
    /// no longer answer for its row range.
    ShardDown(usize),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Sparse(e) => write!(f, "{e}"),
            ServerError::Spkadd(e) => write!(f, "shard reduction failed: {e}"),
            ServerError::UnknownKey(k) => write!(f, "unknown aggregation key '{k}'"),
            ServerError::ShardDown(s) => write!(f, "shard worker {s} is down"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SparseError> for ServerError {
    fn from(e: SparseError) -> Self {
        ServerError::Sparse(e)
    }
}

impl From<SpkaddError> for ServerError {
    fn from(e: SpkaddError) -> Self {
        ServerError::Spkadd(e)
    }
}
