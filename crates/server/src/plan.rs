//! Row-range shard plans.
//!
//! A [`ShardPlan`] is the 1D analogue of the 2D block distribution used
//! by distributed SpGEMM (Buluç–Gilbert): the row space `0..nrows` is
//! cut into `S` contiguous, disjoint, jointly-exhaustive ranges. Slicing
//! every incoming matrix by these ranges makes the per-shard sums
//! independent — shard `s` only ever sees rows `range(s)`, so the global
//! sum is the vertical concatenation of the shard partials, with no
//! cross-shard numeric reduction at all.

use std::ops::Range;

/// A partition of the row space into contiguous shard ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    nrows: usize,
    /// `nshards + 1` non-decreasing boundaries; shard `s` owns
    /// `bounds[s]..bounds[s+1]`.
    bounds: Vec<usize>,
}

impl ShardPlan {
    /// Cuts `0..nrows` into `shards` near-equal contiguous ranges
    /// (sizes differ by at most one row).
    pub fn uniform(nrows: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let bounds = (0..=shards).map(|s| s * nrows / shards).collect();
        Self { nrows, bounds }
    }

    /// A plan from explicit boundaries. `bounds` must start at 0, end at
    /// `nrows`, and be non-decreasing; panics otherwise (plans are
    /// operator configuration, not data).
    pub fn from_bounds(nrows: usize, bounds: Vec<usize>) -> Self {
        assert!(bounds.len() >= 2, "need at least one shard");
        assert_eq!(bounds[0], 0, "first boundary must be 0");
        assert_eq!(
            bounds[bounds.len() - 1],
            nrows,
            "last boundary must be nrows"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "boundaries must be non-decreasing"
        );
        Self { nrows, bounds }
    }

    /// Number of shards.
    #[inline]
    pub fn nshards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The `nshards + 1` range boundaries — the `bounds` argument
    /// [`CscMatrix::row_split`](spk_sparse::CscMatrix::row_split) takes.
    #[inline]
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Total rows covered by the plan.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Row range owned by shard `s`.
    #[inline]
    pub fn range(&self, s: usize) -> Range<usize> {
        self.bounds[s]..self.bounds[s + 1]
    }

    /// Iterates all shard ranges in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.nshards()).map(|s| self.range(s))
    }

    /// The shard owning row `r` (binary search over the boundaries).
    pub fn shard_of_row(&self, r: usize) -> usize {
        debug_assert!(r < self.nrows);
        // partition_point gives the first boundary > r; its predecessor
        // opens the owning range. Empty ranges can share a boundary with
        // their successor; the non-empty one owns the row.
        self.bounds[1..].partition_point(|&b| b <= r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_exactly() {
        for nrows in [0usize, 1, 7, 64, 100] {
            for shards in [1usize, 2, 3, 8, 150] {
                let plan = ShardPlan::uniform(nrows, shards);
                assert_eq!(plan.nshards(), shards);
                assert_eq!(plan.range(0).start, 0);
                assert_eq!(plan.range(shards - 1).end, nrows);
                let mut covered = 0usize;
                for s in 0..shards {
                    let r = plan.range(s);
                    assert_eq!(r.start, covered, "ranges contiguous");
                    covered = r.end;
                }
                assert_eq!(covered, nrows, "ranges exhaustive");
            }
        }
    }

    #[test]
    fn uniform_is_balanced() {
        let plan = ShardPlan::uniform(10, 4);
        let sizes: Vec<usize> = plan.ranges().map(|r| r.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3));
    }

    #[test]
    fn shard_of_row_matches_ranges() {
        let plan = ShardPlan::uniform(100, 7);
        for r in 0..100 {
            let s = plan.shard_of_row(r);
            assert!(plan.range(s).contains(&r), "row {r} in shard {s}");
        }
    }

    #[test]
    fn shard_of_row_with_empty_shards() {
        // 8 shards over 3 rows: most ranges are empty.
        let plan = ShardPlan::uniform(3, 8);
        for r in 0..3 {
            let s = plan.shard_of_row(r);
            assert!(plan.range(s).contains(&r));
        }
    }

    #[test]
    fn explicit_bounds_validated() {
        let plan = ShardPlan::from_bounds(10, vec![0, 4, 10]);
        assert_eq!(plan.nshards(), 2);
        assert_eq!(plan.range(1), 4..10);
    }

    #[test]
    #[should_panic(expected = "last boundary")]
    fn explicit_bounds_must_end_at_nrows() {
        ShardPlan::from_bounds(10, vec![0, 4, 9]);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let plan = ShardPlan::uniform(5, 0);
        assert_eq!(plan.nshards(), 1);
        assert_eq!(plan.range(0), 0..5);
    }
}
