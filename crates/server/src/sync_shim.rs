//! cfg-gated sync primitives for the shard machinery: the worker loop,
//! the bounded submit/flush/finalize channels, and the metrics counter
//! are written against these aliases instead of `std` directly.
//!
//! * Default build: plain `std` re-exports — identical code to before
//!   the aliasing.
//! * `--cfg spk_model` (via `RUSTFLAGS`, used by
//!   `cargo test -p spk-check`): the names resolve to `spk_check`'s
//!   model-aware primitives, whose every operation is a scheduling
//!   point, so the submit→flush→finalize handoff is model-checkable.
//!   Outside a `model()` execution they delegate straight back to
//!   `std`, so a `spk_model` build still runs the ordinary test suite.

#[cfg(not(spk_model))]
pub(crate) use std::sync::atomic::AtomicU64;
#[cfg(not(spk_model))]
pub(crate) use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
#[cfg(not(spk_model))]
pub(crate) use std::thread::JoinHandle;

#[cfg(spk_model)]
pub(crate) use spk_check::sync::atomic::AtomicU64;
#[cfg(spk_model)]
pub(crate) use spk_check::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
#[cfg(spk_model)]
pub(crate) use spk_check::thread::JoinHandle;

pub(crate) use std::sync::atomic::Ordering;

/// Spawns a named worker thread. The std path aborts on spawn failure
/// (thread exhaustion at service construction is unrecoverable and
/// pre-request, so the no-unwrap rule is waived); the model path
/// registers the thread with the scheduler.
pub(crate) fn spawn_worker<F>(name: String, f: F) -> JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    #[cfg(not(spk_model))]
    {
        std::thread::Builder::new()
            .name(name)
            .spawn(f)
            // spk-lint: allow(no-unwrap)
            .expect("failed to spawn shard worker")
    }
    #[cfg(spk_model)]
    {
        spk_check::thread::spawn_named(name, f)
            // spk-lint: allow(no-unwrap)
            .expect("failed to spawn shard worker")
    }
}
