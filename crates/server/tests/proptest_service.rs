//! Sharding-correctness property tests: for random collections and every
//! algorithm in the suite, the sharded service's finalized sum is exactly
//! equal — structure and bits — to a one-shot `spkadd_with` over the same
//! collection.
//!
//! Values are integer-valued `f64`, so every summation order is exact and
//! "same matrix" can be asserted with `==` rather than a tolerance.

use proptest::prelude::*;
use spk_server::{AggregatorService, ServiceConfig};
use spk_sparse::{CooMatrix, CscMatrix};
use spkadd::{spkadd_with, Algorithm, FlushPolicy, Options};

/// Strategy: a collection of 1–5 same-shape canonical matrices with
/// small-integer values.
fn collection_strategy() -> impl Strategy<Value = Vec<CscMatrix<f64>>> {
    (2usize..40, 1usize..12, 1usize..6).prop_flat_map(|(m, n, k)| {
        let entry = (0..m as u32, 0..n as u32, -8i32..8);
        let one = proptest::collection::vec(entry, 0..50).prop_map(move |trips| {
            let mut coo = CooMatrix::new(m, n);
            for (r, c, v) in trips {
                coo.push(r, c, v as f64);
            }
            coo.to_csc_sum_duplicates()
        });
        proptest::collection::vec(one, k..k + 1)
    })
}

fn run_sharded(
    mats: &[CscMatrix<f64>],
    alg: Algorithm,
    shards: usize,
    flush: Option<FlushPolicy>,
) -> CscMatrix<f64> {
    let (rows, cols) = mats[0].shape();
    let mut config = ServiceConfig::with_shards(shards).with_algorithm(alg);
    if let Some(policy) = flush {
        config = config.with_flush(policy);
    }
    let svc = AggregatorService::new(rows, cols, config);
    for m in mats {
        svc.submit("prop", m).unwrap();
    }
    svc.finalize("prop").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every algorithm, random shard counts, default (cache) flush.
    #[test]
    fn sharded_equals_one_shot_for_every_algorithm(
        mats in collection_strategy(),
        shards in 1usize..6,
    ) {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        for alg in Algorithm::ALL.into_iter().chain(Algorithm::EXTENSIONS) {
            let oneshot = spkadd_with(&refs, alg, &Options::default()).unwrap();
            let sharded = run_sharded(&mats, alg, shards, None);
            prop_assert_eq!(&sharded, &oneshot, "{} diverged", alg);
        }
    }

    /// A pathological flush budget (flush after every slab) exercises the
    /// streaming 2-way fold inside each shard without changing the sum.
    #[test]
    fn tiny_flush_budget_is_exact(
        mats in collection_strategy(),
        shards in 1usize..5,
    ) {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let oneshot = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        let sharded = run_sharded(&mats, Algorithm::Hash, shards, Some(FlushPolicy::Nnz(1)));
        prop_assert_eq!(&sharded, &oneshot);
    }

    /// Matrix-count batching (the paper's literal streaming mode) is
    /// exact too.
    #[test]
    fn matrix_count_batching_is_exact(
        mats in collection_strategy(),
        shards in 1usize..5,
        batch in 1usize..4,
    ) {
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let oneshot = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        let sharded = run_sharded(
            &mats,
            Algorithm::Hash,
            shards,
            Some(FlushPolicy::Matrices(batch)),
        );
        prop_assert_eq!(&sharded, &oneshot);
    }
}
