//! Commutative-monoid reduction semantics for the SpKAdd kernels.
//!
//! The paper presents SpKAdd as numeric addition, but every kernel —
//! hash, SPA, heap, 2-way merge, sliding variants — is really a
//! commutative-monoid fold over duplicate row indices, the same
//! observation the GraphBLAS ewise-add line of work (Buluç–Gilbert,
//! arXiv:1109.3739) builds on. A [`Monoid`] names the fold:
//!
//! * [`Plus`] — numeric addition, the benchmarked default;
//! * [`Or`] — boolean OR: graph union over adjacency snapshots;
//! * [`Min`] — minimum: distance-map merges;
//! * [`MaxPlus`] — maximum: the additive monoid of the max-plus
//!   (tropical) semiring, for path-relaxation batches;
//! * [`SaturatingCount`] — saturating `u32` addition: overflow-proof
//!   occurrence counters;
//! * [`ThresholdedPlus`] — addition that drops entries with
//!   `|v| < ε` at flush time, exercising the [`Monoid::keep`] hook.
//!
//! Everything monomorphizes: monoid instances are zero-sized (or a few
//! bytes of runtime configuration, like `ThresholdedPlus::eps`), their
//! methods are `#[inline]`, and the `Plus` instantiation compiles to the
//! identical `+=` loops the kernels had when addition was hard-coded.
//! The symbolic phase never consults the monoid at all — output
//! *structure* is the set union of input structures, which is
//! value-independent (see DESIGN.md).

use spk_sparse::{Element, Scalar};
use std::marker::PhantomData;

/// A commutative monoid over [`Element`] values: the reduction the
/// SpKAdd kernels apply to entries that share a `(row, col)` coordinate.
///
/// Laws (property-tested in `tests/monoid_laws.rs`):
///
/// * identity: `combine(IDENTITY, v) == v`;
/// * commutativity: `combine(a, b) == combine(b, a)`;
/// * associativity: any fold order over a multiset of values yields the
///   same result (the parallel drivers fold in data-dependent orders).
///
/// Instances are passed *by value* into the kernels; methods take
/// `&self` so a monoid can carry runtime configuration (e.g. the `ε` of
/// [`ThresholdedPlus`]).
pub trait Monoid: Copy + Send + Sync + 'static {
    /// The element type being reduced.
    type Value: Element;

    /// The identity element. Hot kernels never materialize it (the first
    /// occurrence of a row writes its value directly); it exists for the
    /// algebra and its law tests.
    const IDENTITY: Self::Value;

    /// `true` if [`Monoid::keep`] can ever return `false`. Kernels use
    /// this to compile the filtering branch out entirely for ordinary
    /// monoids and to know that symbolic per-column counts are upper
    /// bounds rather than exact sizes.
    const MAY_FILTER: bool = false;

    /// Folds `v` into `acc`.
    fn combine(&self, acc: &mut Self::Value, v: Self::Value);

    /// Whether a fully-reduced value should be emitted to the output.
    /// Called once per output entry at flush/drain time; returning
    /// `false` drops the entry (threshold pruning, annihilator removal).
    #[inline]
    fn keep(&self, _v: &Self::Value) -> bool {
        true
    }
}

/// Numeric addition — the paper's SpKAdd, and the default monoid of
/// every front door (`SpkAddPlan<T>` means `SpkAddPlan<T, Plus<T>>`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Plus<T>(PhantomData<T>);

impl<T> Plus<T> {
    /// The addition monoid for `T`.
    pub const fn new() -> Self {
        Plus(PhantomData)
    }
}

impl<T: Scalar> Monoid for Plus<T> {
    type Value = T;
    const IDENTITY: T = T::ZERO;

    #[inline(always)]
    fn combine(&self, acc: &mut T, v: T) {
        *acc += v;
    }
}

/// Boolean OR — structural union of adjacency snapshots.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Or;

impl Monoid for Or {
    type Value = bool;
    const IDENTITY: bool = false;

    #[inline(always)]
    fn combine(&self, acc: &mut bool, v: bool) {
        *acc |= v;
    }
}

/// Minimum — merges distance maps by keeping the shortest entry.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Min<T>(PhantomData<T>);

impl<T> Min<T> {
    /// The minimum monoid for `T`.
    pub const fn new() -> Self {
        Min(PhantomData)
    }
}

/// Maximum — the additive monoid of the max-plus (tropical) semiring,
/// used by path-relaxation batches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MaxPlus<T>(PhantomData<T>);

impl<T> MaxPlus<T> {
    /// The maximum monoid for `T`.
    pub const fn new() -> Self {
        MaxPlus(PhantomData)
    }
}

macro_rules! impl_min_max {
    ($($t:ty => ($min_id:expr, $max_id:expr)),* $(,)?) => {$(
        impl Monoid for Min<$t> {
            type Value = $t;
            const IDENTITY: $t = $min_id;

            #[inline(always)]
            fn combine(&self, acc: &mut $t, v: $t) {
                if v < *acc {
                    *acc = v;
                }
            }
        }

        impl Monoid for MaxPlus<$t> {
            type Value = $t;
            const IDENTITY: $t = $max_id;

            #[inline(always)]
            fn combine(&self, acc: &mut $t, v: $t) {
                if v > *acc {
                    *acc = v;
                }
            }
        }
    )*};
}
impl_min_max!(
    f32 => (f32::INFINITY, f32::NEG_INFINITY),
    f64 => (f64::INFINITY, f64::NEG_INFINITY),
    i32 => (i32::MAX, i32::MIN),
    i64 => (i64::MAX, i64::MIN),
    u32 => (u32::MAX, u32::MIN),
    u64 => (u64::MAX, u64::MIN),
);

/// Saturating `u32` addition — occurrence counting that clamps at
/// `u32::MAX` instead of wrapping.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SaturatingCount;

impl Monoid for SaturatingCount {
    type Value = u32;
    const IDENTITY: u32 = 0;

    #[inline(always)]
    fn combine(&self, acc: &mut u32, v: u32) {
        *acc = acc.saturating_add(v);
    }
}

/// `f64` addition that drops entries with `|v| < eps` when the
/// accumulator flushes — the filtered-merge monoid (GraphBLAS-style
/// thresholded ewise-add). Because entries can vanish, symbolic counts
/// become upper bounds and the drivers route through their compaction
/// path ([`Monoid::MAY_FILTER`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdedPlus {
    /// Magnitude below which a fully-reduced entry is dropped at flush.
    pub eps: f64,
}

impl ThresholdedPlus {
    /// Addition that prunes `|v| < eps` on flush.
    pub const fn new(eps: f64) -> Self {
        Self { eps }
    }
}

impl Monoid for ThresholdedPlus {
    type Value = f64;
    const IDENTITY: f64 = 0.0;
    const MAY_FILTER: bool = true;

    #[inline(always)]
    fn combine(&self, acc: &mut f64, v: f64) {
        *acc += v;
    }

    #[inline(always)]
    fn keep(&self, v: &f64) -> bool {
        v.abs() >= self.eps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold<O: Monoid>(m: O, vs: &[O::Value]) -> O::Value {
        let mut acc = O::IDENTITY;
        for &v in vs {
            m.combine(&mut acc, v);
        }
        acc
    }

    #[test]
    fn plus_is_addition() {
        assert_eq!(fold(Plus::<f64>::new(), &[1.0, 2.0, 3.5]), 6.5);
        assert_eq!(fold(Plus::<i32>::new(), &[]), 0);
    }

    #[test]
    fn or_is_union() {
        assert!(!fold(Or, &[]));
        assert!(!fold(Or, &[false, false]));
        assert!(fold(Or, &[false, true, false]));
    }

    #[test]
    fn min_and_max_identities() {
        assert_eq!(fold(Min::<f64>::new(), &[3.0, -1.0, 2.0]), -1.0);
        assert_eq!(fold(Min::<f64>::new(), &[]), f64::INFINITY);
        assert_eq!(fold(MaxPlus::<i64>::new(), &[3, -1, 2]), 3);
        assert_eq!(fold(MaxPlus::<i64>::new(), &[]), i64::MIN);
        assert_eq!(fold(Min::<u32>::new(), &[7, 4]), 4);
    }

    #[test]
    fn saturating_count_clamps() {
        assert_eq!(fold(SaturatingCount, &[1, 2, 3]), 6);
        assert_eq!(fold(SaturatingCount, &[u32::MAX, 5]), u32::MAX);
    }

    #[test]
    fn thresholded_plus_keep() {
        let m = ThresholdedPlus::new(0.5);
        assert_eq!(fold(m, &[0.25, 0.5]), 0.75);
        assert!(m.keep(&0.75));
        assert!(m.keep(&-0.5));
        assert!(!m.keep(&0.25));
        assert!(!m.keep(&-0.499));
        const { assert!(ThresholdedPlus::MAY_FILTER) };
        const { assert!(!Plus::<f64>::MAY_FILTER) };
    }
}
