//! Machine model and automatic algorithm selection.
//!
//! The sliding-hash algorithm is parameterized by the machine: last-level
//! cache capacity `M`, bytes per table entry `b`, and thread count `T`
//! (Algorithms 7/8). [`CacheConfig`] carries those parameters; `detect()`
//! reads them from sysfs with conservative fallbacks. The Fig 4
//! experiments reproduce the paper's Skylake-vs-EPYC contrast simply by
//! constructing configs with `M` = 32 MB vs 8 MB.
//!
//! [`choose_algorithm`] encodes the empirical decision surface of Fig 2:
//! hash everywhere, sliding hash once the aggregate tables outgrow the
//! LLC, and 2-way tree for trivially small collections.

use crate::Algorithm;

/// Cache-hierarchy parameters used by the sliding-hash algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Last-level cache capacity in bytes (shared among threads) — `M`.
    pub llc_bytes: usize,
    /// L1 data-cache capacity in bytes (per core); informs very small
    /// table sweet spots (Fig 4(a)).
    pub l1_bytes: usize,
}

impl CacheConfig {
    /// The paper's Intel Skylake 8160 platform (Table II): 32 MB LLC.
    pub fn skylake() -> Self {
        Self {
            llc_bytes: 32 << 20,
            l1_bytes: 32 << 10,
        }
    }

    /// The paper's AMD EPYC 7551 platform (Table II): 8 MB LLC.
    pub fn epyc() -> Self {
        Self {
            llc_bytes: 8 << 20,
            l1_bytes: 32 << 10,
        }
    }

    /// The paper's Cori KNL platform (Table II): 34 MB.
    pub fn knl() -> Self {
        Self {
            llc_bytes: 34 << 20,
            l1_bytes: 32 << 10,
        }
    }

    /// Probes sysfs for the running machine's caches; falls back to a
    /// 32 MB LLC / 32 KB L1 model when unavailable.
    pub fn detect() -> Self {
        let mut llc = 0usize;
        let mut l1 = 0usize;
        for idx in 0..8 {
            let base = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
            let Ok(level) = std::fs::read_to_string(format!("{base}/level")) else {
                break;
            };
            let Ok(size) = std::fs::read_to_string(format!("{base}/size")) else {
                continue;
            };
            let ctype = std::fs::read_to_string(format!("{base}/type")).unwrap_or_default();
            let Some(bytes) = parse_cache_size(size.trim()) else {
                continue;
            };
            let level: u32 = level.trim().parse().unwrap_or(0);
            if level == 1 && ctype.trim() != "Instruction" {
                l1 = l1.max(bytes);
            }
            if bytes > llc && level >= 2 {
                llc = bytes;
            }
        }
        Self {
            llc_bytes: if llc == 0 { 32 << 20 } else { llc },
            l1_bytes: if l1 == 0 { 32 << 10 } else { l1 },
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::detect()
    }
}

/// Parses sysfs cache sizes like `32K`, `1M`, `32768`.
fn parse_cache_size(s: &str) -> Option<usize> {
    if let Some(v) = s.strip_suffix(['K', 'k']) {
        return v.trim().parse::<usize>().ok().map(|x| x << 10);
    }
    if let Some(v) = s.strip_suffix(['M', 'm']) {
        return v.trim().parse::<usize>().ok().map(|x| x << 20);
    }
    if let Some(v) = s.strip_suffix(['G', 'g']) {
        return v.trim().parse::<usize>().ok().map(|x| x << 30);
    }
    s.trim().parse::<usize>().ok()
}

/// Picks an algorithm from the collection shape, following the empirical
/// winners of Fig 2.
///
/// * `k` — number of matrices; `avg_out_col_nnz` — expected output
///   entries per column (estimate with `Σ nnz / (cf · n)`, or just
///   `Σ nnz / n` when the compression factor is unknown);
/// * `entry_bytes` — hash entry size (4 + sizeof value);
/// * `threads` — worker count sharing the LLC.
pub fn choose_algorithm(
    k: usize,
    avg_out_col_nnz: usize,
    entry_bytes: usize,
    threads: usize,
    cache: &CacheConfig,
) -> Algorithm {
    if k <= 2 {
        // A single pairwise merge; the streaming merge is optimal here.
        return Algorithm::TwoWayTree;
    }
    let table_bytes = crate::hashtab::table_size_for(avg_out_col_nnz) * entry_bytes;
    if table_bytes.saturating_mul(threads.max(1)) > cache.llc_bytes {
        Algorithm::SlidingHash
    } else {
        Algorithm::Hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sizes() {
        assert_eq!(parse_cache_size("32K"), Some(32 << 10));
        assert_eq!(parse_cache_size("8M"), Some(8 << 20));
        assert_eq!(parse_cache_size("1G"), Some(1 << 30));
        assert_eq!(parse_cache_size("4096"), Some(4096));
        assert_eq!(parse_cache_size("junk"), None);
    }

    #[test]
    fn detect_never_returns_zero() {
        let c = CacheConfig::detect();
        assert!(c.llc_bytes > 0);
        assert!(c.l1_bytes > 0);
    }

    #[test]
    fn presets_match_table_2() {
        assert_eq!(CacheConfig::skylake().llc_bytes, 32 << 20);
        assert_eq!(CacheConfig::epyc().llc_bytes, 8 << 20);
        assert_eq!(CacheConfig::knl().llc_bytes, 34 << 20);
    }

    #[test]
    fn chooser_follows_figure_2() {
        let sky = CacheConfig::skylake();
        // k = 2: plain pairwise merge.
        assert_eq!(
            choose_algorithm(2, 1000, 12, 48, &sky),
            Algorithm::TwoWayTree
        );
        // Small tables, many threads: hash.
        assert_eq!(choose_algorithm(128, 2048, 12, 48, &sky), Algorithm::Hash);
        // The paper's spill example: k=128, d=512 → 65 536 entries/col,
        // 12-byte entries, 48 threads ≈ 38 MB > 32 MB LLC → sliding.
        assert_eq!(
            choose_algorithm(128, 65_536, 12, 48, &sky),
            Algorithm::SlidingHash
        );
        // Same shape on one thread fits: hash.
        assert_eq!(choose_algorithm(128, 65_536, 12, 1, &sky), Algorithm::Hash);
    }
}
