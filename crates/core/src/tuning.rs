//! Machine model and automatic algorithm selection.
//!
//! The sliding-hash algorithm is parameterized by the machine: last-level
//! cache capacity `M`, bytes per table entry `b`, and thread count `T`
//! (Algorithms 7/8). [`CacheConfig`] carries those parameters; `detect()`
//! reads them from sysfs with conservative fallbacks. The Fig 4
//! experiments reproduce the paper's Skylake-vs-EPYC contrast simply by
//! constructing configs with `M` = 32 MB vs 8 MB.
//!
//! [`choose_algorithm`] encodes the empirical decision surface of Fig 2:
//! hash everywhere, sliding hash once the aggregate tables outgrow the
//! LLC, and 2-way tree for trivially small collections.
//!
//! [`ChunkScorer`] re-derives that surface at *partition* granularity:
//! once the symbolic phase has fixed the output `colptr`, every
//! weight-balanced column chunk carries its local density, effective k,
//! and compression ratio for free, and the adaptive driver
//! ([`Algorithm::Auto`] on a plan with `adaptive` enabled) scores each
//! chunk independently instead of committing the whole collection to one
//! kernel.

use crate::hashtab::table_size_for;
use crate::kway::NumericKernel;
use crate::Algorithm;

/// Cache-hierarchy parameters used by the sliding-hash algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Last-level cache capacity in bytes (shared among threads) — `M`.
    pub llc_bytes: usize,
    /// L1 data-cache capacity in bytes (per core); informs very small
    /// table sweet spots (Fig 4(a)).
    pub l1_bytes: usize,
}

impl CacheConfig {
    /// The paper's Intel Skylake 8160 platform (Table II): 32 MB LLC.
    pub fn skylake() -> Self {
        Self {
            llc_bytes: 32 << 20,
            l1_bytes: 32 << 10,
        }
    }

    /// The paper's AMD EPYC 7551 platform (Table II): 8 MB LLC.
    pub fn epyc() -> Self {
        Self {
            llc_bytes: 8 << 20,
            l1_bytes: 32 << 10,
        }
    }

    /// The paper's Cori KNL platform (Table II): 34 MB.
    pub fn knl() -> Self {
        Self {
            llc_bytes: 34 << 20,
            l1_bytes: 32 << 10,
        }
    }

    /// Probes sysfs for the running machine's caches; falls back to a
    /// 32 MB LLC / 32 KB L1 model when unavailable.
    pub fn detect() -> Self {
        let mut llc = 0usize;
        let mut l1 = 0usize;
        for idx in 0..8 {
            let base = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
            let Ok(level) = std::fs::read_to_string(format!("{base}/level")) else {
                break;
            };
            let Ok(size) = std::fs::read_to_string(format!("{base}/size")) else {
                continue;
            };
            let ctype = std::fs::read_to_string(format!("{base}/type")).unwrap_or_default();
            let Some(bytes) = parse_cache_size(size.trim()) else {
                continue;
            };
            let level: u32 = level.trim().parse().unwrap_or(0);
            if level == 1 && ctype.trim() != "Instruction" {
                l1 = l1.max(bytes);
            }
            if bytes > llc && level >= 2 {
                llc = bytes;
            }
        }
        Self {
            llc_bytes: if llc == 0 { 32 << 20 } else { llc },
            l1_bytes: if l1 == 0 { 32 << 10 } else { l1 },
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::detect()
    }
}

/// Parses sysfs cache sizes like `32K`, `1M`, `32768`.
fn parse_cache_size(s: &str) -> Option<usize> {
    if let Some(v) = s.strip_suffix(['K', 'k']) {
        return v.trim().parse::<usize>().ok().map(|x| x << 10);
    }
    if let Some(v) = s.strip_suffix(['M', 'm']) {
        return v.trim().parse::<usize>().ok().map(|x| x << 20);
    }
    if let Some(v) = s.strip_suffix(['G', 'g']) {
        return v.trim().parse::<usize>().ok().map(|x| x << 30);
    }
    s.trim().parse::<usize>().ok()
}

/// Picks an algorithm from the collection shape, following the empirical
/// winners of Fig 2.
///
/// * `k` — number of matrices; `avg_out_col_nnz` — expected output
///   entries per column (estimate with `Σ nnz / (cf · n)`, or just
///   `Σ nnz / n` when the compression factor is unknown);
/// * `entry_bytes` — hash entry size (4 + sizeof value);
/// * `threads` — worker count sharing the LLC.
pub fn choose_algorithm(
    k: usize,
    avg_out_col_nnz: usize,
    entry_bytes: usize,
    threads: usize,
    cache: &CacheConfig,
) -> Algorithm {
    if k <= 2 {
        // A single pairwise merge; the streaming merge is optimal here.
        return Algorithm::TwoWayTree;
    }
    let table_bytes = crate::hashtab::table_size_for(avg_out_col_nnz) * entry_bytes;
    if table_bytes.saturating_mul(threads.max(1)) > cache.llc_bytes {
        Algorithm::SlidingHash
    } else {
        Algorithm::Hash
    }
}

/// A column chunk counts as "dense" when its average output column holds
/// at least `rows / SPA_DENSE_FRACTION` entries — at that fill the SPA's
/// O(rows) panel sweep costs at most a small constant per output entry
/// and beats hashing (Fig 2's dense corner, where SPA and hash converge).
pub const SPA_DENSE_FRACTION: usize = 8;

/// Shape summary of one weight-balanced column chunk, computed from data
/// the symbolic phase already produced: the output `colptr` gives
/// `nnz_out` and the input `colptr`s give `nnz_in` / `k_eff` in O(k) per
/// chunk — no per-entry work, which is what makes per-partition scoring
/// effectively free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkProfile {
    /// Columns in the chunk.
    pub cols: usize,
    /// Collection size (matrices in the addition).
    pub k: usize,
    /// Matrices with at least one nonzero inside the chunk's column
    /// range — the k that the merge actually sees.
    pub k_eff: usize,
    /// Input nonzeros falling in the chunk.
    pub nnz_in: usize,
    /// Output nonzeros the chunk will produce (exact or upper bound,
    /// straight from the output `colptr`).
    pub nnz_out: usize,
}

impl ChunkProfile {
    /// Average output entries per column, rounded up (≥ 1 for any
    /// nonempty chunk).
    pub fn avg_out_col_nnz(&self) -> usize {
        if self.cols == 0 {
            0
        } else {
            self.nnz_out.div_ceil(self.cols)
        }
    }
}

/// The Fig 2 decision surface evaluated per column chunk instead of once
/// per collection ([`choose_algorithm`]'s partition-granularity twin).
///
/// Built once per execution from the machine model and resolved worker
/// count; [`ChunkScorer::choose`] is a pure function of the chunk profile
/// so the surface is unit-testable and the cache-simulator experiment can
/// replay it offline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkScorer {
    /// Output row count (the SPA panel height).
    pub rows: usize,
    /// Numeric hash-entry bytes (`4 + sizeof(T)`, the paper's `b`).
    pub entry_bytes: usize,
    /// Workers sharing the LLC.
    pub threads: usize,
    /// Last-level cache capacity — `M` in Algorithms 7/8.
    pub llc_bytes: usize,
    /// Whether the heap kernel may be chosen: it requires sorted inputs,
    /// so the plan only sets this when sortedness was actually verified
    /// (never on an unchecked caller promise — same conservatism as the
    /// `Auto` resolver).
    pub heap_allowed: bool,
}

impl ChunkScorer {
    /// Picks the numeric kernel for one chunk.
    ///
    /// The surface, in priority order:
    /// 1. **Heap** for effectively-pairwise chunks (`k_eff ≤ 2`) and for
    ///    near-disjoint narrow merges (`k_eff ≤ 4` with < 25% duplicate
    ///    compression): the O(k)-state streaming merge needs no table at
    ///    all, and with few inputs its `lg k` factor is ~1.
    /// 2. **SPA / SlidingSpa** for dense chunks (average output column ≥
    ///    `rows` / [`SPA_DENSE_FRACTION`]): the dense-panel sweep is
    ///    branch-free at that fill; it slides when the aggregate panels
    ///    outgrow the LLC.
    /// 3. **Hash / SlidingHash** otherwise — exactly Fig 2, with the
    ///    chunk's local average column size in place of the global one.
    pub fn choose(&self, p: &ChunkProfile) -> NumericKernel {
        if p.nnz_out == 0 || p.cols == 0 {
            // Nothing to materialize; hash is the cheapest no-op.
            return NumericKernel::Hash;
        }
        if self.heap_allowed
            && (p.k_eff <= 2 || (p.k_eff <= 4 && p.nnz_in <= p.nnz_out + p.nnz_out / 4))
        {
            return NumericKernel::Heap;
        }
        let avg_out = p.avg_out_col_nnz();
        let threads = self.threads.max(1);
        if avg_out.saturating_mul(SPA_DENSE_FRACTION) >= self.rows && self.rows > 0 {
            let panel_bytes = self
                .rows
                .saturating_mul(self.entry_bytes)
                .saturating_mul(threads);
            return if panel_bytes > self.llc_bytes {
                NumericKernel::SlidingSpa
            } else {
                NumericKernel::Spa
            };
        }
        let table_bytes = table_size_for(avg_out).saturating_mul(self.entry_bytes);
        if table_bytes.saturating_mul(threads) > self.llc_bytes {
            NumericKernel::SlidingHash
        } else {
            NumericKernel::Hash
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_sizes() {
        assert_eq!(parse_cache_size("32K"), Some(32 << 10));
        assert_eq!(parse_cache_size("8M"), Some(8 << 20));
        assert_eq!(parse_cache_size("1G"), Some(1 << 30));
        assert_eq!(parse_cache_size("4096"), Some(4096));
        assert_eq!(parse_cache_size("junk"), None);
    }

    #[test]
    fn detect_never_returns_zero() {
        let c = CacheConfig::detect();
        assert!(c.llc_bytes > 0);
        assert!(c.l1_bytes > 0);
    }

    #[test]
    fn presets_match_table_2() {
        assert_eq!(CacheConfig::skylake().llc_bytes, 32 << 20);
        assert_eq!(CacheConfig::epyc().llc_bytes, 8 << 20);
        assert_eq!(CacheConfig::knl().llc_bytes, 34 << 20);
    }

    fn scorer(rows: usize, llc: usize, heap_allowed: bool) -> ChunkScorer {
        ChunkScorer {
            rows,
            entry_bytes: 12,
            threads: 4,
            llc_bytes: llc,
            heap_allowed,
        }
    }

    fn profile(cols: usize, k_eff: usize, nnz_in: usize, nnz_out: usize) -> ChunkProfile {
        ChunkProfile {
            cols,
            k: 8,
            k_eff,
            nnz_in,
            nnz_out,
        }
    }

    #[test]
    fn chunk_scorer_mirrors_figure_2() {
        // Tall output (2²⁷ rows) so even 1 M-entry columns stay "sparse"
        // relative to the row count — the hash/sliding axis, not SPA's.
        let s = scorer(1 << 27, 32 << 20, false);
        // Sparse chunk, small per-column tables → hash.
        assert_eq!(s.choose(&profile(64, 8, 4096, 1024)), NumericKernel::Hash);
        // Huge output columns → aggregate tables spill the LLC → sliding.
        // 1 M entries/col → ≥ 2²⁰ table slots · 12 B · 4 threads ≈ 100 MB.
        assert_eq!(
            s.choose(&profile(4, 8, 1 << 23, 1 << 22)),
            NumericKernel::SlidingHash
        );
        // Same shape, one thread and a large LLC → hash again.
        let roomy = ChunkScorer {
            threads: 1,
            llc_bytes: 1 << 30,
            ..s
        };
        assert_eq!(
            roomy.choose(&profile(4, 8, 1 << 23, 1 << 22)),
            NumericKernel::Hash
        );
    }

    #[test]
    fn chunk_scorer_dense_chunks_pick_the_spa_family() {
        // 1024 rows, avg output column 512 ≥ 1024/8 → dense → SPA.
        let s = scorer(1024, 32 << 20, false);
        assert_eq!(s.choose(&profile(8, 8, 8192, 4096)), NumericKernel::Spa);
        // Same density with panels that outgrow a tiny LLC → sliding SPA:
        // 1024 rows · 12 B · 4 threads = 48 KB > 16 KB.
        let tiny = scorer(1024, 16 << 10, false);
        assert_eq!(
            tiny.choose(&profile(8, 8, 8192, 4096)),
            NumericKernel::SlidingSpa
        );
    }

    #[test]
    fn chunk_scorer_heap_needs_sorted_inputs_and_low_k_eff() {
        let s = scorer(1 << 20, 32 << 20, true);
        // Effectively pairwise → heap.
        assert_eq!(s.choose(&profile(64, 2, 2048, 2000)), NumericKernel::Heap);
        // Narrow and nearly disjoint (no compression) → heap.
        assert_eq!(s.choose(&profile(64, 4, 2100, 2048)), NumericKernel::Heap);
        // Narrow but heavily overlapping → the merge does k× the output
        // work; hash wins.
        assert_eq!(s.choose(&profile(64, 4, 8192, 2048)), NumericKernel::Hash);
        // Unverified sortedness never selects the heap.
        let unsorted = scorer(1 << 20, 32 << 20, false);
        assert_eq!(
            unsorted.choose(&profile(64, 2, 2048, 2000)),
            NumericKernel::Hash
        );
    }

    #[test]
    fn chunk_scorer_empty_chunk_is_a_hash_no_op() {
        let s = scorer(1 << 20, 32 << 20, true);
        assert_eq!(s.choose(&profile(16, 0, 0, 0)), NumericKernel::Hash);
        assert_eq!(s.choose(&profile(0, 0, 0, 0)), NumericKernel::Hash);
    }

    #[test]
    fn chooser_follows_figure_2() {
        let sky = CacheConfig::skylake();
        // k = 2: plain pairwise merge.
        assert_eq!(
            choose_algorithm(2, 1000, 12, 48, &sky),
            Algorithm::TwoWayTree
        );
        // Small tables, many threads: hash.
        assert_eq!(choose_algorithm(128, 2048, 12, 48, &sky), Algorithm::Hash);
        // The paper's spill example: k=128, d=512 → 65 536 entries/col,
        // 12-byte entries, 48 threads ≈ 38 MB > 32 MB LLC → sliding.
        assert_eq!(
            choose_algorithm(128, 65_536, 12, 48, &sky),
            Algorithm::SlidingHash
        );
        // Same shape on one thread fits: hash.
        assert_eq!(choose_algorithm(128, 65_536, 12, 1, &sky), Algorithm::Hash);
    }
}
