//! The plan/execute front door: build a reusable [`SpkAddPlan`] once,
//! execute it over many collections.
//!
//! The paper's k-way algorithms split into a symbolic phase (output
//! structure + table budgets, §II-D) and a numeric phase. A one-shot call
//! re-derives the machine budgets and reallocates every hash table, SPA
//! panel, and heap buffer; repeat callers — a streaming accumulator
//! flushing thousands of batches, an aggregation-service shard, a
//! benchmark rep loop — pay that setup on every call. [`SpkAdd`] is the
//! builder that resolves those decisions once into a [`SpkAddPlan`]
//! holding the algorithm choice, scheduling policy, sliding budgets, and
//! a per-thread [`WorkspacePool`] that
//! [`SpkAddPlan::execute`] reuses across calls: after the first
//! execution at a steady shape, the steady-state path performs zero
//! workspace allocations (asserted by `tests/plan_reuse.rs`).
//!
//! ```
//! use spk_sparse::CscMatrix;
//! use spkadd::{Algorithm, SpkAdd};
//!
//! let a = CscMatrix::<f64>::identity(4);
//! let b = CscMatrix::<f64>::identity(4);
//! let mut plan = SpkAdd::new(4, 4).algorithm(Algorithm::Hash).build().unwrap();
//! for _ in 0..3 {
//!     let sum = plan.execute(&[&a, &b]).unwrap(); // workspaces reused
//!     assert_eq!(sum.get(1, 1).unwrap(), 2.0);
//! }
//! assert_eq!(plan.executions(), 3);
//! ```

use crate::kway::{
    kway_numeric, kway_numeric_cached, KernelCounts, KernelDispatch, NumericKernel, RecycledBufs,
};
use crate::monoid::{Monoid, Plus};
use crate::parallel::Scheduling;
use crate::pattern::{
    Pattern, PatternCache, PatternCacheStats, PatternFingerprint, PatternOutcome,
};
use crate::sliding::budget_entries;
use crate::symbolic::{symbolic_counts, DriverCtx, SymbolicStrategy};
use crate::tuning::{choose_algorithm, CacheConfig, ChunkScorer};
use crate::workspace::WorkspacePool;
use crate::{
    libstyle, numeric_entry_bytes, twoway, Algorithm, ExecuteStats, Options, SpkaddError,
    SYMBOLIC_ENTRY_BYTES,
};
use spk_sparse::{common_shape, CscMatrix, Element, Scalar, SparseError};
use std::sync::Arc;

/// Builder for a [`SpkAddPlan`]: fixes the output shape, algorithm, and
/// execution options up front so the plan can resolve budgets and size
/// its workspaces once.
///
/// Defaults match [`Options::default`] with [`Algorithm::Auto`].
#[derive(Debug, Clone)]
pub struct SpkAdd {
    nrows: usize,
    ncols: usize,
    algorithm: Algorithm,
    opts: Options,
}

impl SpkAdd {
    /// Starts a plan for collections of `nrows × ncols` matrices.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            algorithm: Algorithm::Auto,
            opts: Options::default(),
        }
    }

    /// Selects the algorithm ([`Algorithm::Auto`] resolves per execution
    /// from the collection shape, Fig 2).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Worker threads; 0 uses the ambient rayon pool.
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Machine model for the sliding budgets (Alg 7/8).
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.opts.cache = cache;
        self
    }

    /// Column-scheduling policy (§III-A).
    pub fn scheduling(mut self, scheduling: Scheduling) -> Self {
        self.opts.scheduling = scheduling;
        self
    }

    /// Symbolic-phase strategy (§II-D).
    pub fn symbolic(mut self, symbolic: SymbolicStrategy) -> Self {
        self.opts.symbolic = symbolic;
        self
    }

    /// Whether output columns are emitted sorted by row index.
    pub fn sorted_output(mut self, sorted: bool) -> Self {
        self.opts.sorted_output = sorted;
        self
    }

    /// Overrides the sliding-table budget in entries (Fig 4's x-axis).
    pub fn table_entries(mut self, entries: usize) -> Self {
        self.opts.forced_table_entries = Some(entries);
        self
    }

    /// Whether executions check input sortedness up front.
    pub fn validate_sorted(mut self, validate: bool) -> Self {
        self.opts.validate_sorted = validate;
        self
    }

    /// Whether [`Algorithm::Auto`] dispatches per column chunk (the
    /// default). `adaptive(false)` forces the old one-global-algorithm
    /// resolution — the escape hatch for A/B comparisons and for callers
    /// that want exactly the Fig 2 behavior. Explicit algorithm choices
    /// are unaffected either way.
    pub fn adaptive(mut self, adaptive: bool) -> Self {
        self.opts.adaptive = adaptive;
        self
    }

    /// Retains up to `capacity` output structures keyed by input-pattern
    /// fingerprint (bounded LRU; `0` disables, the default). When an
    /// executed collection's sparsity matches a cached pattern, the
    /// symbolic phase is skipped entirely and a numeric-only kernel
    /// scatters values into the known structure — the steady-state win
    /// for fixed-sparsity workloads (FEM assembly on a fixed mesh,
    /// gradient aggregation over a fixed model). Filtering monoids
    /// bypass the cache automatically; see [`crate::pattern`].
    pub fn pattern_cache(mut self, capacity: usize) -> Self {
        self.opts.pattern_cache = capacity;
        self
    }

    /// Replaces the whole option set (for callers that already hold an
    /// [`Options`]).
    pub fn options(mut self, opts: Options) -> Self {
        self.opts = opts;
        self
    }

    /// Resolves the builder into a reusable plan, validating the options
    /// ([`Options::validate`]) and deriving the sliding budgets from the
    /// machine model. The plan reduces duplicates with numeric addition —
    /// use [`SpkAdd::build_with_monoid`] for any other reduction.
    pub fn build<T: Scalar>(self) -> Result<SpkAddPlan<T>, SpkaddError> {
        self.build_with_monoid(Plus::new())
    }

    /// Like [`SpkAdd::build`], but the plan folds duplicate coordinates
    /// with an arbitrary [`Monoid`] — OR-union, min, max-plus, filtered
    /// addition — instead of `+`. All nine algorithms (and `Auto`) work
    /// unchanged; the whole pipeline monomorphizes over the monoid, so
    /// `build_with_monoid(Plus::new())` compiles to exactly the
    /// [`SpkAdd::build`] code path.
    pub fn build_with_monoid<T: Element, O: Monoid<Value = T>>(
        self,
        monoid: O,
    ) -> Result<SpkAddPlan<T, O>, SpkaddError> {
        self.opts.validate()?;
        let workers = if self.opts.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.opts.threads
        };
        let budget_sym = self.opts.forced_table_entries.unwrap_or_else(|| {
            budget_entries(self.opts.cache.llc_bytes, SYMBOLIC_ENTRY_BYTES, workers)
        });
        let budget_add = self.opts.forced_table_entries.unwrap_or_else(|| {
            budget_entries(
                self.opts.cache.llc_bytes,
                numeric_entry_bytes::<T>(),
                workers,
            )
        });
        // With an explicit thread count the rayon pool is part of the
        // plan too: built once here, installed per execution — not
        // rebuilt per call like the one-shot path's `run_with_threads`.
        let thread_pool = if self.opts.threads == 0 {
            None
        } else {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(self.opts.threads)
                    .build()
                    .map_err(|e| {
                        SpkaddError::InvalidOptions(format!("failed to build thread pool: {e}"))
                    })?,
            )
        };
        let cache = match self.opts.pattern_cache {
            0 => None,
            cap => Some(PatternCache::new(cap)),
        };
        Ok(SpkAddPlan {
            shape: (self.nrows, self.ncols),
            algorithm: self.algorithm,
            opts: self.opts,
            monoid,
            workers,
            budget_sym,
            budget_add,
            cache,
            pool: WorkspacePool::new(workers),
            thread_pool,
            executions: 0,
        })
    }
}

/// A resolved, reusable SpKAdd execution plan.
///
/// Built by [`SpkAdd::build`]; holds the algorithm decision, scheduling
/// policy, sliding budgets, and per-thread workspaces. Execute it as
/// many times as you like — the symbolic/numeric drivers borrow the
/// retained workspaces instead of reallocating them, and
/// [`SpkAddPlan::execute_into`] additionally recycles the output
/// buffers of a previous result.
#[derive(Debug)]
pub struct SpkAddPlan<T: Element, O: Monoid<Value = T> = Plus<T>> {
    shape: (usize, usize),
    algorithm: Algorithm,
    opts: Options,
    monoid: O,
    workers: usize,
    budget_sym: usize,
    budget_add: usize,
    pool: WorkspacePool<T>,
    /// Dedicated rayon pool when `threads > 0`; `None` uses the ambient
    /// pool. Retained so repeat executions don't respawn workers.
    thread_pool: Option<rayon::ThreadPool>,
    /// Pattern-keyed symbolic cache (`None` when `pattern_cache == 0`).
    cache: Option<PatternCache>,
    executions: u64,
}

impl<T: Element, O: Monoid<Value = T>> SpkAddPlan<T, O> {
    /// Shape every executed collection must have.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// The monoid folding duplicate coordinates ([`Plus`] unless the plan
    /// was built with [`SpkAdd::build_with_monoid`]).
    pub fn monoid(&self) -> O {
        self.monoid
    }

    /// The configured algorithm (possibly [`Algorithm::Auto`]).
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The options the plan was built with.
    pub fn options(&self) -> &Options {
        &self.opts
    }

    /// Resolved worker count (threads sharing the LLC budgets).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of completed executions.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Workspace component builds so far — constant across executions at
    /// a steady shape (the amortization the plan exists for).
    pub fn workspace_allocations(&self) -> u64 {
        self.pool.allocations()
    }

    /// Pattern-cache counters (`None` when the plan was built without
    /// [`SpkAdd::pattern_cache`]).
    pub fn pattern_stats(&self) -> Option<PatternCacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Drops the pattern cache's pointer-identity memo (the fast path
    /// that skips re-hashing when the same `&[&CscMatrix]` buffers are
    /// executed again). Call after mutating a previously-executed
    /// matrix's *structure* in place — same allocations, different
    /// sparsity — which the identity check cannot distinguish from an
    /// unchanged collection. Cached structures themselves are untouched;
    /// the next execution simply re-hashes. No-op without a cache.
    pub fn invalidate_pattern_identity(&mut self) {
        if let Some(cache) = self.cache.as_mut() {
            cache.invalidate_identity();
        }
    }

    /// Adds the collection, returning a fresh output matrix.
    pub fn execute(&mut self, mats: &[&CscMatrix<T>]) -> Result<CscMatrix<T>, SpkaddError> {
        self.run(mats, RecycledBufs::default()).map(|(out, _)| out)
    }

    /// Like [`SpkAddPlan::execute`], also reporting the symbolic/numeric
    /// phase split (the series of Fig 4) and the pattern-cache outcome.
    pub fn execute_timed(
        &mut self,
        mats: &[&CscMatrix<T>],
    ) -> Result<(CscMatrix<T>, ExecuteStats), SpkaddError> {
        self.run(mats, RecycledBufs::default())
    }

    /// Adds the collection into `sink`, recycling the sink's buffers for
    /// the new result. The exact k-way path (heap/SPA/hash/sliding with a
    /// counting symbolic phase — every default configuration) reuses
    /// their capacity, so steady-shape repeat executions allocate no
    /// output memory either; the 2-way/library algorithms and the
    /// `UpperBound` compaction path build their output internally and
    /// gain only the workspace reuse. On error the sink is left empty.
    pub fn execute_into(
        &mut self,
        mats: &[&CscMatrix<T>],
        sink: &mut CscMatrix<T>,
    ) -> Result<(), SpkaddError> {
        self.execute_into_timed(mats, sink).map(|_| ())
    }

    /// [`SpkAddPlan::execute_into`] with the [`ExecuteStats`] report —
    /// the full steady-state combination: recycled output buffers *and*
    /// (with a pattern cache) a skipped symbolic phase.
    pub fn execute_into_timed(
        &mut self,
        mats: &[&CscMatrix<T>],
        sink: &mut CscMatrix<T>,
    ) -> Result<ExecuteStats, SpkaddError> {
        let recycled = std::mem::replace(sink, CscMatrix::zeros(0, 0));
        let (out, stats) = self.run(mats, RecycledBufs::from_matrix(recycled))?;
        *sink = out;
        Ok(stats)
    }

    /// Resolves [`Algorithm::Auto`] against this collection (Fig 2).
    fn resolve(&self, mats: &[&CscMatrix<T>], inputs_sorted: bool) -> Algorithm {
        if self.algorithm != Algorithm::Auto {
            return self.algorithm;
        }
        let n = self.shape.1;
        let total: usize = mats.iter().map(|m| m.nnz()).sum();
        let avg_out = if n == 0 { 0 } else { total / n.max(1) };
        let mut alg = choose_algorithm(
            mats.len(),
            avg_out,
            numeric_entry_bytes::<T>(),
            self.workers,
            &self.opts.cache,
        );
        if alg.needs_sorted_inputs() {
            // `validate_sorted = false` skips the up-front scan, but Auto
            // must never commit to a sorted-only algorithm on unsorted
            // inputs — a pairwise merge would silently mis-sum. Only
            // reached when the resolver picks one (k <= 2), so the scan
            // stays off the common path.
            let sorted = if self.opts.validate_sorted {
                inputs_sorted
            } else {
                mats.iter().all(|m| m.is_sorted())
            };
            if !sorted {
                alg = Algorithm::Hash;
            }
        }
        alg
    }

    /// Sortedness: detect (or trust) once per execution, failing fast for
    /// algorithms that require sorted inputs.
    fn detect_sorted(&self, mats: &[&CscMatrix<T>]) -> Result<bool, SpkaddError> {
        if !self.opts.validate_sorted {
            return Ok(true);
        }
        let mut all_sorted = true;
        for (i, m) in mats.iter().enumerate() {
            if !m.is_sorted() {
                if self.algorithm.needs_sorted_inputs() {
                    return Err(SpkaddError::UnsortedInput {
                        algorithm: self.algorithm.name(),
                        operand: i,
                    });
                }
                if self.opts.symbolic == SymbolicStrategy::Heap {
                    return Err(SpkaddError::UnsortedInput {
                        algorithm: "heap symbolic",
                        operand: i,
                    });
                }
                all_sorted = false;
            }
        }
        Ok(all_sorted)
    }

    fn run(
        &mut self,
        mats: &[&CscMatrix<T>],
        recycle: RecycledBufs<T>,
    ) -> Result<(CscMatrix<T>, ExecuteStats), SpkaddError> {
        let _span = spk_obs::span!("spkadd.execute");
        let shape = common_shape(mats)?;
        if shape != self.shape {
            return Err(SpkaddError::Sparse(SparseError::DimensionMismatch {
                expected: self.shape,
                found: shape,
                operand: 0,
            }));
        }
        let inputs_sorted = self.detect_sorted(mats)?;
        let alg = self.resolve(mats, inputs_sorted);
        debug_assert_ne!(
            alg,
            Algorithm::Auto,
            "resolution yields concrete algorithms"
        );
        let kernel = match alg {
            Algorithm::Heap => Some(NumericKernel::Heap),
            Algorithm::Spa => Some(NumericKernel::Spa),
            Algorithm::Hash => Some(NumericKernel::Hash),
            Algorithm::SlidingHash => Some(NumericKernel::SlidingHash),
            Algorithm::SlidingSpa => Some(NumericKernel::SlidingSpa),
            // The 2-way/library folds have no symbolic phase to skip.
            _ => None,
        };

        // Pattern-cache routing. Only the k-way family benefits, and only
        // non-filtering monoids are sound: a filtering monoid's output
        // structure depends on the values being folded, so a cached
        // structure from one execution may be wrong for the next even at
        // identical input sparsity.
        let mut fingerprint_secs = 0.0;
        let mut outcome = PatternOutcome::Disabled;
        let mut hit: Option<Arc<Pattern>> = None;
        let mut insert_on_miss: Option<PatternFingerprint> = None;
        if let Some(cache) = self.cache.as_mut() {
            outcome = PatternOutcome::Bypassed;
            if kernel.is_some() && !O::MAY_FILTER {
                // `timed` records the span from the same measurement
                // that lands in `ExecuteStats::fingerprint`.
                let ((), dur) = spk_obs::timed("spkadd.fingerprint", || {
                    let fp = cache.fingerprint(mats);
                    match cache.lookup(&fp) {
                        Some(pattern) => {
                            outcome = PatternOutcome::Hit;
                            hit = Some(pattern);
                        }
                        None => {
                            outcome = PatternOutcome::Miss;
                            insert_on_miss = Some(fp);
                        }
                    }
                });
                fingerprint_secs = dur.as_secs_f64();
            }
        }

        // Per-partition adaptive dispatch (the SPADA-style move): only
        // `Auto` is adaptive — an explicit algorithm is a contract — and
        // only when resolution landed on the k-way family (a k ≤ 2
        // collection stays a single pairwise merge). The scorer never
        // offers the heap unless sortedness was actually verified this
        // execution.
        let scorer = ChunkScorer {
            rows: self.shape.0,
            entry_bytes: numeric_entry_bytes::<T>(),
            threads: self.workers,
            llc_bytes: self.opts.cache.llc_bytes,
            heap_allowed: self.opts.validate_sorted && inputs_sorted,
        };
        let adaptive = self.algorithm == Algorithm::Auto && self.opts.adaptive;
        let dispatch = kernel.map(|kern| {
            if !adaptive {
                return KernelDispatch::Fixed(kern);
            }
            match hit.as_ref() {
                // Warm hits replay the memoized decisions — no rescoring.
                Some(pattern) => KernelDispatch::Memoized {
                    decisions: Arc::clone(&pattern.kernels),
                    scorer,
                },
                None => KernelDispatch::Adaptive(scorer),
            }
        });

        let ctx = DriverCtx {
            sched: self.opts.scheduling,
            budget_sym: self.budget_sym,
            budget_add: self.budget_add,
            inputs_sorted,
            sorted_output: self.opts.sorted_output,
        };
        let sched = self.opts.scheduling;
        let symbolic = self.opts.symbolic;
        let monoid = self.monoid;
        let pool = &self.pool;
        let hit_pattern = hit;
        // Every phase is measured through `spk_obs::timed`, so the spans
        // a trace captures and the `ExecuteStats` a caller reads are the
        // same numbers — not two clocks around roughly the same code.
        let body = move || {
            if let Some(pattern) = hit_pattern.as_deref() {
                let ((out, decisions), dur) = spk_obs::timed("spkadd.numeric", || {
                    kway_numeric_cached(
                        mats,
                        pattern,
                        dispatch
                            .as_ref()
                            .expect("hits only occur on the k-way path"),
                        monoid,
                        &ctx,
                        pool,
                        recycle,
                    )
                });
                return (
                    out,
                    ExecuteStats {
                        numeric: dur.as_secs_f64(),
                        symbolic_skipped: true,
                        ..ExecuteStats::default()
                    },
                    decisions,
                );
            }
            // The 2-way/library folds have no separate phases: the whole
            // fold is one numeric span.
            let fold = |out: CscMatrix<T>, dur: std::time::Duration| {
                (
                    out,
                    ExecuteStats {
                        numeric: dur.as_secs_f64(),
                        ..ExecuteStats::default()
                    },
                    Vec::new(),
                )
            };
            match alg {
                Algorithm::Auto => unreachable!("resolved above"),
                Algorithm::TwoWayIncremental => {
                    let (out, dur) = spk_obs::timed("spkadd.numeric", || {
                        twoway::spkadd_incremental_with(mats, 0, sched, monoid)
                    });
                    fold(out, dur)
                }
                Algorithm::TwoWayTree => {
                    let (out, dur) = spk_obs::timed("spkadd.numeric", || {
                        twoway::spkadd_tree_with(mats, 0, sched, monoid)
                    });
                    fold(out, dur)
                }
                Algorithm::LibIncremental => {
                    let (out, dur) = spk_obs::timed("spkadd.numeric", || {
                        libstyle::lib_incremental_with(mats, monoid)
                    });
                    fold(out, dur)
                }
                Algorithm::LibTree => {
                    let (out, dur) =
                        spk_obs::timed("spkadd.numeric", || libstyle::lib_tree_with(mats, monoid));
                    fold(out, dur)
                }
                Algorithm::Heap
                | Algorithm::Spa
                | Algorithm::Hash
                | Algorithm::SlidingHash
                | Algorithm::SlidingSpa => {
                    // Alg 8 line 2: the sliding algorithm's symbolic phase
                    // slides too, unless the caller explicitly picked
                    // another strategy.
                    let strategy =
                        if alg == Algorithm::SlidingHash && symbolic == SymbolicStrategy::Hash {
                            SymbolicStrategy::SlidingHash
                        } else {
                            symbolic
                        };
                    let (counts, sym_dur) = spk_obs::timed("spkadd.symbolic", || {
                        symbolic_counts(mats, strategy, &ctx, pool)
                    });
                    let exact = strategy != SymbolicStrategy::UpperBound;
                    let dispatch = dispatch
                        .as_ref()
                        .expect("k-way algorithms map to a dispatch");
                    let ((out, decisions), num_dur) = spk_obs::timed("spkadd.numeric", || {
                        kway_numeric(mats, &counts, exact, dispatch, monoid, &ctx, pool, recycle)
                    });
                    (
                        out,
                        ExecuteStats {
                            symbolic: sym_dur.as_secs_f64(),
                            numeric: num_dur.as_secs_f64(),
                            ..ExecuteStats::default()
                        },
                        decisions,
                    )
                }
            }
        };
        let (out, mut stats, decisions) = match &self.thread_pool {
            Some(tp) => tp.install(body),
            None => body(),
        };
        if let Some(fp) = insert_on_miss {
            // Capture the cold result's structure — post-compaction, so
            // exact even when the symbolic strategy was `UpperBound` —
            // together with the per-chunk kernel decisions, so warm hits
            // skip scoring as well as symbolic.
            let ((), dur) = spk_obs::timed("spkadd.pattern_insert", || {
                self.cache.as_mut().expect("miss implies a cache").insert(
                    fp,
                    out.colptr(),
                    out.rowidx(),
                    &decisions,
                );
            });
            fingerprint_secs += dur.as_secs_f64();
        }
        stats.fingerprint = fingerprint_secs;
        stats.pattern = outcome;
        stats.kernel_counts = KernelCounts::from_decisions(&decisions);
        self.executions += 1;
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spk_sparse::DenseMatrix;

    fn shifted_diag(n: usize, s: u32) -> CscMatrix<f64> {
        let colptr = (0..=n).collect();
        let rows = (0..n as u32).map(|j| (j + s) % n as u32).collect();
        CscMatrix::try_new(n, n, colptr, rows, vec![1.0; n]).unwrap()
    }

    #[test]
    fn plan_executes_repeatedly_with_stable_workspaces() {
        let mats: Vec<CscMatrix<f64>> = (0..5).map(|i| shifted_diag(16, i)).collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let mut plan = SpkAdd::new(16, 16)
            .algorithm(Algorithm::Hash)
            .threads(1)
            .build::<f64>()
            .unwrap();
        let first = plan.execute(&refs).unwrap();
        let after_first = plan.workspace_allocations();
        assert!(after_first > 0, "first execution builds the tables");
        for _ in 0..5 {
            let again = plan.execute(&refs).unwrap();
            assert_eq!(again, first);
        }
        assert_eq!(
            plan.workspace_allocations(),
            after_first,
            "steady-state executions allocate no workspaces"
        );
        assert_eq!(plan.executions(), 6);
    }

    #[test]
    fn execute_into_recycles_the_sink() {
        let mats: Vec<CscMatrix<f64>> = (0..4).map(|i| shifted_diag(8, i)).collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let mut plan = SpkAdd::new(8, 8)
            .algorithm(Algorithm::Hash)
            .build::<f64>()
            .unwrap();
        let expect = plan.execute(&refs).unwrap();
        let mut sink = CscMatrix::zeros(0, 0);
        plan.execute_into(&refs, &mut sink).unwrap();
        assert_eq!(sink, expect);
        plan.execute_into(&refs, &mut sink).unwrap();
        assert_eq!(sink, expect);
    }

    #[test]
    fn plan_rejects_wrong_shapes() {
        let mut plan = SpkAdd::new(8, 8).build::<f64>().unwrap();
        let m = CscMatrix::<f64>::zeros(9, 8);
        assert!(matches!(
            plan.execute(&[&m]),
            Err(SpkaddError::Sparse(SparseError::DimensionMismatch { .. }))
        ));
        assert!(plan.execute(&[]).is_err(), "empty collection rejected");
    }

    #[test]
    fn auto_resolves_per_collection() {
        let mats: Vec<CscMatrix<f64>> = (0..6).map(|i| shifted_diag(12, i % 4)).collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let mut plan = SpkAdd::new(12, 12).build::<f64>().unwrap();
        assert_eq!(plan.algorithm(), Algorithm::Auto);
        let out = plan.execute(&refs).unwrap();
        let mut expect = DenseMatrix::zeros(12, 12);
        for m in &mats {
            expect.add_assign(&DenseMatrix::from_csc(m)).unwrap();
        }
        assert_eq!(DenseMatrix::from_csc(&out).max_abs_diff(&expect), 0.0);
        // k = 2 resolves to the pairwise merge; still exact (the two
        // shifted diagonals are disjoint, so every entry survives).
        let pair = plan.execute(&refs[..2]).unwrap();
        assert_eq!(pair.nnz(), refs[0].nnz() + refs[1].nnz());
    }

    #[test]
    fn auto_never_picks_a_sorted_only_algorithm_on_unsorted_inputs() {
        // k = 2 resolves to the pairwise merge, which silently mis-sums
        // unsorted columns — Auto must scan and fall back to Hash even
        // when validate_sorted is off (the caller's promise covers the
        // algorithm they picked, not the resolver's choice).
        let a = CscMatrix::try_new(4, 1, vec![0, 3], vec![3, 0, 2], vec![1.0, 2.0, 3.0]).unwrap();
        let b = CscMatrix::try_new(4, 1, vec![0, 2], vec![2, 0], vec![10.0, 20.0]).unwrap();
        assert!(!a.is_sorted());
        let mut plan = SpkAdd::new(4, 1)
            .validate_sorted(false)
            .build::<f64>()
            .unwrap();
        let out = plan.execute(&[&a, &b]).unwrap();
        let mut expect = DenseMatrix::zeros(4, 1);
        expect.add_assign(&DenseMatrix::from_csc(&a)).unwrap();
        expect.add_assign(&DenseMatrix::from_csc(&b)).unwrap();
        assert_eq!(DenseMatrix::from_csc(&out).max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn explicit_thread_plan_reuses_its_rayon_pool() {
        let mats: Vec<CscMatrix<f64>> = (0..3).map(|i| shifted_diag(8, i)).collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let mut plan = SpkAdd::new(8, 8)
            .algorithm(Algorithm::Hash)
            .threads(2)
            .build::<f64>()
            .unwrap();
        assert!(plan.thread_pool.is_some(), "threads > 0 caches a pool");
        let first = plan.execute(&refs).unwrap();
        assert_eq!(plan.execute(&refs).unwrap(), first);
        assert_eq!(plan.workers(), 2);
    }

    #[test]
    fn build_validates_options() {
        let err = SpkAdd::new(4, 4)
            .table_entries(0)
            .build::<f64>()
            .unwrap_err();
        assert!(matches!(err, SpkaddError::InvalidOptions(_)));
    }
}
