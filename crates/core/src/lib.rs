//! # spkadd — parallel algorithms for adding a collection of sparse matrices
//!
//! A faithful, production-grade implementation of *"Parallel Algorithms
//! for Adding a Collection of Sparse Matrices"* (Hussain, Abhishek, Buluç,
//! Azad — arXiv:2112.10223): the **SpKAdd** operation `B = Σᵢ Aᵢ` over `k`
//! sparse CSC matrices.
//!
//! ## Algorithms
//!
//! | [`Algorithm`] | Paper | Work (ER, d/col) | I/O | Sorted inputs? |
//! |---|---|---|---|---|
//! | `TwoWayIncremental` | Alg 1 | O(k²nd) | O(k²nd) | yes |
//! | `TwoWayTree` | §II-B2 | O(knd·lg k) | O(knd·lg k) | yes |
//! | `LibIncremental`/`LibTree` | "MKL" baselines | — | — | yes |
//! | `Heap` | Alg 3 | O(knd·lg k) | O(knd) | yes |
//! | `Spa` | Alg 4 | O(knd) | O(knd) | no |
//! | `Hash` | Alg 5/6 | O(knd) | O(knd) | no |
//! | `SlidingHash` | Alg 7/8 | O(knd) | O(knd), in-cache tables | no* |
//! | `SlidingSpa` | §IV-B(b) extension | O(knd) | O(knd), in-cache panels | no* |
//!
//! *The sliding algorithms use binary-search row panels on sorted inputs
//! and a bucketing pass otherwise.
//!
//! Beyond the per-call API there are [`StreamingAccumulator`] (batched
//! streaming, the paper's future-work mode), [`spkadd_csr`] (row-wise via
//! zero-copy transpose duality), and [`spkadd_dcsc`] (hypersparse
//! doubly-compressed operands).
//!
//! ## Quick start
//!
//! ```
//! use spk_sparse::CscMatrix;
//! use spkadd::{spkadd_with, Algorithm, Options};
//!
//! let a = CscMatrix::<f64>::identity(4);
//! let b = CscMatrix::<f64>::identity(4);
//! let c = CscMatrix::<f64>::identity(4);
//! let sum = spkadd_with(&[&a, &b, &c], Algorithm::Hash, &Options::default()).unwrap();
//! assert_eq!(sum.get(2, 2).unwrap(), 3.0);
//! ```

pub mod dcscadd;
pub mod error;
pub mod hashtab;
pub mod heap;
pub mod kernels;
mod kway;
pub mod libstyle;
pub mod mem;
pub mod metered;
pub mod parallel;
pub mod rowwise;
pub mod sliding;
pub mod spa;
pub mod streaming;
pub mod symbolic;
pub mod tuning;
pub mod twoway;

pub use dcscadd::spkadd_dcsc;
pub use error::SpkaddError;
pub use mem::{CountingModel, MemModel, NullModel};
pub use parallel::Scheduling;
pub use rowwise::spkadd_csr;
pub use streaming::{FlushPolicy, StreamingAccumulator};
pub use symbolic::SymbolicStrategy;
pub use tuning::{choose_algorithm, CacheConfig};
pub use twoway::add_pair;

use kway::NumericKernel;
use sliding::budget_entries;
use spk_sparse::{common_shape, CscMatrix, Scalar};
use symbolic::DriverCtx;

/// The SpKAdd algorithm family (see the crate docs for the complexity
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Fold the collection with pairwise merges (Algorithm 1).
    TwoWayIncremental,
    /// Balanced binary tree of pairwise merges (§II-B2).
    TwoWayTree,
    /// Incremental addition through a library-style primitive (stands in
    /// for the paper's "MKL Incremental" baseline).
    LibIncremental,
    /// Tree addition through a library-style primitive ("MKL Tree").
    LibTree,
    /// k-way merge with a min-heap (Algorithm 3).
    Heap,
    /// k-way addition with a dense sparse accumulator (Algorithm 4).
    Spa,
    /// k-way addition with per-column hash tables (Algorithms 5/6) — the
    /// paper's work- and I/O-optimal winner.
    Hash,
    /// Hash with cache-budgeted sliding tables (Algorithms 7/8) — the
    /// winner once tables outgrow the last-level cache.
    SlidingHash,
    /// SPA with a row-partitioned (cache-resident) accumulator — the
    /// paper's §IV-B(b) suggested extension, implemented here and
    /// evaluated by the `ablation_slidingspa` harness.
    SlidingSpa,
}

impl Algorithm {
    /// The paper's eight algorithms, in its table order (extensions such
    /// as [`Algorithm::SlidingSpa`] are not included, so the table
    /// harnesses reproduce the paper's rows exactly).
    pub const ALL: [Algorithm; 8] = [
        Algorithm::TwoWayIncremental,
        Algorithm::LibIncremental,
        Algorithm::TwoWayTree,
        Algorithm::LibTree,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::Hash,
        Algorithm::SlidingHash,
    ];

    /// Extensions beyond the paper's evaluated set.
    pub const EXTENSIONS: [Algorithm; 1] = [Algorithm::SlidingSpa];

    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::TwoWayIncremental => "2-way Incremental",
            Algorithm::TwoWayTree => "2-way Tree",
            Algorithm::LibIncremental => "Lib Incremental",
            Algorithm::LibTree => "Lib Tree",
            Algorithm::Heap => "Heap",
            Algorithm::Spa => "SPA",
            Algorithm::Hash => "Hash",
            Algorithm::SlidingHash => "Sliding Hash",
            Algorithm::SlidingSpa => "Sliding SPA",
        }
    }

    /// Whether the algorithm requires sorted, duplicate-free input columns
    /// (Table I, last column).
    pub fn needs_sorted_inputs(&self) -> bool {
        matches!(
            self,
            Algorithm::TwoWayIncremental
                | Algorithm::TwoWayTree
                | Algorithm::LibIncremental
                | Algorithm::LibTree
                | Algorithm::Heap
        )
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Execution options shared by all algorithms.
#[derive(Debug, Clone)]
pub struct Options {
    /// Worker threads; 0 uses the ambient rayon pool.
    pub threads: usize,
    /// Emit output columns sorted by row index. Turning this off lets the
    /// hash/SPA algorithms skip the per-column sort — the mode that makes
    /// the downstream SpGEMM of Fig 6 another ~20% faster.
    pub sorted_output: bool,
    /// Column-scheduling policy (§III-A).
    pub scheduling: Scheduling,
    /// Symbolic-phase strategy (§II-D).
    pub symbolic: SymbolicStrategy,
    /// Machine model for the sliding-hash budgets.
    pub cache: CacheConfig,
    /// Overrides the sliding-table budget in entries (the x-axis of
    /// Fig 4); for [`Algorithm::SlidingSpa`] the same number is the row
    /// width of one SPA panel (both cost ~12 bytes/entry). `None` derives
    /// the budget from `cache`.
    pub forced_table_entries: Option<usize>,
    /// Check input sortedness up front and fail fast for algorithms that
    /// require it. Disable only when the caller guarantees sortedness.
    pub validate_sorted: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            threads: 0,
            sorted_output: true,
            scheduling: Scheduling::default(),
            symbolic: SymbolicStrategy::Hash,
            cache: CacheConfig::detect(),
            forced_table_entries: None,
            validate_sorted: true,
        }
    }
}

impl Options {
    /// Options with a fixed thread count (builder-style convenience).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Options with unsorted output emission.
    pub fn unsorted_output(mut self) -> Self {
        self.sorted_output = false;
        self
    }
}

/// Hash-table entry size in bytes for value type `T` during the numeric
/// phase: a 4-byte row index plus the value (8 bytes for `f32`, 12 for
/// `f64` — the paper's `b`).
pub fn numeric_entry_bytes<T: Scalar>() -> usize {
    4 + std::mem::size_of::<T>()
}

/// Symbolic-phase entry size: row index only (the paper's 4 bytes).
pub const SYMBOLIC_ENTRY_BYTES: usize = 4;

/// Wall-clock split between the two phases of a k-way SpKAdd
/// (the series of Fig 4). For the 2-way and library algorithms, which
/// have no symbolic phase, `symbolic` is zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimings {
    /// Seconds spent computing per-column output sizes (§II-D).
    pub symbolic: f64,
    /// Seconds spent in the numeric addition phase.
    pub numeric: f64,
}

impl PhaseTimings {
    /// Total seconds across both phases.
    pub fn total(&self) -> f64 {
        self.symbolic + self.numeric
    }
}

/// Adds a collection of sparse matrices with an explicit algorithm choice.
///
/// All inputs must share one shape. Algorithms flagged by
/// [`Algorithm::needs_sorted_inputs`] reject unsorted inputs (unless
/// `validate_sorted` is off); the hash and SPA families accept anything.
pub fn spkadd_with<T: Scalar>(
    mats: &[&CscMatrix<T>],
    alg: Algorithm,
    opts: &Options,
) -> Result<CscMatrix<T>, SpkaddError> {
    spkadd_with_timings(mats, alg, opts).map(|(out, _)| out)
}

/// Like [`spkadd_with`], additionally reporting the symbolic/numeric
/// phase split — the quantity Fig 4 sweeps against the hash-table size.
pub fn spkadd_with_timings<T: Scalar>(
    mats: &[&CscMatrix<T>],
    alg: Algorithm,
    opts: &Options,
) -> Result<(CscMatrix<T>, PhaseTimings), SpkaddError> {
    common_shape(mats)?;

    // Sortedness: detect (or trust) once, up front.
    let inputs_sorted = if opts.validate_sorted {
        let mut all_sorted = true;
        for (i, m) in mats.iter().enumerate() {
            if !m.is_sorted() {
                if alg.needs_sorted_inputs() {
                    return Err(SpkaddError::UnsortedInput {
                        algorithm: alg.name(),
                        operand: i,
                    });
                }
                if opts.symbolic == SymbolicStrategy::Heap {
                    return Err(SpkaddError::UnsortedInput {
                        algorithm: "heap symbolic",
                        operand: i,
                    });
                }
                all_sorted = false;
            }
        }
        all_sorted
    } else {
        true
    };

    let threads_effective = if opts.threads == 0 {
        rayon::current_num_threads()
    } else {
        opts.threads
    };
    let budget_sym = opts.forced_table_entries.unwrap_or_else(|| {
        budget_entries(
            opts.cache.llc_bytes,
            SYMBOLIC_ENTRY_BYTES,
            threads_effective,
        )
    });
    let budget_add = opts.forced_table_entries.unwrap_or_else(|| {
        budget_entries(
            opts.cache.llc_bytes,
            numeric_entry_bytes::<T>(),
            threads_effective,
        )
    });
    let ctx = DriverCtx {
        sched: opts.scheduling,
        budget_sym,
        budget_add,
        inputs_sorted,
        sorted_output: opts.sorted_output,
    };

    let sched = opts.scheduling;
    parallel::run_with_threads(opts.threads, move || {
        let t0 = std::time::Instant::now();
        match alg {
            Algorithm::TwoWayIncremental => Ok((
                twoway::spkadd_incremental(mats, 0, sched),
                PhaseTimings {
                    symbolic: 0.0,
                    numeric: t0.elapsed().as_secs_f64(),
                },
            )),
            Algorithm::TwoWayTree => Ok((
                twoway::spkadd_tree(mats, 0, sched),
                PhaseTimings {
                    symbolic: 0.0,
                    numeric: t0.elapsed().as_secs_f64(),
                },
            )),
            Algorithm::LibIncremental => Ok((
                libstyle::lib_incremental(mats),
                PhaseTimings {
                    symbolic: 0.0,
                    numeric: t0.elapsed().as_secs_f64(),
                },
            )),
            Algorithm::LibTree => Ok((
                libstyle::lib_tree(mats),
                PhaseTimings {
                    symbolic: 0.0,
                    numeric: t0.elapsed().as_secs_f64(),
                },
            )),
            Algorithm::Heap
            | Algorithm::Spa
            | Algorithm::Hash
            | Algorithm::SlidingHash
            | Algorithm::SlidingSpa => {
                // Alg 8 line 2: the sliding algorithm's symbolic phase
                // slides too, unless the caller explicitly picked another
                // strategy.
                let strategy =
                    if alg == Algorithm::SlidingHash && opts.symbolic == SymbolicStrategy::Hash {
                        SymbolicStrategy::SlidingHash
                    } else {
                        opts.symbolic
                    };
                let counts = symbolic::symbolic_counts(mats, strategy, &ctx);
                let symbolic_secs = t0.elapsed().as_secs_f64();
                let exact = strategy != SymbolicStrategy::UpperBound;
                let kernel = match alg {
                    Algorithm::Heap => NumericKernel::Heap,
                    Algorithm::Spa => NumericKernel::Spa,
                    Algorithm::Hash => NumericKernel::Hash,
                    Algorithm::SlidingHash => NumericKernel::SlidingHash,
                    Algorithm::SlidingSpa => NumericKernel::SlidingSpa,
                    _ => unreachable!(),
                };
                let t1 = std::time::Instant::now();
                let out = kway::kway_numeric(mats, &counts, exact, kernel, &ctx);
                Ok((
                    out,
                    PhaseTimings {
                        symbolic: symbolic_secs,
                        numeric: t1.elapsed().as_secs_f64(),
                    },
                ))
            }
        }
    })
}

/// Adds a collection of sparse matrices, picking the algorithm with the
/// Fig 2 decision surface ([`choose_algorithm`]).
pub fn spkadd_auto<T: Scalar>(
    mats: &[&CscMatrix<T>],
    opts: &Options,
) -> Result<CscMatrix<T>, SpkaddError> {
    let (_, n) = common_shape(mats)?;
    let total: usize = mats.iter().map(|m| m.nnz()).sum();
    let avg_out = if n == 0 { 0 } else { total / n.max(1) };
    let threads = if opts.threads == 0 {
        rayon::current_num_threads()
    } else {
        opts.threads
    };
    let mut alg = choose_algorithm(
        mats.len(),
        avg_out,
        numeric_entry_bytes::<T>(),
        threads,
        &opts.cache,
    );
    if alg.needs_sorted_inputs() && mats.iter().any(|m| !m.is_sorted()) {
        alg = Algorithm::Hash;
    }
    spkadd_with(mats, alg, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spk_sparse::DenseMatrix;

    fn dense_sum(mats: &[&CscMatrix<f64>]) -> DenseMatrix<f64> {
        let mut acc = DenseMatrix::zeros(mats[0].nrows(), mats[0].ncols());
        for m in mats {
            acc.add_assign(&DenseMatrix::from_csc(m)).unwrap();
        }
        acc
    }

    fn collection() -> Vec<CscMatrix<f64>> {
        // Deterministic small collection with overlaps and empties.
        let a = CscMatrix::try_new(
            6,
            4,
            vec![0, 2, 2, 4, 5],
            vec![0, 3, 1, 4, 5],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        let b = CscMatrix::try_new(
            6,
            4,
            vec![0, 1, 3, 3, 5],
            vec![3, 0, 1, 0, 5],
            vec![10.0, 20.0, 30.0, 40.0, 50.0],
        )
        .unwrap();
        let c = CscMatrix::try_new(6, 4, vec![0, 0, 0, 1, 1], vec![4], vec![100.0]).unwrap();
        vec![a, b, c]
    }

    #[test]
    fn every_algorithm_matches_the_oracle() {
        let ms = collection();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let expect = dense_sum(&refs);
        let opts = Options::default();
        for alg in Algorithm::ALL {
            let out = spkadd_with(&refs, alg, &opts).unwrap();
            assert_eq!(
                DenseMatrix::from_csc(&out).max_abs_diff(&expect),
                0.0,
                "{alg} wrong"
            );
        }
    }

    #[test]
    fn sorted_requirement_enforced() {
        let mut ms = collection();
        // Scramble one column of the first matrix.
        let (m, n, colptr, mut rows, vals) = ms.remove(0).into_parts();
        rows.swap(0, 1);
        let unsorted = CscMatrix::try_new(m, n, colptr, rows, vals).unwrap();
        assert!(!unsorted.is_sorted());
        let mut all: Vec<&CscMatrix<f64>> = vec![&unsorted];
        all.extend(ms.iter());
        let opts = Options::default();
        for alg in [
            Algorithm::Heap,
            Algorithm::TwoWayTree,
            Algorithm::TwoWayIncremental,
        ] {
            assert!(matches!(
                spkadd_with(&all, alg, &opts),
                Err(SpkaddError::UnsortedInput { operand: 0, .. })
            ));
        }
        // Hash and SPA accept the same input.
        let expect = dense_sum(&all);
        for alg in [Algorithm::Hash, Algorithm::SlidingHash, Algorithm::Spa] {
            let out = spkadd_with(&all, alg, &opts).unwrap();
            assert_eq!(DenseMatrix::from_csc(&out).max_abs_diff(&expect), 0.0);
        }
    }

    #[test]
    fn empty_collection_rejected() {
        let refs: Vec<&CscMatrix<f64>> = vec![];
        assert!(spkadd_with(&refs, Algorithm::Hash, &Options::default()).is_err());
    }

    #[test]
    fn singleton_collection_is_identityish() {
        let ms = collection();
        let refs = vec![&ms[0]];
        let out = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        assert!(out.approx_eq(&ms[0], 0.0));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = CscMatrix::<f64>::zeros(3, 3);
        let b = CscMatrix::<f64>::zeros(3, 4);
        assert!(spkadd_with(&[&a, &b], Algorithm::Hash, &Options::default()).is_err());
    }

    #[test]
    fn unsorted_output_mode() {
        let ms = collection();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let out = spkadd_with(
            &refs,
            Algorithm::Hash,
            &Options::default().unsorted_output(),
        )
        .unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&dense_sum(&refs)),
            0.0
        );
    }

    #[test]
    fn auto_picks_something_correct() {
        let ms = collection();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let out = spkadd_auto(&refs, &Options::default()).unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&dense_sum(&refs)),
            0.0
        );
    }

    #[test]
    fn explicit_thread_count_works() {
        let ms = collection();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let out = spkadd_with(&refs, Algorithm::Hash, &Options::default().with_threads(2)).unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&dense_sum(&refs)),
            0.0
        );
    }

    #[test]
    fn entry_bytes_match_the_paper() {
        assert_eq!(numeric_entry_bytes::<f32>(), 8);
        assert_eq!(numeric_entry_bytes::<f64>(), 12);
        assert_eq!(SYMBOLIC_ENTRY_BYTES, 4);
    }
}
