//! # spkadd — parallel algorithms for adding a collection of sparse matrices
//!
//! A faithful, production-grade implementation of *"Parallel Algorithms
//! for Adding a Collection of Sparse Matrices"* (Hussain, Abhishek, Buluç,
//! Azad — arXiv:2112.10223): the **SpKAdd** operation `B = Σᵢ Aᵢ` over `k`
//! sparse CSC matrices.
//!
//! ## Algorithms
//!
//! | [`Algorithm`] | Paper | Work (ER, d/col) | I/O | Sorted inputs? |
//! |---|---|---|---|---|
//! | `TwoWayIncremental` | Alg 1 | O(k²nd) | O(k²nd) | yes |
//! | `TwoWayTree` | §II-B2 | O(knd·lg k) | O(knd·lg k) | yes |
//! | `LibIncremental`/`LibTree` | "MKL" baselines | — | — | yes |
//! | `Heap` | Alg 3 | O(knd·lg k) | O(knd) | yes |
//! | `Spa` | Alg 4 | O(knd) | O(knd) | no |
//! | `Hash` | Alg 5/6 | O(knd) | O(knd) | no |
//! | `SlidingHash` | Alg 7/8 | O(knd) | O(knd), in-cache tables | no* |
//! | `SlidingSpa` | §IV-B(b) extension | O(knd) | O(knd), in-cache panels | no* |
//!
//! *The sliding algorithms use binary-search row panels on sorted inputs
//! and a bucketing pass otherwise.
//!
//! Beyond the core API there are [`StreamingAccumulator`] (batched
//! streaming, the paper's future-work mode), [`spkadd_csr`] (row-wise via
//! zero-copy transpose duality), and [`spkadd_dcsc`] (hypersparse
//! doubly-compressed operands).
//!
//! ## Quick start: build a plan, execute it
//!
//! The front door is a builder → plan → execute lifecycle. [`SpkAdd`]
//! fixes the shape, algorithm ([`Algorithm::Auto`] picks per collection
//! with the Fig 2 decision surface), thread count, and machine model;
//! [`SpkAdd::build`] validates the options and resolves them into a
//! reusable [`SpkAddPlan`] whose hash tables, SPA panels, heap buffers,
//! and symbolic scratch persist across executions — the steady-state
//! path performs **zero** workspace allocations, which is what makes
//! repeat callers (streaming flushes, aggregation-service shards,
//! benchmark rep loops) fast.
//!
//! ```
//! use spk_sparse::CscMatrix;
//! use spkadd::{Algorithm, SpkAdd};
//!
//! let a = CscMatrix::<f64>::identity(4);
//! let b = CscMatrix::<f64>::identity(4);
//! let c = CscMatrix::<f64>::identity(4);
//!
//! let mut plan = SpkAdd::new(4, 4)
//!     .algorithm(Algorithm::Auto) // or any of the paper's nine
//!     .threads(1)
//!     .build()
//!     .unwrap();
//! let sum = plan.execute(&[&a, &b, &c]).unwrap();
//! assert_eq!(sum.get(2, 2).unwrap(), 3.0);
//!
//! // Re-execute at will: workspaces (and, with `execute_into`, even the
//! // output buffers) are reused instead of reallocated.
//! let again = plan.execute(&[&a, &b, &c]).unwrap();
//! assert_eq!(again, sum);
//! ```
//!
//! The historical one-shot entry points [`spkadd_with`] /
//! [`spkadd_with_timings`] / [`spkadd_auto`] remain as thin
//! compatibility shims over a throwaway plan; prefer holding a
//! [`SpkAddPlan`] anywhere an addition runs more than once.

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

pub mod dcscadd;
pub mod error;
pub mod hashtab;
pub mod heap;
pub mod kernels;
mod kway;
pub mod libstyle;
pub mod mem;
pub mod metered;
pub mod monoid;
pub mod parallel;
pub mod pattern;
pub mod plan;
pub mod rowwise;
pub mod sliding;
pub mod spa;
pub mod streaming;
pub mod symbolic;
pub mod tuning;
pub mod twoway;
pub mod workspace;

pub use dcscadd::spkadd_dcsc;
pub use error::SpkaddError;
pub use kway::{KernelCounts, NumericKernel};
pub use mem::{CountingModel, MemModel, NullModel};
pub use monoid::{MaxPlus, Min, Monoid, Or, Plus, SaturatingCount, ThresholdedPlus};
pub use parallel::Scheduling;
pub use pattern::{PatternCacheStats, PatternFingerprint, PatternOutcome};
pub use plan::{SpkAdd, SpkAddPlan};
pub use rowwise::spkadd_csr;
pub use streaming::{FlushPolicy, StreamingAccumulator};
pub use symbolic::SymbolicStrategy;
pub use tuning::{choose_algorithm, CacheConfig, ChunkProfile, ChunkScorer};
pub use twoway::add_pair;

use spk_sparse::{common_shape, CscMatrix, Element, Scalar};

/// The SpKAdd algorithm family (see the crate docs for the complexity
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Fold the collection with pairwise merges (Algorithm 1).
    TwoWayIncremental,
    /// Balanced binary tree of pairwise merges (§II-B2).
    TwoWayTree,
    /// Incremental addition through a library-style primitive (stands in
    /// for the paper's "MKL Incremental" baseline).
    LibIncremental,
    /// Tree addition through a library-style primitive ("MKL Tree").
    LibTree,
    /// k-way merge with a min-heap (Algorithm 3).
    Heap,
    /// k-way addition with a dense sparse accumulator (Algorithm 4).
    Spa,
    /// k-way addition with per-column hash tables (Algorithms 5/6) — the
    /// paper's work- and I/O-optimal winner.
    Hash,
    /// Hash with cache-budgeted sliding tables (Algorithms 7/8) — the
    /// winner once tables outgrow the last-level cache.
    SlidingHash,
    /// SPA with a row-partitioned (cache-resident) accumulator — the
    /// paper's §IV-B(b) suggested extension, implemented here and
    /// evaluated by the `ablation_slidingspa` harness.
    SlidingSpa,
    /// Pick per collection with the Fig 2 decision surface
    /// ([`choose_algorithm`]): pairwise merge for trivially small
    /// collections, hash while the tables fit the LLC, sliding hash
    /// beyond. Resolved at execution time, so one [`SpkAddPlan`] built
    /// with `Auto` adapts to each collection it executes.
    Auto,
}

impl Algorithm {
    /// The paper's eight algorithms, in its table order (extensions such
    /// as [`Algorithm::SlidingSpa`] are not included, so the table
    /// harnesses reproduce the paper's rows exactly).
    pub const ALL: [Algorithm; 8] = [
        Algorithm::TwoWayIncremental,
        Algorithm::LibIncremental,
        Algorithm::TwoWayTree,
        Algorithm::LibTree,
        Algorithm::Heap,
        Algorithm::Spa,
        Algorithm::Hash,
        Algorithm::SlidingHash,
    ];

    /// Extensions beyond the paper's evaluated set.
    pub const EXTENSIONS: [Algorithm; 1] = [Algorithm::SlidingSpa];

    /// Short display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::TwoWayIncremental => "2-way Incremental",
            Algorithm::TwoWayTree => "2-way Tree",
            Algorithm::LibIncremental => "Lib Incremental",
            Algorithm::LibTree => "Lib Tree",
            Algorithm::Heap => "Heap",
            Algorithm::Spa => "SPA",
            Algorithm::Hash => "Hash",
            Algorithm::SlidingHash => "Sliding Hash",
            Algorithm::SlidingSpa => "Sliding SPA",
            Algorithm::Auto => "Auto",
        }
    }

    /// Stable kebab-case token, the canonical [`std::str::FromStr`] /
    /// CLI spelling ([`Algorithm::name`] also parses back).
    pub fn token(&self) -> &'static str {
        match self {
            Algorithm::TwoWayIncremental => "2way-incremental",
            Algorithm::TwoWayTree => "2way-tree",
            Algorithm::LibIncremental => "lib-incremental",
            Algorithm::LibTree => "lib-tree",
            Algorithm::Heap => "heap",
            Algorithm::Spa => "spa",
            Algorithm::Hash => "hash",
            Algorithm::SlidingHash => "sliding-hash",
            Algorithm::SlidingSpa => "sliding-spa",
            Algorithm::Auto => "auto",
        }
    }

    /// Every accepted token, for error messages and usage strings.
    pub fn tokens() -> [&'static str; 10] {
        [
            Algorithm::Hash.token(),
            Algorithm::SlidingHash.token(),
            Algorithm::Spa.token(),
            Algorithm::SlidingSpa.token(),
            Algorithm::Heap.token(),
            Algorithm::TwoWayTree.token(),
            Algorithm::TwoWayIncremental.token(),
            Algorithm::LibTree.token(),
            Algorithm::LibIncremental.token(),
            Algorithm::Auto.token(),
        ]
    }

    /// Whether the algorithm requires sorted, duplicate-free input columns
    /// (Table I, last column). [`Algorithm::Auto`] never requires them:
    /// its resolution falls back to hash for unsorted collections.
    pub fn needs_sorted_inputs(&self) -> bool {
        matches!(
            self,
            Algorithm::TwoWayIncremental
                | Algorithm::TwoWayTree
                | Algorithm::LibIncremental
                | Algorithm::LibTree
                | Algorithm::Heap
        )
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = SpkaddError;

    /// Parses either the kebab-case token ([`Algorithm::token`]) or the
    /// paper-table display name ([`Algorithm::name`]), case- and
    /// punctuation-insensitively, so `Display` round-trips.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let norm: String = s
            .chars()
            .filter(char::is_ascii_alphanumeric)
            .collect::<String>()
            .to_ascii_lowercase();
        Ok(match norm.as_str() {
            "2wayincremental" | "twowayincremental" => Algorithm::TwoWayIncremental,
            "2waytree" | "twowaytree" => Algorithm::TwoWayTree,
            "libincremental" => Algorithm::LibIncremental,
            "libtree" => Algorithm::LibTree,
            "heap" => Algorithm::Heap,
            "spa" => Algorithm::Spa,
            "hash" => Algorithm::Hash,
            "slidinghash" => Algorithm::SlidingHash,
            "slidingspa" => Algorithm::SlidingSpa,
            "auto" => Algorithm::Auto,
            _ => return Err(SpkaddError::UnknownAlgorithm(s.to_string())),
        })
    }
}

/// Execution options shared by all algorithms.
#[derive(Debug, Clone)]
pub struct Options {
    /// Worker threads; 0 uses the ambient rayon pool.
    pub threads: usize,
    /// Emit output columns sorted by row index. Turning this off lets the
    /// hash/SPA algorithms skip the per-column sort — the mode that makes
    /// the downstream SpGEMM of Fig 6 another ~20% faster.
    pub sorted_output: bool,
    /// Column-scheduling policy (§III-A).
    pub scheduling: Scheduling,
    /// Symbolic-phase strategy (§II-D).
    pub symbolic: SymbolicStrategy,
    /// Machine model for the sliding-hash budgets.
    pub cache: CacheConfig,
    /// Overrides the sliding-table budget in entries (the x-axis of
    /// Fig 4); for [`Algorithm::SlidingSpa`] the same number is the row
    /// width of one SPA panel (both cost ~12 bytes/entry). `None` derives
    /// the budget from `cache`.
    pub forced_table_entries: Option<usize>,
    /// Check input sortedness up front and fail fast for algorithms that
    /// require it. Disable only when the caller guarantees sortedness.
    pub validate_sorted: bool,
    /// Whether [`Algorithm::Auto`] dispatches kernels *per column chunk*
    /// (scoring each weight-balanced partition with [`ChunkScorer`])
    /// instead of resolving one global algorithm per execution. On by
    /// default; turn off (or use
    /// [`SpkAdd::adaptive`](plan::SpkAdd::adaptive)) to force the old
    /// global Fig 2 resolution, e.g. for A/B runs. Ignored for explicit
    /// (non-`Auto`) algorithm choices.
    pub adaptive: bool,
    /// Capacity of the plan's pattern cache (LRU over collection
    /// structure fingerprints); `0` disables caching. When a collection
    /// with previously-seen sparsity is executed, the symbolic phase is
    /// skipped and a numeric-only kernel scatters values into the cached
    /// output structure — see [`pattern`] and
    /// [`SpkAdd::pattern_cache`](plan::SpkAdd::pattern_cache).
    pub pattern_cache: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            threads: 0,
            sorted_output: true,
            scheduling: Scheduling::default(),
            symbolic: SymbolicStrategy::Hash,
            cache: CacheConfig::detect(),
            forced_table_entries: None,
            validate_sorted: true,
            adaptive: true,
            pattern_cache: 0,
        }
    }
}

impl Options {
    /// Options with a fixed thread count (builder-style convenience).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Options with unsorted output emission.
    pub fn unsorted_output(mut self) -> Self {
        self.sorted_output = false;
        self
    }

    /// Rejects nonsense configurations up front with a typed error, so
    /// they surface at plan construction instead of as a downstream
    /// panic or a silently clamped budget. Called by [`SpkAdd::build`]
    /// (and therefore by every one-shot entry point).
    pub fn validate(&self) -> Result<(), SpkaddError> {
        if self.forced_table_entries == Some(0) {
            return Err(SpkaddError::InvalidOptions(
                "forced_table_entries must be at least 1 (a zero-entry sliding \
                 table could never hold a row)"
                    .to_string(),
            ));
        }
        if self.cache.llc_bytes == 0 {
            return Err(SpkaddError::InvalidOptions(
                "cache.llc_bytes must be nonzero (the sliding budgets divide by \
                 it; use CacheConfig::detect() or a Table II preset)"
                    .to_string(),
            ));
        }
        if self.cache.l1_bytes == 0 {
            return Err(SpkaddError::InvalidOptions(
                "cache.l1_bytes must be nonzero".to_string(),
            ));
        }
        if let Scheduling::Dynamic {
            chunks_per_thread: 0,
        } = self.scheduling
        {
            return Err(SpkaddError::InvalidOptions(
                "Scheduling::Dynamic needs chunks_per_thread >= 1".to_string(),
            ));
        }
        Ok(())
    }
}

/// Hash-table entry size in bytes for value type `T` during the numeric
/// phase: a 4-byte row index plus the value (8 bytes for `f32`, 12 for
/// `f64` — the paper's `b`).
pub fn numeric_entry_bytes<T: Element>() -> usize {
    4 + std::mem::size_of::<T>()
}

/// Symbolic-phase entry size: row index only (the paper's 4 bytes).
pub const SYMBOLIC_ENTRY_BYTES: usize = 4;

/// Per-execution statistics: the wall-clock split between the two phases
/// of a k-way SpKAdd (the series of Fig 4) plus the pattern-cache
/// outcome.
///
/// `symbolic == 0.0` alone is ambiguous — the 2-way and library
/// algorithms have no symbolic phase at all — so a *skipped* (not merely
/// trivial) phase is reported explicitly via
/// [`ExecuteStats::symbolic_skipped`], and [`ExecuteStats::pattern`]
/// says why.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecuteStats {
    /// Seconds spent computing per-column output sizes (§II-D); zero when
    /// the phase was skipped (cache hit) or the algorithm has none.
    pub symbolic: f64,
    /// Seconds spent in the numeric addition phase.
    pub numeric: f64,
    /// Seconds of pattern-cache overhead: fingerprinting the inputs and,
    /// on a miss, capturing the output structure for next time. Zero when
    /// the cache is disabled or bypassed.
    pub fingerprint: f64,
    /// `true` iff the symbolic phase was skipped outright because the
    /// collection's structure was found in the plan's pattern cache.
    pub symbolic_skipped: bool,
    /// How this execution interacted with the pattern cache.
    pub pattern: PatternOutcome,
    /// Per-chunk kernel histogram of the k-way numeric phase: how many
    /// weight-balanced column chunks each [`NumericKernel`] materialized.
    /// A forced algorithm (or `Auto` with [`Options::adaptive`] off)
    /// reports a single-kernel histogram; the 2-way/library folds report
    /// an empty one.
    pub kernel_counts: KernelCounts,
}

impl ExecuteStats {
    /// Total seconds across both phases and the cache overhead.
    pub fn total(&self) -> f64 {
        self.symbolic + self.numeric + self.fingerprint
    }
}

/// Adds a collection of sparse matrices with an explicit algorithm choice.
///
/// All inputs must share one shape. Algorithms flagged by
/// [`Algorithm::needs_sorted_inputs`] reject unsorted inputs (unless
/// `validate_sorted` is off); the hash and SPA families accept anything.
///
/// **Compatibility shim**: builds a throwaway [`SpkAddPlan`] and executes
/// it once, so every call re-allocates the kernel workspaces the plan
/// exists to amortize. Callers that add more than once should hold a
/// plan (`SpkAdd::new(m, n).algorithm(alg).build()`) instead.
pub fn spkadd_with<T: Scalar>(
    mats: &[&CscMatrix<T>],
    alg: Algorithm,
    opts: &Options,
) -> Result<CscMatrix<T>, SpkaddError> {
    spkadd_with_timings(mats, alg, opts).map(|(out, _)| out)
}

/// Like [`spkadd_with`], additionally reporting the symbolic/numeric
/// phase split — the quantity Fig 4 sweeps against the hash-table size.
///
/// **Compatibility shim** over a throwaway [`SpkAddPlan`]; see
/// [`spkadd_with`].
pub fn spkadd_with_timings<T: Scalar>(
    mats: &[&CscMatrix<T>],
    alg: Algorithm,
    opts: &Options,
) -> Result<(CscMatrix<T>, ExecuteStats), SpkaddError> {
    let (nrows, ncols) = common_shape(mats)?;
    let mut plan = SpkAdd::new(nrows, ncols)
        .algorithm(alg)
        .options(opts.clone())
        .build::<T>()?;
    plan.execute_timed(mats)
}

/// Adds a collection of sparse matrices, picking the algorithm with the
/// Fig 2 decision surface ([`choose_algorithm`]).
///
/// **Compatibility shim** for `spkadd_with(mats, Algorithm::Auto, opts)`;
/// see [`spkadd_with`].
pub fn spkadd_auto<T: Scalar>(
    mats: &[&CscMatrix<T>],
    opts: &Options,
) -> Result<CscMatrix<T>, SpkaddError> {
    spkadd_with(mats, Algorithm::Auto, opts)
}

/// One-shot k-way reduction under an arbitrary [`Monoid`] —
/// [`spkadd_with`] is this with [`Plus`]. The same symbolic/numeric
/// machinery runs unchanged: the symbolic phase is monoid-independent
/// (output structure is the set union of input structures), and a
/// filtering monoid merely demotes its counts to upper bounds that the
/// numeric driver compacts away.
///
/// Like [`spkadd_with`], this builds a throwaway plan; callers reducing
/// repeatedly should hold a plan via
/// [`SpkAdd::build_with_monoid`](plan::SpkAdd::build_with_monoid).
pub fn spkadd_with_monoid<T: spk_sparse::Element, O: Monoid<Value = T>>(
    mats: &[&CscMatrix<T>],
    monoid: O,
    alg: Algorithm,
    opts: &Options,
) -> Result<CscMatrix<T>, SpkaddError> {
    let (nrows, ncols) = common_shape(mats)?;
    let mut plan = SpkAdd::new(nrows, ncols)
        .algorithm(alg)
        .options(opts.clone())
        .build_with_monoid(monoid)?;
    plan.execute(mats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spk_sparse::DenseMatrix;

    fn dense_sum(mats: &[&CscMatrix<f64>]) -> DenseMatrix<f64> {
        let mut acc = DenseMatrix::zeros(mats[0].nrows(), mats[0].ncols());
        for m in mats {
            acc.add_assign(&DenseMatrix::from_csc(m)).unwrap();
        }
        acc
    }

    fn collection() -> Vec<CscMatrix<f64>> {
        // Deterministic small collection with overlaps and empties.
        let a = CscMatrix::try_new(
            6,
            4,
            vec![0, 2, 2, 4, 5],
            vec![0, 3, 1, 4, 5],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        let b = CscMatrix::try_new(
            6,
            4,
            vec![0, 1, 3, 3, 5],
            vec![3, 0, 1, 0, 5],
            vec![10.0, 20.0, 30.0, 40.0, 50.0],
        )
        .unwrap();
        let c = CscMatrix::try_new(6, 4, vec![0, 0, 0, 1, 1], vec![4], vec![100.0]).unwrap();
        vec![a, b, c]
    }

    #[test]
    fn every_algorithm_matches_the_oracle() {
        let ms = collection();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let expect = dense_sum(&refs);
        let opts = Options::default();
        for alg in Algorithm::ALL {
            let out = spkadd_with(&refs, alg, &opts).unwrap();
            assert_eq!(
                DenseMatrix::from_csc(&out).max_abs_diff(&expect),
                0.0,
                "{alg} wrong"
            );
        }
    }

    #[test]
    fn sorted_requirement_enforced() {
        let mut ms = collection();
        // Scramble one column of the first matrix.
        let (m, n, colptr, mut rows, vals) = ms.remove(0).into_parts();
        rows.swap(0, 1);
        let unsorted = CscMatrix::try_new(m, n, colptr, rows, vals).unwrap();
        assert!(!unsorted.is_sorted());
        let mut all: Vec<&CscMatrix<f64>> = vec![&unsorted];
        all.extend(ms.iter());
        let opts = Options::default();
        for alg in [
            Algorithm::Heap,
            Algorithm::TwoWayTree,
            Algorithm::TwoWayIncremental,
        ] {
            assert!(matches!(
                spkadd_with(&all, alg, &opts),
                Err(SpkaddError::UnsortedInput { operand: 0, .. })
            ));
        }
        // Hash and SPA accept the same input.
        let expect = dense_sum(&all);
        for alg in [Algorithm::Hash, Algorithm::SlidingHash, Algorithm::Spa] {
            let out = spkadd_with(&all, alg, &opts).unwrap();
            assert_eq!(DenseMatrix::from_csc(&out).max_abs_diff(&expect), 0.0);
        }
    }

    #[test]
    fn empty_collection_rejected() {
        let refs: Vec<&CscMatrix<f64>> = vec![];
        assert!(spkadd_with(&refs, Algorithm::Hash, &Options::default()).is_err());
    }

    #[test]
    fn singleton_collection_is_identityish() {
        let ms = collection();
        let refs = vec![&ms[0]];
        let out = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        assert!(out.approx_eq(&ms[0], 0.0));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = CscMatrix::<f64>::zeros(3, 3);
        let b = CscMatrix::<f64>::zeros(3, 4);
        assert!(spkadd_with(&[&a, &b], Algorithm::Hash, &Options::default()).is_err());
    }

    #[test]
    fn unsorted_output_mode() {
        let ms = collection();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let out = spkadd_with(
            &refs,
            Algorithm::Hash,
            &Options::default().unsorted_output(),
        )
        .unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&dense_sum(&refs)),
            0.0
        );
    }

    #[test]
    fn auto_picks_something_correct() {
        let ms = collection();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let out = spkadd_auto(&refs, &Options::default()).unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&dense_sum(&refs)),
            0.0
        );
    }

    #[test]
    fn explicit_thread_count_works() {
        let ms = collection();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let out = spkadd_with(&refs, Algorithm::Hash, &Options::default().with_threads(2)).unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&dense_sum(&refs)),
            0.0
        );
    }

    #[test]
    fn entry_bytes_match_the_paper() {
        assert_eq!(numeric_entry_bytes::<f32>(), 8);
        assert_eq!(numeric_entry_bytes::<f64>(), 12);
        assert_eq!(SYMBOLIC_ENTRY_BYTES, 4);
    }

    #[test]
    fn algorithm_parse_display_round_trip() {
        for alg in Algorithm::ALL
            .into_iter()
            .chain(Algorithm::EXTENSIONS)
            .chain([Algorithm::Auto])
        {
            assert_eq!(alg.to_string().parse::<Algorithm>().unwrap(), alg);
            assert_eq!(alg.token().parse::<Algorithm>().unwrap(), alg);
        }
        assert_eq!("HASH".parse::<Algorithm>().unwrap(), Algorithm::Hash);
        let err = "quantum".parse::<Algorithm>().unwrap_err();
        assert!(matches!(err, SpkaddError::UnknownAlgorithm(_)));
        assert!(err.to_string().contains("sliding-hash"), "lists tokens");
    }

    #[test]
    fn auto_algorithm_matches_spkadd_auto() {
        let ms = collection();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let via_auto_fn = spkadd_auto(&refs, &Options::default()).unwrap();
        let via_variant = spkadd_with(&refs, Algorithm::Auto, &Options::default()).unwrap();
        assert_eq!(via_auto_fn, via_variant);
        assert!(!Algorithm::Auto.needs_sorted_inputs());
        assert!(
            !Algorithm::ALL.contains(&Algorithm::Auto),
            "not a paper row"
        );
    }

    #[test]
    fn invalid_options_rejected_up_front() {
        let ms = collection();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut opts = Options::default();
        opts.forced_table_entries = Some(0);
        assert!(matches!(
            spkadd_with(&refs, Algorithm::SlidingHash, &opts),
            Err(SpkaddError::InvalidOptions(_))
        ));
        let mut opts = Options::default();
        opts.cache.llc_bytes = 0;
        assert!(matches!(
            opts.validate(),
            Err(SpkaddError::InvalidOptions(_))
        ));
        let mut opts = Options::default();
        opts.scheduling = Scheduling::Dynamic {
            chunks_per_thread: 0,
        };
        assert!(opts.validate().is_err());
        assert!(Options::default().validate().is_ok());
    }
}
