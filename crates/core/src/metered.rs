//! Sequential, fully-instrumented SpKAdd drivers.
//!
//! These run every algorithm single-threaded against one
//! [`CountingModel`], producing the empirical work (ops) and I/O (bytes)
//! figures that the Table I harness compares against the paper's
//! complexity claims: 2-way incremental should scale as k², tree and heap
//! as k·lg k in work but k in streamed I/O, SPA/hash/sliding as k.

use crate::hashtab::{HashAccumulator, SymbolicHashTable};
use crate::heap::KwayHeap;
use crate::kernels::{hash_add_column, hash_symbolic_column, heap_add_column, spa_add_column};
use crate::mem::{CountingModel, MemModel};
use crate::parallel::exclusive_prefix_sum;
use crate::sliding::{sliding_add_column, sliding_symbolic_column, SlidingScratch};
use crate::spa::{sliding_spa_add_column, Spa};
use crate::twoway::{col_merge_count, col_merge_into};
use crate::{Algorithm, SpkaddError};
use spk_sparse::{common_shape, ColView, CscMatrix, Scalar};

/// Sequential instrumented 2-way addition.
fn meter_add_pair<T: Scalar, M: MemModel>(
    a: &CscMatrix<T>,
    b: &CscMatrix<T>,
    mem: &mut M,
) -> CscMatrix<T> {
    let n = a.ncols();
    let counts: Vec<usize> = (0..n)
        .map(|j| col_merge_count(a.col(j), b.col(j), mem))
        .collect();
    let colptr = exclusive_prefix_sum(&counts);
    let nnz = *colptr.last().unwrap();
    let mut rows = vec![0u32; nnz];
    let mut vals = vec![T::default(); nnz];
    for j in 0..n {
        let lo = colptr[j];
        let hi = colptr[j + 1];
        col_merge_into(
            a.col(j),
            b.col(j),
            &mut rows[lo..hi],
            &mut vals[lo..hi],
            mem,
        );
    }
    CscMatrix::from_parts(a.nrows(), n, colptr, rows, vals)
}

/// Runs `alg` sequentially with full instrumentation; returns the result
/// and the observed counters. `budget` is the sliding-hash table budget in
/// entries (ignored by other algorithms). The library baselines are not
/// meterable (their cost hides inside un-instrumented sort calls) and
/// return an error.
pub fn meter_spkadd<T: Scalar>(
    mats: &[&CscMatrix<T>],
    alg: Algorithm,
    budget: usize,
) -> Result<(CscMatrix<T>, CountingModel), SpkaddError> {
    let mut mem = CountingModel::new();
    let result = trace_spkadd(mats, alg, budget, &mut mem)?;
    Ok((result, mem))
}

/// Sequential single-"thread" SpKAdd whose every memory access is reported
/// to the supplied [`MemModel`]. [`meter_spkadd`] plugs in a
/// [`CountingModel`]; `spk-cachesim` plugs in a cache hierarchy to
/// reproduce the paper's Cachegrind measurements (Table V).
pub fn trace_spkadd<T: Scalar, M: MemModel>(
    mats: &[&CscMatrix<T>],
    alg: Algorithm,
    budget: usize,
    mem: &mut M,
) -> Result<CscMatrix<T>, SpkaddError> {
    let (m, n) = common_shape(mats)?;
    let k = mats.len();
    if alg.needs_sorted_inputs() {
        for (i, mat) in mats.iter().enumerate() {
            if !mat.is_sorted() {
                return Err(SpkaddError::UnsortedInput {
                    algorithm: alg.name(),
                    operand: i,
                });
            }
        }
    }
    // Rebind so the kernel calls below can take `&mut mem` repeatedly.
    let mut mem = &mut *mem;

    let result = match alg {
        Algorithm::TwoWayIncremental => {
            let mut acc = mats[0].clone();
            for a in &mats[1..] {
                acc = meter_add_pair(&acc, a, &mut mem);
            }
            acc
        }
        Algorithm::TwoWayTree => {
            let mut level: Vec<CscMatrix<T>> = Vec::new();
            for pair in mats.chunks(2) {
                level.push(match pair {
                    [a, b] => meter_add_pair(a, b, &mut mem),
                    [a] => (*a).clone(),
                    _ => unreachable!(),
                });
            }
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for pair in level.chunks(2) {
                    next.push(match pair {
                        [a, b] => meter_add_pair(a, b, &mut mem),
                        [a] => a.clone(),
                        _ => unreachable!(),
                    });
                }
                level = next;
            }
            level.pop().expect("non-empty collection")
        }
        Algorithm::LibIncremental | Algorithm::LibTree => {
            return Err(SpkaddError::InvalidOptions(
                "library baselines are not instrumentable; meter the native \
                 2-way algorithms instead"
                    .to_string(),
            ))
        }
        Algorithm::Auto => {
            return Err(SpkaddError::InvalidOptions(
                "metering needs a concrete algorithm; Auto resolves per \
                 collection in the plan front door"
                    .to_string(),
            ))
        }
        Algorithm::Heap
        | Algorithm::Spa
        | Algorithm::Hash
        | Algorithm::SlidingHash
        | Algorithm::SlidingSpa => {
            // Symbolic phase (hash symbolic for hash/heap/SPA as in the
            // paper; sliding symbolic for the sliding algorithm).
            let mut views: Vec<ColView<'_, T>> = Vec::with_capacity(k);
            let mut counts = vec![0usize; n];
            match alg {
                Algorithm::SlidingHash => {
                    let mut ht = SymbolicHashTable::with_capacity(16);
                    let mut scratch = SlidingScratch::new();
                    for (j, c) in counts.iter_mut().enumerate() {
                        views.clear();
                        views.extend(mats.iter().map(|a| a.col(j)));
                        *c = sliding_symbolic_column(
                            &views,
                            m,
                            budget,
                            &mut ht,
                            true,
                            &mut scratch,
                            &mut mem,
                        );
                    }
                }
                _ => {
                    let mut ht = SymbolicHashTable::with_capacity(16);
                    for (j, c) in counts.iter_mut().enumerate() {
                        views.clear();
                        views.extend(mats.iter().map(|a| a.col(j)));
                        let inz: usize = views.iter().map(|v| v.nnz()).sum();
                        ht.reserve_for(inz);
                        *c = hash_symbolic_column(&views, &mut ht, &mut mem);
                    }
                }
            }
            let colptr = exclusive_prefix_sum(&counts);
            let nnz = *colptr.last().unwrap();
            let mut rows = vec![0u32; nnz];
            let mut vals = vec![T::default(); nnz];
            match alg {
                Algorithm::Heap => {
                    let mut heap = KwayHeap::<T>::new(k);
                    for j in 0..n {
                        views.clear();
                        views.extend(mats.iter().map(|a| a.col(j)));
                        let (lo, hi) = (colptr[j], colptr[j + 1]);
                        heap_add_column(
                            &views,
                            &mut heap,
                            &mut rows[lo..hi],
                            &mut vals[lo..hi],
                            &mut mem,
                        );
                    }
                }
                Algorithm::Spa => {
                    let mut spa = Spa::<T>::new(m);
                    for j in 0..n {
                        views.clear();
                        views.extend(mats.iter().map(|a| a.col(j)));
                        let (lo, hi) = (colptr[j], colptr[j + 1]);
                        spa_add_column(
                            &views,
                            &mut spa,
                            &mut rows[lo..hi],
                            &mut vals[lo..hi],
                            true,
                            &mut mem,
                        );
                    }
                }
                Algorithm::Hash => {
                    let mut ht = HashAccumulator::<T>::with_capacity(16);
                    for j in 0..n {
                        views.clear();
                        views.extend(mats.iter().map(|a| a.col(j)));
                        let (lo, hi) = (colptr[j], colptr[j + 1]);
                        ht.reserve_for(hi - lo);
                        hash_add_column(
                            &views,
                            &mut ht,
                            &mut rows[lo..hi],
                            &mut vals[lo..hi],
                            true,
                            &mut mem,
                        );
                    }
                }
                Algorithm::SlidingHash => {
                    let mut ht = HashAccumulator::<T>::with_capacity(16);
                    let mut scratch = SlidingScratch::new();
                    for j in 0..n {
                        views.clear();
                        views.extend(mats.iter().map(|a| a.col(j)));
                        let (lo, hi) = (colptr[j], colptr[j + 1]);
                        sliding_add_column(
                            &views,
                            m,
                            budget,
                            hi - lo,
                            &mut ht,
                            &mut rows[lo..hi],
                            &mut vals[lo..hi],
                            true,
                            true,
                            &mut scratch,
                            &mut mem,
                        );
                    }
                }
                Algorithm::SlidingSpa => {
                    let mut spa = Spa::<T>::new(m.min(budget.max(1)));
                    let mut scratch = SlidingScratch::new();
                    for j in 0..n {
                        views.clear();
                        views.extend(mats.iter().map(|a| a.col(j)));
                        let (lo, hi) = (colptr[j], colptr[j + 1]);
                        sliding_spa_add_column(
                            &views,
                            m,
                            budget,
                            &mut spa,
                            &mut rows[lo..hi],
                            &mut vals[lo..hi],
                            true,
                            true,
                            &mut scratch,
                            &mut mem,
                        );
                    }
                }
                _ => unreachable!(),
            }
            CscMatrix::from_parts(m, n, colptr, rows, vals)
        }
    };
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spk_sparse::DenseMatrix;

    fn diag_shifted(m: usize, shift: u32, val: f64) -> CscMatrix<f64> {
        // One entry per column at row (j + shift) mod m: disjoint patterns
        // for distinct shifts, the worst case for 2-way addition.
        let colptr = (0..=m).collect();
        let rows = (0..m as u32).map(|j| (j + shift) % m as u32).collect();
        CscMatrix::try_new(m, m, colptr, rows, vec![val; m]).unwrap()
    }

    fn oracle(mats: &[&CscMatrix<f64>]) -> DenseMatrix<f64> {
        let mut acc = DenseMatrix::zeros(mats[0].nrows(), mats[0].ncols());
        for m in mats {
            acc.add_assign(&DenseMatrix::from_csc(m)).unwrap();
        }
        acc
    }

    #[test]
    fn metered_results_are_correct() {
        let ms: Vec<CscMatrix<f64>> = (0..4).map(|i| diag_shifted(16, i, 1.0)).collect();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let expect = oracle(&refs);
        for alg in [
            Algorithm::TwoWayIncremental,
            Algorithm::TwoWayTree,
            Algorithm::Heap,
            Algorithm::Spa,
            Algorithm::Hash,
            Algorithm::SlidingHash,
        ] {
            let (out, counters) = meter_spkadd(&refs, alg, 8).unwrap();
            assert_eq!(
                DenseMatrix::from_csc(&out).max_abs_diff(&expect),
                0.0,
                "{alg} wrong"
            );
            assert!(counters.ops > 0, "{alg} recorded no work");
            assert!(counters.bytes_total() > 0, "{alg} recorded no I/O");
        }
    }

    #[test]
    fn incremental_io_grows_quadratically() {
        // Disjoint inputs: incremental re-streams the growing prefix, so
        // bytes(k=8) / bytes(k=4) should approach (8/4)² = 4, while hash
        // stays ~linear (ratio ≈ 2).
        let io_for = |k: usize, alg: Algorithm| -> u64 {
            let ms: Vec<CscMatrix<f64>> = (0..k as u32).map(|i| diag_shifted(64, i, 1.0)).collect();
            let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
            meter_spkadd(&refs, alg, 1 << 20).unwrap().1.bytes_total()
        };
        let inc_ratio = io_for(8, Algorithm::TwoWayIncremental) as f64
            / io_for(4, Algorithm::TwoWayIncremental) as f64;
        let hash_ratio = io_for(8, Algorithm::Hash) as f64 / io_for(4, Algorithm::Hash) as f64;
        assert!(
            inc_ratio > 3.0,
            "incremental I/O ratio {inc_ratio} not quadratic-ish"
        );
        assert!(
            hash_ratio < 2.5,
            "hash I/O ratio {hash_ratio} not linear-ish"
        );
    }

    #[test]
    fn heap_work_exceeds_hash_work() {
        let ms: Vec<CscMatrix<f64>> = (0..16u32).map(|i| diag_shifted(64, i, 1.0)).collect();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let (_, heap) = meter_spkadd(&refs, Algorithm::Heap, 1 << 20).unwrap();
        let (_, hash) = meter_spkadd(&refs, Algorithm::Hash, 1 << 20).unwrap();
        assert!(
            heap.ops > hash.ops,
            "heap ops {} should exceed hash ops {} (lg k factor)",
            heap.ops,
            hash.ops
        );
    }

    #[test]
    fn lib_baselines_not_meterable() {
        let ms: Vec<CscMatrix<f64>> = (0..2).map(|i| diag_shifted(8, i, 1.0)).collect();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        assert!(meter_spkadd(&refs, Algorithm::LibIncremental, 8).is_err());
        assert!(meter_spkadd(&refs, Algorithm::LibTree, 8).is_err());
    }
}
