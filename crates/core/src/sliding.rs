//! The sliding hash algorithm (Algorithms 7 and 8 of the paper).
//!
//! Plain hash SpKAdd goes out of cache when the per-thread tables exceed
//! the shared last-level cache: with `T` threads and `b` bytes per entry,
//! a column whose table needs more than `M / (b·T)` entries starts missing
//! in LLC on every random probe. The sliding scheme splits the row space
//! `[0, m)` into `parts = ⌈needed·b·T / M⌉` equal ranges and runs the plain
//! hash kernel once per range, so each table stays cache-resident and the
//! output is produced range by range ("sliding" down the column).
//!
//! Row panels are located by binary search when the input columns are
//! sorted (the paper's method). For unsorted inputs — which plain hash
//! accepts and sliding hash should too — a single bucketing pass scatters
//! entries into per-part scratch buffers instead, preserving the O(nnz)
//! per-column cost.

use crate::hashtab::{HashAccumulator, SymbolicHashTable};
use crate::kernels::{hash_add_column_with, hash_symbolic_column};
use crate::mem::MemModel;
use crate::monoid::{Monoid, Plus};
use spk_sparse::{ColView, Element, Scalar};

/// Per-thread hash-table budget in *entries*, derived from the machine
/// model (Alg 7/8 line 3 rearranged): `M / (b·T)`.
#[inline]
pub fn budget_entries(llc_bytes: usize, entry_bytes: usize, threads: usize) -> usize {
    (llc_bytes / (entry_bytes.max(1) * threads.max(1))).max(16)
}

/// Number of row panels needed so each panel's table fits the budget
/// (Alg 7 line 3 with the budget substituted): `⌈needed / budget⌉`.
#[inline]
pub fn num_parts(needed_entries: usize, budget: usize) -> usize {
    needed_entries.div_ceil(budget.max(1)).max(1)
}

/// Reusable scratch for the unsorted bucketing path.
#[derive(Debug, Default)]
pub struct SlidingScratch<T> {
    rows: Vec<Vec<u32>>,
    vals: Vec<Vec<T>>,
}

impl<T: Element> SlidingScratch<T> {
    /// Empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self {
            rows: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn prepare(&mut self, parts: usize) {
        while self.rows.len() < parts {
            self.rows.push(Vec::new());
            self.vals.push(Vec::new());
        }
        for p in 0..parts {
            self.rows[p].clear();
            self.vals[p].clear();
        }
    }

    /// Clears and sizes the scratch for `parts` buckets (for kernels
    /// outside this module, e.g. the sliding SPA).
    pub fn prepare_parts(&mut self, parts: usize) {
        self.prepare(parts);
    }

    /// Appends one entry to bucket `p`.
    #[inline]
    pub fn push(&mut self, p: usize, r: u32, v: T) {
        self.rows[p].push(r);
        self.vals[p].push(v);
    }

    /// Borrow bucket `p` as parallel slices.
    pub fn part(&self, p: usize) -> (&[u32], &[T]) {
        (&self.rows[p], &self.vals[p])
    }
}

/// Panel boundary for part `i` of `parts` over `m` rows (Alg 7 line 9).
#[inline]
fn panel_bound(i: usize, parts: usize, m: usize) -> u32 {
    ((i as u64 * m as u64) / parts as u64) as u32
}

/// Sliding-hash symbolic phase for one column (Algorithm 7): counts
/// `nnz(B(:,j))` using tables of at most `budget` entries.
///
/// `inputs_sorted` selects binary-search panelling (paper) vs bucketing.
#[allow(clippy::too_many_arguments)]
pub fn sliding_symbolic_column<T: Element, M: MemModel>(
    cols: &[ColView<'_, T>],
    m: usize,
    budget: usize,
    ht: &mut SymbolicHashTable,
    inputs_sorted: bool,
    scratch: &mut SlidingScratch<T>,
    mem: &mut M,
) -> usize {
    let inz: usize = cols.iter().map(|c| c.nnz()).sum();
    let parts = num_parts(inz, budget);
    if parts == 1 {
        ht.reserve_for(inz);
        return hash_symbolic_column(cols, ht, mem);
    }
    let mut nz = 0usize;
    if inputs_sorted {
        let mut sub: Vec<ColView<'_, T>> = Vec::with_capacity(cols.len());
        for i in 0..parts {
            let r1 = panel_bound(i, parts, m);
            let r2 = panel_bound(i + 1, parts, m);
            sub.clear();
            sub.extend(cols.iter().map(|c| c.row_range(r1, r2)));
            let panel_inz: usize = sub.iter().map(|c| c.nnz()).sum();
            // The paper's budget semantics: allocate at most `budget`
            // entries; a panel with more distinct rows grows on demand.
            ht.reserve_for(panel_inz.min(budget));
            nz += hash_symbolic_column(&sub, ht, mem);
        }
    } else {
        scratch.prepare(parts);
        let bounds: Vec<u32> = (0..=parts).map(|i| panel_bound(i, parts, m)).collect();
        for col in cols {
            for (r, v) in col.iter() {
                let p = bounds.partition_point(|&b| b <= r) - 1;
                scratch.rows[p].push(r);
                scratch.vals[p].push(v);
            }
        }
        for p in 0..parts {
            let view = [ColView {
                rows: &scratch.rows[p],
                vals: &scratch.vals[p],
            }];
            ht.reserve_for(scratch.rows[p].len().min(budget));
            nz += hash_symbolic_column(&view, ht, mem);
        }
    }
    nz
}

/// Sliding-hash addition for one column (Algorithm 8): fills the output
/// slices panel by panel using tables of at most `budget` entries.
/// `onz` is the column's output size from the symbolic phase. Returns the
/// entries written.
///
/// Panels cover ascending row ranges, so when `sorted` is requested each
/// panel is emitted sorted and the concatenation is globally sorted.
#[allow(clippy::too_many_arguments)]
pub fn sliding_add_column<T: Scalar, M: MemModel>(
    cols: &[ColView<'_, T>],
    m: usize,
    budget: usize,
    onz: usize,
    ht: &mut HashAccumulator<T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    sorted: bool,
    inputs_sorted: bool,
    scratch: &mut SlidingScratch<T>,
    mem: &mut M,
) -> usize {
    sliding_add_column_with(
        cols,
        m,
        budget,
        onz,
        ht,
        out_rows,
        out_vals,
        sorted,
        inputs_sorted,
        Plus::new(),
        scratch,
        mem,
    )
}

/// Monoid-generic sliding-hash addition — see [`sliding_add_column`],
/// which is this with [`Plus`]. With a filtering monoid the symbolic
/// `onz` is only an upper bound, so fewer than `onz` entries may be
/// written.
#[allow(clippy::too_many_arguments)]
pub fn sliding_add_column_with<T: Element, O: Monoid<Value = T>, M: MemModel>(
    cols: &[ColView<'_, T>],
    m: usize,
    budget: usize,
    onz: usize,
    ht: &mut HashAccumulator<T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    sorted: bool,
    inputs_sorted: bool,
    monoid: O,
    scratch: &mut SlidingScratch<T>,
    mem: &mut M,
) -> usize {
    let parts = num_parts(onz, budget);
    if parts == 1 {
        ht.reserve_for(onz);
        return hash_add_column_with(cols, ht, out_rows, out_vals, sorted, monoid, mem);
    }
    let mut written = 0usize;
    if inputs_sorted {
        let mut sub: Vec<ColView<'_, T>> = Vec::with_capacity(cols.len());
        for i in 0..parts {
            let r1 = panel_bound(i, parts, m);
            let r2 = panel_bound(i + 1, parts, m);
            sub.clear();
            sub.extend(cols.iter().map(|c| c.row_range(r1, r2)));
            let panel_inz: usize = sub.iter().map(|c| c.nnz()).sum();
            ht.reserve_for(panel_inz.min(budget));
            written += hash_add_column_with(
                &sub,
                ht,
                &mut out_rows[written..],
                &mut out_vals[written..],
                sorted,
                monoid,
                mem,
            );
        }
    } else {
        scratch.prepare(parts);
        let bounds: Vec<u32> = (0..=parts).map(|i| panel_bound(i, parts, m)).collect();
        for col in cols {
            for (r, v) in col.iter() {
                let p = bounds.partition_point(|&b| b <= r) - 1;
                scratch.rows[p].push(r);
                scratch.vals[p].push(v);
            }
        }
        for p in 0..parts {
            let view = [ColView {
                rows: &scratch.rows[p],
                vals: &scratch.vals[p],
            }];
            ht.reserve_for(scratch.rows[p].len().min(budget));
            written += hash_add_column_with(
                &view,
                ht,
                &mut out_rows[written..],
                &mut out_vals[written..],
                sorted,
                monoid,
                mem,
            );
        }
    }
    debug_assert!(if O::MAY_FILTER {
        written <= onz
    } else {
        written == onz
    });
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NullModel;

    fn mk_cols() -> (Vec<u32>, Vec<f64>, Vec<u32>, Vec<f64>) {
        // Two columns over m = 64 rows with overlap in every panel.
        let r1: Vec<u32> = (0..64).step_by(2).collect(); // evens
        let v1 = vec![1.0f64; r1.len()];
        let r2: Vec<u32> = (0..64).step_by(3).collect(); // multiples of 3
        let v2 = vec![2.0f64; r2.len()];
        (r1, v1, r2, v2)
    }

    #[test]
    fn budget_and_parts_arithmetic() {
        // 32 MB LLC, 8-byte entries, 48 threads → ~87k entries (Fig 2's
        // example: 128·512 = 65 536 output entries fits; ×12 bytes spills).
        let b = budget_entries(32 << 20, 8, 48);
        assert_eq!(b, (32 << 20) / (8 * 48));
        assert_eq!(num_parts(100, 100), 1);
        assert_eq!(num_parts(101, 100), 2);
        assert_eq!(num_parts(0, 100), 1);
        assert!(budget_entries(0, 8, 4) >= 16, "floor keeps tables usable");
    }

    #[test]
    fn sliding_matches_plain_hash_sorted_path() {
        let (r1, v1, r2, v2) = mk_cols();
        let cols = vec![
            ColView {
                rows: &r1,
                vals: &v1,
            },
            ColView {
                rows: &r2,
                vals: &v2,
            },
        ];
        let mut mem = NullModel;
        // Plain hash reference.
        let mut ht = HashAccumulator::<f64>::with_capacity(64);
        let mut ref_rows = vec![0u32; 64];
        let mut ref_vals = vec![0.0f64; 64];
        let n_ref = crate::kernels::hash_add_column(
            &cols,
            &mut ht,
            &mut ref_rows,
            &mut ref_vals,
            true,
            &mut mem,
        );

        // Sliding with a tiny budget forces many panels.
        let mut sht = SymbolicHashTable::with_capacity(4);
        let mut scratch = SlidingScratch::new();
        let onz = sliding_symbolic_column(&cols, 64, 8, &mut sht, true, &mut scratch, &mut mem);
        assert_eq!(onz, n_ref);
        let mut ht2 = HashAccumulator::<f64>::with_capacity(4);
        let mut rows = vec![0u32; onz];
        let mut vals = vec![0.0f64; onz];
        let n = sliding_add_column(
            &cols,
            64,
            8,
            onz,
            &mut ht2,
            &mut rows,
            &mut vals,
            true,
            true,
            &mut scratch,
            &mut mem,
        );
        assert_eq!(n, n_ref);
        assert_eq!(&rows[..], &ref_rows[..n_ref]);
        assert_eq!(&vals[..], &ref_vals[..n_ref]);
    }

    #[test]
    fn sliding_bucket_path_matches_sorted_path() {
        let (r1, v1, r2, v2) = mk_cols();
        // Shuffle the first column to make it unsorted.
        let mut ru: Vec<u32> = r1.clone();
        ru.reverse();
        let mut vu = v1.clone();
        vu.reverse();
        let sorted_cols = vec![
            ColView {
                rows: &r1,
                vals: &v1,
            },
            ColView {
                rows: &r2,
                vals: &v2,
            },
        ];
        let unsorted_cols = vec![
            ColView {
                rows: &ru,
                vals: &vu,
            },
            ColView {
                rows: &r2,
                vals: &v2,
            },
        ];
        let mut mem = NullModel;
        let mut scratch = SlidingScratch::new();
        let mut sht = SymbolicHashTable::with_capacity(4);
        let onz_sorted =
            sliding_symbolic_column(&sorted_cols, 64, 8, &mut sht, true, &mut scratch, &mut mem);
        let onz_unsorted = sliding_symbolic_column(
            &unsorted_cols,
            64,
            8,
            &mut sht,
            false,
            &mut scratch,
            &mut mem,
        );
        assert_eq!(onz_sorted, onz_unsorted);

        let mut ht = HashAccumulator::<f64>::with_capacity(4);
        let mut rows_a = vec![0u32; onz_sorted];
        let mut vals_a = vec![0.0f64; onz_sorted];
        sliding_add_column(
            &sorted_cols,
            64,
            8,
            onz_sorted,
            &mut ht,
            &mut rows_a,
            &mut vals_a,
            true,
            true,
            &mut scratch,
            &mut mem,
        );
        let mut rows_b = vec![0u32; onz_unsorted];
        let mut vals_b = vec![0.0f64; onz_unsorted];
        sliding_add_column(
            &unsorted_cols,
            64,
            8,
            onz_unsorted,
            &mut ht,
            &mut rows_b,
            &mut vals_b,
            true,
            false,
            &mut scratch,
            &mut mem,
        );
        assert_eq!(rows_a, rows_b);
        assert_eq!(vals_a, vals_b);
    }

    #[test]
    fn single_part_falls_back_to_plain_hash() {
        let (r1, v1, ..) = mk_cols();
        let cols = vec![ColView {
            rows: &r1,
            vals: &v1,
        }];
        let mut sht = SymbolicHashTable::with_capacity(4);
        let mut scratch = SlidingScratch::new();
        let onz = sliding_symbolic_column(
            &cols,
            64,
            1 << 20,
            &mut sht,
            true,
            &mut scratch,
            &mut NullModel,
        );
        assert_eq!(onz, r1.len());
    }

    #[test]
    fn panel_bounds_tile_row_space() {
        let parts = 7;
        let m = 100;
        assert_eq!(panel_bound(0, parts, m), 0);
        assert_eq!(panel_bound(parts, parts, m), 100);
        for i in 0..parts {
            assert!(panel_bound(i, parts, m) <= panel_bound(i + 1, parts, m));
        }
    }
}
