//! Memory-access modelling for kernel instrumentation.
//!
//! Every SpKAdd column kernel is generic over a [`MemModel`]. In production
//! the model is [`NullModel`], whose methods are `#[inline(always)]` no-ops
//! that vanish at compile time, so the shipping kernels pay nothing. Two
//! other implementations exist:
//!
//! * [`CountingModel`] — tallies abstract work operations and bytes moved,
//!   used by the Table I harness to validate the paper's work/I-O
//!   complexity claims empirically;
//! * `spk-cachesim::CacheHierarchy` — a set-associative cache simulator
//!   that replays the kernels' *actual* address streams to reproduce the
//!   paper's Cachegrind LL-miss measurements (Table V).
//!
//! Addresses passed to the model are real pointer values, so spatial
//! locality (the property the sliding-hash algorithm exists to exploit) is
//! faithfully visible to the simulator.

/// Observer of a kernel's memory traffic and abstract work.
pub trait MemModel {
    /// A load of `bytes` bytes at `addr`.
    fn read(&mut self, addr: usize, bytes: usize);
    /// A store of `bytes` bytes at `addr`.
    fn write(&mut self, addr: usize, bytes: usize);
    /// `n` abstract work operations (comparisons, probes, heap swaps…).
    fn op(&mut self, n: u64);
}

/// The zero-cost production model: every hook is an empty inline function.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullModel;

impl MemModel for NullModel {
    #[inline(always)]
    fn read(&mut self, _addr: usize, _bytes: usize) {}
    #[inline(always)]
    fn write(&mut self, _addr: usize, _bytes: usize) {}
    #[inline(always)]
    fn op(&mut self, _n: u64) {}
}

/// Tallies operations and bytes; the empirical work/I-O meter of Table I.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingModel {
    /// Number of load events observed.
    pub reads: u64,
    /// Number of store events observed.
    pub writes: u64,
    /// Total bytes loaded.
    pub bytes_read: u64,
    /// Total bytes stored.
    pub bytes_written: u64,
    /// Abstract work operations.
    pub ops: u64,
}

impl CountingModel {
    /// Fresh, all-zero counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes moved in either direction — the paper's "I/O" metric.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &CountingModel) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.ops += other.ops;
    }
}

impl MemModel for CountingModel {
    #[inline]
    fn read(&mut self, _addr: usize, bytes: usize) {
        self.reads += 1;
        self.bytes_read += bytes as u64;
    }
    #[inline]
    fn write(&mut self, _addr: usize, bytes: usize) {
        self.writes += 1;
        self.bytes_written += bytes as u64;
    }
    #[inline]
    fn op(&mut self, n: u64) {
        self.ops += n;
    }
}

/// Forwards to a mutable reference, so `&mut M` is itself a model. This is
/// what lets a driver thread hand one model to several kernel calls.
impl<M: MemModel> MemModel for &mut M {
    #[inline(always)]
    fn read(&mut self, addr: usize, bytes: usize) {
        (**self).read(addr, bytes);
    }
    #[inline(always)]
    fn write(&mut self, addr: usize, bytes: usize) {
        (**self).write(addr, bytes);
    }
    #[inline(always)]
    fn op(&mut self, n: u64) {
        (**self).op(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_model_tallies() {
        let mut c = CountingModel::new();
        c.read(0x1000, 4);
        c.read(0x1004, 8);
        c.write(0x2000, 12);
        c.op(5);
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.bytes_read, 12);
        assert_eq!(c.bytes_written, 12);
        assert_eq!(c.bytes_total(), 24);
        assert_eq!(c.ops, 5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CountingModel::new();
        a.read(0, 4);
        let mut b = CountingModel::new();
        b.write(0, 8);
        b.op(3);
        a.merge(&b);
        assert_eq!(a.reads, 1);
        assert_eq!(a.writes, 1);
        assert_eq!(a.bytes_total(), 12);
        assert_eq!(a.ops, 3);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = CountingModel::new();
        {
            fn takes_model<M: MemModel>(mut m: M) {
                m.read(0, 4);
                m.op(1);
            }
            takes_model(&mut c);
        }
        assert_eq!(c.reads, 1);
        assert_eq!(c.ops, 1);
    }
}
