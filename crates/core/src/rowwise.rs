//! Row-wise (CSR) SpKAdd.
//!
//! §II-A of the paper: "all algorithms discussed in this paper are
//! equally applicable to compressed sparse row (CSR) … formats". This
//! module realizes that claim with zero-copy transpose duality: a CSR
//! matrix *is* the CSC storage of its transpose, so row-wise SpKAdd is
//! column-wise SpKAdd on the re-interpreted storage, and the result is
//! re-interpreted back. No transposition, copying, or sorting happens.

use crate::{spkadd_with, Algorithm, Options, SpkaddError};
use spk_sparse::{CscMatrix, CsrMatrix, Scalar};

/// Adds a collection of CSR matrices row-wise. Costs exactly one
/// column-wise SpKAdd; the inputs are reinterpreted, not converted.
pub fn spkadd_csr<T: Scalar>(
    mats: &[&CsrMatrix<T>],
    alg: Algorithm,
    opts: &Options,
) -> Result<CsrMatrix<T>, SpkaddError> {
    // Reinterpret each CSR matrix as the CSC of its transpose (O(1) per
    // matrix, moves the buffers).
    let as_csc: Vec<CscMatrix<T>> = mats
        .iter()
        .map(|m| (*m).clone().transpose_as_csc())
        .collect();
    let refs: Vec<&CscMatrix<T>> = as_csc.iter().collect();
    let sum_t = spkadd_with(&refs, alg, opts)?;
    // (Σ Aᵢᵀ)ᵀ = Σ Aᵢ; reinterpret the CSC result back as CSR.
    let (nrows_t, ncols_t, colptr, rowidx, values) = sum_t.into_parts();
    Ok(CsrMatrix::from_parts(
        ncols_t, nrows_t, colptr, rowidx, values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spk_sparse::DenseMatrix;

    fn sample_csr(shift: u32) -> CsrMatrix<f64> {
        // 3x4 with one entry per row at column (row + shift) mod 4.
        let rowptr = vec![0, 1, 2, 3];
        let colidx = (0..3u32).map(|r| (r + shift) % 4).collect();
        CsrMatrix::try_new(3, 4, rowptr, colidx, vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn csr_sum_matches_dense_oracle() {
        let mats: Vec<CsrMatrix<f64>> = (0..4).map(sample_csr).collect();
        let refs: Vec<&CsrMatrix<f64>> = mats.iter().collect();
        let sum = spkadd_csr(&refs, Algorithm::Hash, &Options::default()).unwrap();
        assert_eq!(sum.nrows(), 3);
        assert_eq!(sum.ncols(), 4);
        // Dense oracle via the CSC conversions.
        let mut expect = DenseMatrix::zeros(3, 4);
        for m in &mats {
            expect
                .add_assign(&DenseMatrix::from_csc(&m.to_csc()))
                .unwrap();
        }
        let got = DenseMatrix::from_csc(&sum.to_csc());
        assert_eq!(got.max_abs_diff(&expect), 0.0);
    }

    #[test]
    fn csr_and_csc_paths_agree() {
        let mats: Vec<CsrMatrix<f64>> = (0..3).map(sample_csr).collect();
        let refs: Vec<&CsrMatrix<f64>> = mats.iter().collect();
        let via_rows = spkadd_csr(&refs, Algorithm::Heap, &Options::default()).unwrap();
        let as_csc: Vec<CscMatrix<f64>> = mats.iter().map(|m| m.to_csc()).collect();
        let crefs: Vec<&CscMatrix<f64>> = as_csc.iter().collect();
        let via_cols = spkadd_with(&crefs, Algorithm::Heap, &Options::default()).unwrap();
        assert!(via_rows.to_csc().approx_eq(&via_cols, 0.0));
    }

    #[test]
    fn shape_mismatch_propagates() {
        let a = sample_csr(0);
        let b = CsrMatrix::<f64>::try_new(4, 4, vec![0, 0, 0, 0, 0], vec![], vec![]).unwrap();
        assert!(spkadd_csr(&[&a, &b], Algorithm::Hash, &Options::default()).is_err());
    }
}
