//! SpKAdd over doubly-compressed (DCSC) matrices.
//!
//! §II-A of the paper: the algorithms apply to doubly-compressed formats
//! too. For hypersparse operands (`nnz ≪ n`, e.g. the per-process blocks
//! of a large SUMMA grid) the CSC driver would spend O(n) per matrix just
//! walking empty columns; this driver instead merges the k (sorted)
//! non-empty-column lists, visits only the union of occupied columns, and
//! emits a DCSC result. Work is O(Σ nnz + Σ nzc · lg k) — independent of
//! the logical column count.

use crate::hashtab::HashAccumulator;
use crate::mem::NullModel;
use crate::monoid::{Monoid, Plus};
use crate::{Options, SpkaddError};
use spk_sparse::{ColView, DcscMatrix, Element, Scalar, SparseError};

/// Adds a collection of DCSC matrices with the hash kernel, visiting only
/// occupied columns. Output columns are sorted when
/// `opts.sorted_output` is set.
pub fn spkadd_dcsc<T: Scalar>(
    mats: &[&DcscMatrix<T>],
    opts: &Options,
) -> Result<DcscMatrix<T>, SpkaddError> {
    spkadd_dcsc_with(mats, Plus::new(), opts)
}

/// Monoid-generic DCSC SpKAdd — see [`spkadd_dcsc`], which is this with
/// [`Plus`]. A filtering monoid can empty a column entirely, in which
/// case it simply drops out of the (doubly-compressed) output.
pub fn spkadd_dcsc_with<T: Element, O: Monoid<Value = T>>(
    mats: &[&DcscMatrix<T>],
    monoid: O,
    opts: &Options,
) -> Result<DcscMatrix<T>, SpkaddError> {
    let first = mats
        .first()
        .ok_or(SpkaddError::Sparse(SparseError::EmptyCollection))?;
    let shape = (first.nrows(), first.ncols());
    for (i, m) in mats.iter().enumerate().skip(1) {
        if (m.nrows(), m.ncols()) != shape {
            return Err(SpkaddError::Sparse(SparseError::DimensionMismatch {
                expected: shape,
                found: (m.nrows(), m.ncols()),
                operand: i,
            }));
        }
    }

    // Union of occupied columns: k-way merge of the sorted jc lists.
    let mut union_cols: Vec<u32> = Vec::new();
    {
        let mut cursors: Vec<std::iter::Peekable<_>> = mats
            .iter()
            .map(|m| m.iter_cols().map(|(j, _, _)| j).peekable())
            .collect();
        loop {
            let mut min: Option<u32> = None;
            for c in &mut cursors {
                if let Some(&j) = c.peek() {
                    min = Some(min.map_or(j, |m: u32| m.min(j)));
                }
            }
            let Some(j) = min else { break };
            for c in &mut cursors {
                while c.peek() == Some(&j) {
                    c.next();
                }
            }
            union_cols.push(j);
        }
    }

    // One hash accumulation per occupied column.
    let mut ht = HashAccumulator::<T>::with_capacity(16);
    let mut mem = NullModel;
    let mut jc = Vec::with_capacity(union_cols.len());
    let mut cp = vec![0usize];
    let mut rowidx: Vec<u32> = Vec::new();
    let mut values: Vec<T> = Vec::new();
    let mut views: Vec<ColView<'_, T>> = Vec::with_capacity(mats.len());
    let mut col_rows: Vec<u32> = Vec::new();
    let mut col_vals: Vec<T> = Vec::new();
    for &j in &union_cols {
        views.clear();
        let mut inz = 0usize;
        for m in mats {
            if let Some((rows, vals)) = m.col(j as usize) {
                inz += rows.len();
                views.push(ColView { rows, vals });
            }
        }
        ht.reserve_for(inz);
        col_rows.resize(inz, 0);
        col_vals.resize(inz, T::default());
        let written = crate::kernels::hash_add_column_with(
            &views,
            &mut ht,
            &mut col_rows,
            &mut col_vals,
            opts.sorted_output,
            monoid,
            &mut mem,
        );
        debug_assert!(
            O::MAY_FILTER || written > 0,
            "union column {j} cannot be empty"
        );
        if written == 0 {
            continue;
        }
        jc.push(j);
        rowidx.extend_from_slice(&col_rows[..written]);
        values.extend_from_slice(&col_vals[..written]);
        cp.push(rowidx.len());
    }
    DcscMatrix::try_new(shape.0, shape.1, jc, cp, rowidx, values).map_err(SpkaddError::Sparse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spkadd_with, Algorithm};
    use spk_sparse::CscMatrix;

    fn hypersparse(n: usize, occupied: &[(u32, u32, f64)]) -> DcscMatrix<f64> {
        let mut coo = spk_sparse::CooMatrix::new(64, n);
        for &(r, c, v) in occupied {
            coo.push(r, c, v);
        }
        DcscMatrix::from_csc(&coo.to_csc_sum_duplicates())
    }

    #[test]
    fn matches_csc_spkadd() {
        let a = hypersparse(1000, &[(1, 7, 1.0), (5, 500, 2.0)]);
        let b = hypersparse(1000, &[(1, 7, 10.0), (9, 999, 3.0)]);
        let c = hypersparse(1000, &[(0, 0, 4.0)]);
        let sum = spkadd_dcsc(&[&a, &b, &c], &Options::default()).unwrap();
        assert_eq!(sum.nzc(), 4, "columns 0, 7, 500, 999");
        // Oracle via CSC.
        let csc: Vec<CscMatrix<f64>> = [&a, &b, &c].iter().map(|m| m.to_csc()).collect();
        let refs: Vec<&CscMatrix<f64>> = csc.iter().collect();
        let expect = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        assert!(sum.to_csc().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn overlapping_and_disjoint_columns() {
        let a = hypersparse(100, &[(0, 1, 1.0), (1, 1, 1.0)]);
        let b = hypersparse(100, &[(0, 1, 1.0), (2, 50, 5.0)]);
        let sum = spkadd_dcsc(&[&a, &b], &Options::default()).unwrap();
        assert_eq!(sum.nzc(), 2);
        let (rows, vals) = sum.col(1).unwrap();
        assert_eq!(rows, &[0, 1]);
        assert_eq!(vals, &[2.0, 1.0]);
        assert_eq!(sum.col(50).unwrap().0, &[2]);
    }

    #[test]
    fn shape_checks() {
        let a = hypersparse(10, &[(0, 1, 1.0)]);
        let b = hypersparse(11, &[(0, 1, 1.0)]);
        assert!(spkadd_dcsc(&[&a, &b], &Options::default()).is_err());
        let empty: [&DcscMatrix<f64>; 0] = [];
        assert!(spkadd_dcsc(&empty, &Options::default()).is_err());
    }

    #[test]
    fn all_empty_inputs_produce_empty_dcsc() {
        let z = DcscMatrix::from_csc(&CscMatrix::<f64>::zeros(8, 8));
        let sum = spkadd_dcsc(&[&z, &z], &Options::default()).unwrap();
        assert_eq!(sum.nnz(), 0);
        assert_eq!(sum.nzc(), 0);
    }
}
