//! The parallel k-way numeric driver (Algorithm 2 + §III-A).
//!
//! One code path serves the heap, SPA, hash, and sliding-hash algorithms:
//! the symbolic phase has already produced per-column output sizes, so the
//! driver prefix-sums them into the output column pointer, splits the
//! output arrays into per-task disjoint windows (no synchronization), and
//! runs the chosen column kernel over weight-balanced column ranges with
//! thread-private workspaces.

use crate::hashtab::HashAccumulator;
use crate::heap::KwayHeap;
use crate::kernels::{hash_add_column, heap_add_column, spa_add_column};
use crate::mem::NullModel;
use crate::parallel::{exclusive_prefix_sum, plan_ranges, split_output};
use crate::sliding::{sliding_add_column, SlidingScratch};
use crate::spa::{sliding_spa_add_column, Spa};
use crate::symbolic::DriverCtx;
use rayon::prelude::*;
use spk_sparse::{ColView, CscMatrix, Scalar};

/// Which column kernel the numeric phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NumericKernel {
    Hash,
    SlidingHash,
    Spa,
    SlidingSpa,
    Heap,
}

/// Runs the numeric phase. `counts[j]` must be an exact size or an upper
/// bound for `nnz(B(:,j))`; when it is only an upper bound
/// (`exact = false`) the result is compacted afterwards.
pub(crate) fn kway_numeric<T: Scalar>(
    mats: &[&CscMatrix<T>],
    counts: &[usize],
    exact: bool,
    kernel: NumericKernel,
    ctx: &DriverCtx,
) -> CscMatrix<T> {
    let n = mats[0].ncols();
    let m = mats[0].nrows();
    let k = mats.len();
    debug_assert_eq!(counts.len(), n);

    let colptr = exclusive_prefix_sum(counts);
    let nnz_alloc = *colptr.last().unwrap();
    let mut rowidx = vec![0u32; nnz_alloc];
    let mut values = vec![T::default(); nnz_alloc];

    // Numeric-phase load balancing uses output nonzeros per column (§III-A).
    let ranges = plan_ranges(counts, 0, ctx.sched);
    let chunks = split_output(&colptr, &ranges, &mut rowidx, &mut values);

    // Per-task actual counts (differ from `counts` when inexact).
    let mut actual = vec![0usize; n];
    let mut actual_parts: Vec<&mut [usize]> = Vec::with_capacity(ranges.len());
    {
        let mut rest = actual.as_mut_slice();
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            actual_parts.push(head);
            rest = tail;
        }
    }

    // Thread-private workspaces (§III-A): one per worker, reused across
    // all chunks that worker steals, so the SPA's O(m) array and the hash
    // tables are allocated T times — not once per chunk.
    let nthreads = rayon::current_num_threads().max(1);
    let ws_pool: Vec<std::sync::Mutex<Option<Workspace<T>>>> =
        (0..nthreads).map(|_| std::sync::Mutex::new(None)).collect();

    chunks
        .into_par_iter()
        .zip(actual_parts.into_par_iter())
        .for_each(|(chunk, actual_out)| {
            let mut views: Vec<ColView<'_, T>> = Vec::with_capacity(k);
            let mut mem = NullModel;
            let tid = rayon::current_thread_index().unwrap_or(0) % nthreads;
            let mut ws_guard = ws_pool[tid].lock().expect("workspace mutex poisoned");
            let ws =
                ws_guard.get_or_insert_with(|| Workspace::<T>::new(kernel, m, k, ctx.budget_add));
            for (slot, j) in chunk.cols.clone().enumerate() {
                views.clear();
                views.extend(mats.iter().map(|a| a.col(j)));
                let lo = colptr[j] - chunk.base;
                let hi = colptr[j + 1] - chunk.base;
                let out_rows = &mut chunk.rows[lo..hi];
                let out_vals = &mut chunk.vals[lo..hi];
                let written = match &mut *ws {
                    Workspace::Hash(ht) => {
                        ht.reserve_for(hi - lo);
                        hash_add_column(&views, ht, out_rows, out_vals, ctx.sorted_output, &mut mem)
                    }
                    Workspace::Sliding { ht, scratch } => sliding_add_column(
                        &views,
                        m,
                        ctx.budget_add,
                        hi - lo,
                        ht,
                        out_rows,
                        out_vals,
                        ctx.sorted_output,
                        ctx.inputs_sorted,
                        scratch,
                        &mut mem,
                    ),
                    Workspace::Spa(spa) => {
                        spa_add_column(&views, spa, out_rows, out_vals, ctx.sorted_output, &mut mem)
                    }
                    Workspace::SlidingSpa { spa, scratch } => sliding_spa_add_column(
                        &views,
                        m,
                        ctx.budget_add,
                        spa,
                        out_rows,
                        out_vals,
                        ctx.sorted_output,
                        ctx.inputs_sorted,
                        scratch,
                        &mut mem,
                    ),
                    Workspace::Heap(heap) => {
                        heap_add_column(&views, heap, out_rows, out_vals, &mut mem)
                    }
                };
                debug_assert!(written <= hi - lo);
                debug_assert!(!exact || written == hi - lo);
                actual_out[slot] = written;
            }
        });

    if exact {
        CscMatrix::from_parts(m, n, colptr, rowidx, values)
    } else {
        compact(m, n, &colptr, &actual, rowidx, values)
    }
}

/// Thread-private kernel state, sized per the paper's Table I memory rows:
/// heap O(k), SPA O(m), hash O(max column output), sliding O(budget).
enum Workspace<T> {
    Hash(HashAccumulator<T>),
    Sliding {
        ht: HashAccumulator<T>,
        scratch: SlidingScratch<T>,
    },
    Spa(Spa<T>),
    SlidingSpa {
        spa: Spa<T>,
        scratch: SlidingScratch<T>,
    },
    Heap(KwayHeap<T>),
}

impl<T: Scalar> Workspace<T> {
    fn new(kernel: NumericKernel, m: usize, k: usize, budget_rows: usize) -> Self {
        match kernel {
            NumericKernel::Hash => Workspace::Hash(HashAccumulator::with_capacity(16)),
            NumericKernel::SlidingHash => Workspace::Sliding {
                ht: HashAccumulator::with_capacity(16),
                scratch: SlidingScratch::new(),
            },
            NumericKernel::Spa => Workspace::Spa(Spa::new(m)),
            // The sliding SPA covers one cache-resident row panel at a
            // time (the §IV-B(b) extension).
            NumericKernel::SlidingSpa => Workspace::SlidingSpa {
                spa: Spa::new(m.min(budget_rows.max(1))),
                scratch: SlidingScratch::new(),
            },
            NumericKernel::Heap => Workspace::Heap(KwayHeap::new(k)),
        }
    }
}

/// Squeezes out the per-column slack left by an upper-bound allocation.
fn compact<T: Scalar>(
    m: usize,
    n: usize,
    alloc_colptr: &[usize],
    actual: &[usize],
    rowidx: Vec<u32>,
    values: Vec<T>,
) -> CscMatrix<T> {
    let colptr = exclusive_prefix_sum(actual);
    let nnz = *colptr.last().unwrap();
    let mut new_rows = vec![0u32; nnz];
    let mut new_vals = vec![T::default(); nnz];
    for j in 0..n {
        let src = alloc_colptr[j];
        let dst = colptr[j];
        let len = actual[j];
        new_rows[dst..dst + len].copy_from_slice(&rowidx[src..src + len]);
        new_vals[dst..dst + len].copy_from_slice(&values[src..src + len]);
    }
    CscMatrix::from_parts(m, n, colptr, new_rows, new_vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::Scheduling;
    use crate::symbolic::{symbolic_counts, SymbolicStrategy};
    use spk_sparse::DenseMatrix;

    fn ctx() -> DriverCtx {
        DriverCtx {
            sched: Scheduling::default(),
            budget_sym: 1 << 20,
            budget_add: 1 << 20,
            inputs_sorted: true,
            sorted_output: true,
        }
    }

    fn inputs() -> Vec<CscMatrix<f64>> {
        let a = CscMatrix::try_new(
            8,
            3,
            vec![0, 3, 3, 5],
            vec![1, 3, 6, 0, 4],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        let b = CscMatrix::try_new(
            8,
            3,
            vec![0, 2, 3, 5],
            vec![3, 7, 2, 0, 4],
            vec![10.0, 20.0, 30.0, 40.0, 50.0],
        )
        .unwrap();
        let c = CscMatrix::try_new(8, 3, vec![0, 1, 1, 1], vec![1], vec![100.0]).unwrap();
        vec![a, b, c]
    }

    fn oracle(mats: &[&CscMatrix<f64>]) -> DenseMatrix<f64> {
        let mut acc = DenseMatrix::zeros(mats[0].nrows(), mats[0].ncols());
        for m in mats {
            acc.add_assign(&DenseMatrix::from_csc(m)).unwrap();
        }
        acc
    }

    #[test]
    fn all_kernels_match_dense_oracle() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let c = ctx();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c);
        let expect = oracle(&refs);
        for kernel in [
            NumericKernel::Hash,
            NumericKernel::SlidingHash,
            NumericKernel::Spa,
            NumericKernel::Heap,
        ] {
            let out = kway_numeric(&refs, &counts, true, kernel, &c);
            assert_eq!(
                DenseMatrix::from_csc(&out).max_abs_diff(&expect),
                0.0,
                "{kernel:?} wrong"
            );
            assert!(out.is_sorted(), "{kernel:?} must emit sorted columns");
            assert_eq!(out.nnz(), counts.iter().sum::<usize>());
        }
    }

    #[test]
    fn upper_bound_path_compacts() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let c = ctx();
        let upper = symbolic_counts(&refs, SymbolicStrategy::UpperBound, &c);
        let exact = symbolic_counts(&refs, SymbolicStrategy::Hash, &c);
        let out = kway_numeric(&refs, &upper, false, NumericKernel::Hash, &c);
        assert_eq!(out.nnz(), exact.iter().sum::<usize>());
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&oracle(&refs)),
            0.0
        );
    }

    #[test]
    fn unsorted_output_mode_still_correct() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut c = ctx();
        c.sorted_output = false;
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c);
        let out = kway_numeric(&refs, &counts, true, NumericKernel::Hash, &c);
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&oracle(&refs)),
            0.0
        );
    }

    #[test]
    fn sliding_with_tiny_budget_matches() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut c = ctx();
        c.budget_add = 16;
        c.budget_sym = 16;
        let counts = symbolic_counts(&refs, SymbolicStrategy::SlidingHash, &c);
        let out = kway_numeric(&refs, &counts, true, NumericKernel::SlidingHash, &c);
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&oracle(&refs)),
            0.0
        );
        assert!(out.is_sorted());
    }

    #[test]
    fn static_scheduling_matches_dynamic() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut c = ctx();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c);
        let dynamic = kway_numeric(&refs, &counts, true, NumericKernel::Hash, &c);
        c.sched = Scheduling::Static;
        let stat = kway_numeric(&refs, &counts, true, NumericKernel::Hash, &c);
        assert!(dynamic.approx_eq(&stat, 0.0));
    }
}
