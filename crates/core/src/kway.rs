//! The parallel k-way numeric driver (Algorithm 2 + §III-A).
//!
//! One code path serves the heap, SPA, hash, and sliding-hash algorithms:
//! the symbolic phase has already produced per-column output sizes, so the
//! driver prefix-sums them into the output column pointer, splits the
//! output arrays into per-task disjoint windows (no synchronization), and
//! runs the chosen column kernel over weight-balanced column ranges with
//! thread-private workspaces **borrowed from the caller's
//! [`WorkspacePool`]** — a plan executed repeatedly reuses its tables,
//! SPA panels, and heap buffers instead of reallocating them per call.

use crate::kernels::{
    hash_add_column_with, hash_numeric_only_column, heap_add_column_with, spa_add_column_with,
    spa_numeric_only_column,
};
use crate::mem::NullModel;
use crate::monoid::Monoid;
use crate::parallel::{exclusive_prefix_sum, exclusive_prefix_sum_into, plan_ranges, split_output};
use crate::pattern::Pattern;
use crate::sliding::sliding_add_column_with;
use crate::spa::sliding_spa_add_column_with;
use crate::symbolic::DriverCtx;
use crate::tuning::{ChunkProfile, ChunkScorer};
use crate::workspace::WorkspacePool;
use rayon::prelude::*;
use spk_sparse::{ColView, CscMatrix, Element};
use std::ops::Range;
use std::sync::Arc;

/// Which column kernel the numeric phase runs for a chunk — the five
/// k-way column families (the 2-way/library folds never reach the k-way
/// driver). [`crate::ExecuteStats::kernel_counts`] reports how many
/// chunks each kernel materialized in one execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumericKernel {
    /// Per-column hash table (Algorithms 5/6).
    Hash,
    /// Cache-budgeted sliding hash tables (Algorithms 7/8).
    SlidingHash,
    /// Dense sparse accumulator (Algorithm 4).
    Spa,
    /// Row-partitioned cache-resident SPA panels (§IV-B(b) extension).
    SlidingSpa,
    /// O(k)-state streaming merge heap (Algorithm 3; sorted inputs only).
    Heap,
}

impl NumericKernel {
    /// Number of kernel variants (the length of [`NumericKernel::ALL`]).
    pub const COUNT: usize = 5;

    /// Every kernel, in the order [`KernelCounts`] reports them.
    pub const ALL: [NumericKernel; Self::COUNT] = [
        NumericKernel::Hash,
        NumericKernel::SlidingHash,
        NumericKernel::Spa,
        NumericKernel::SlidingSpa,
        NumericKernel::Heap,
    ];

    /// Stable kebab-case token (matches the corresponding
    /// [`crate::Algorithm::token`] spelling).
    pub fn token(&self) -> &'static str {
        match self {
            NumericKernel::Hash => "hash",
            NumericKernel::SlidingHash => "sliding-hash",
            NumericKernel::Spa => "spa",
            NumericKernel::SlidingSpa => "sliding-spa",
            NumericKernel::Heap => "heap",
        }
    }

    /// Static span-trace event name (`kway.dispatch.<kernel>`).
    pub(crate) fn event_name(self) -> &'static str {
        match self {
            NumericKernel::Hash => "kway.dispatch.hash",
            NumericKernel::SlidingHash => "kway.dispatch.sliding-hash",
            NumericKernel::Spa => "kway.dispatch.spa",
            NumericKernel::SlidingSpa => "kway.dispatch.sliding-spa",
            NumericKernel::Heap => "kway.dispatch.heap",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            NumericKernel::Hash => 0,
            NumericKernel::SlidingHash => 1,
            NumericKernel::Spa => 2,
            NumericKernel::SlidingSpa => 3,
            NumericKernel::Heap => 4,
        }
    }
}

impl std::fmt::Display for NumericKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// Per-kernel chunk histogram of one (or an aggregation of) execution(s):
/// how many column chunks each [`NumericKernel`] materialized. A fixed
/// `Copy` array so [`crate::ExecuteStats`] stays `Copy`.
///
/// Displays as the nonzero entries in [`NumericKernel::ALL`] order, e.g.
/// `spa=12 hash=3 heap=1` (`-` when empty — a 2-way/library execution
/// that never entered the k-way driver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelCounts {
    counts: [u64; NumericKernel::COUNT],
}

impl KernelCounts {
    /// Records one chunk dispatched to `kernel`.
    pub fn record(&mut self, kernel: NumericKernel) {
        self.counts[kernel.index()] += 1;
    }

    /// Records `chunks` chunks dispatched to `kernel` (bulk form of
    /// [`record`](Self::record), for rebuilding a histogram from
    /// externally maintained counters).
    pub fn add(&mut self, kernel: NumericKernel, chunks: u64) {
        self.counts[kernel.index()] += chunks;
    }

    /// Chunks dispatched to `kernel`.
    pub fn get(&self, kernel: NumericKernel) -> u64 {
        self.counts[kernel.index()]
    }

    /// Total chunks across all kernels.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// How many distinct kernels ran (≥ 2 means the execution actually
    /// mixed kernels — the adaptive driver's reason to exist).
    pub fn distinct(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// `true` when nothing was recorded (no k-way numeric phase ran).
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Accumulates another histogram (streaming/server aggregation).
    pub fn merge(&mut self, other: &KernelCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    /// The nonzero `(kernel, chunks)` pairs in [`NumericKernel::ALL`]
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (NumericKernel, u64)> + '_ {
        NumericKernel::ALL
            .into_iter()
            .map(|k| (k, self.get(k)))
            .filter(|&(_, c)| c > 0)
    }

    /// Histogram of a per-chunk decision vector.
    pub(crate) fn from_decisions(decisions: &[NumericKernel]) -> Self {
        let mut counts = Self::default();
        for &d in decisions {
            counts.record(d);
        }
        counts
    }
}

impl std::fmt::Display for KernelCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("-");
        }
        let mut first = true;
        for (kernel, count) in self.iter() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{kernel}={count}")?;
            first = false;
        }
        Ok(())
    }
}

/// How the numeric driver assigns kernels to chunks.
#[derive(Debug, Clone)]
pub(crate) enum KernelDispatch {
    /// Every chunk runs one kernel — a forced algorithm, or `Auto` with
    /// adaptivity disabled.
    Fixed(NumericKernel),
    /// Score each chunk's profile and pick per chunk (`Auto`, adaptive).
    Adaptive(ChunkScorer),
    /// A pattern-cache hit replays the decisions memoized alongside the
    /// structure (same pattern ⇒ same counts ⇒ same chunking ⇒ the same
    /// scores — so warm hits skip scoring too). Falls back to rescoring
    /// if the chunk count ever disagrees.
    Memoized {
        decisions: Arc<Vec<NumericKernel>>,
        scorer: ChunkScorer,
    },
}

/// Profiles one chunk from data the symbolic phase already fixed: the
/// output `colptr` bounds give `nnz_out`; each input's `colptr` window
/// gives its local nnz (and thereby `k_eff` and the compression ratio) —
/// O(k) per chunk, no per-entry work.
pub(crate) fn chunk_profile<T: Element>(
    mats: &[&CscMatrix<T>],
    out_colptr: &[usize],
    range: &Range<usize>,
) -> ChunkProfile {
    let nnz_out = out_colptr[range.end] - out_colptr[range.start];
    let mut nnz_in = 0usize;
    let mut k_eff = 0usize;
    for a in mats {
        let cp = a.colptr();
        let local = cp[range.end] - cp[range.start];
        nnz_in += local;
        k_eff += usize::from(local > 0);
    }
    ChunkProfile {
        cols: range.len(),
        k: mats.len(),
        k_eff,
        nnz_in,
        nnz_out,
    }
}

/// Resolves a dispatch policy into one kernel per chunk. Scoring is a
/// serial O(ranges · k) sweep over column-pointer windows — negligible
/// next to the numeric phase, and deterministic, so reruns (and memoized
/// replays) always agree.
fn decide_kernels<T: Element>(
    mats: &[&CscMatrix<T>],
    out_colptr: &[usize],
    ranges: &[Range<usize>],
    dispatch: &KernelDispatch,
) -> Vec<NumericKernel> {
    let score = |scorer: &ChunkScorer| {
        ranges
            .iter()
            .map(|r| scorer.choose(&chunk_profile(mats, out_colptr, r)))
            .collect()
    };
    let chosen = match dispatch {
        KernelDispatch::Fixed(kernel) => vec![*kernel; ranges.len()],
        KernelDispatch::Adaptive(scorer) => score(scorer),
        KernelDispatch::Memoized { decisions, scorer } => {
            if decisions.len() == ranges.len() {
                decisions.as_ref().clone()
            } else {
                score(scorer)
            }
        }
    };
    // One trace event per chunk-level dispatch decision; a single
    // relaxed load when tracing is off (O(chunks), not O(entries)).
    if spk_obs::tracing_enabled() {
        for &kernel in &chosen {
            spk_obs::event!(kernel.event_name());
        }
    }
    chosen
}

/// Output buffers recycled from a previous result (`execute_into`): the
/// vectors are cleared and refilled, so their capacity is reused when the
/// steady-state output shape repeats. `Default` yields fresh buffers.
#[derive(Debug, Default)]
pub(crate) struct RecycledBufs<T> {
    pub colptr: Vec<usize>,
    pub rows: Vec<u32>,
    pub vals: Vec<T>,
}

impl<T: Element> RecycledBufs<T> {
    /// Reclaims the buffers of an existing matrix (its contents are
    /// discarded, its allocations kept).
    pub fn from_matrix(m: CscMatrix<T>) -> Self {
        let (_, _, colptr, rows, vals) = m.into_parts();
        Self { colptr, rows, vals }
    }
}

/// Runs the numeric phase. `counts[j]` must be an exact size or an upper
/// bound for `nnz(B(:,j))`; when it is only an upper bound
/// (`exact = false`) the result is compacted afterwards. A filtering
/// monoid demotes every count to an upper bound — the symbolic phase is
/// value-free and cannot predict what `keep` will drop.
///
/// Returns the output and the per-chunk kernel decisions (one entry per
/// weight-balanced range, in range order) — a constant vector under
/// [`KernelDispatch::Fixed`], the scored mix under adaptive dispatch.
/// Every kernel folds duplicates in matrix order and fills the same
/// per-column windows, so the decisions change *how* each chunk is
/// materialized, never its bits.
#[allow(clippy::too_many_arguments)]
pub(crate) fn kway_numeric<T: Element, O: Monoid<Value = T>>(
    mats: &[&CscMatrix<T>],
    counts: &[usize],
    exact: bool,
    dispatch: &KernelDispatch,
    monoid: O,
    ctx: &DriverCtx,
    pool: &WorkspacePool<T>,
    recycle: RecycledBufs<T>,
) -> (CscMatrix<T>, Vec<NumericKernel>) {
    let exact = exact && !O::MAY_FILTER;
    let n = mats[0].ncols();
    let m = mats[0].nrows();
    let k = mats.len();
    debug_assert_eq!(counts.len(), n);

    let RecycledBufs {
        mut colptr,
        rows: mut rowidx,
        vals: mut values,
    } = recycle;
    exclusive_prefix_sum_into(counts, &mut colptr);
    let nnz_alloc = *colptr.last().unwrap();
    rowidx.clear();
    rowidx.resize(nnz_alloc, 0u32);
    values.clear();
    values.resize(nnz_alloc, T::default());

    // Numeric-phase load balancing uses output nonzeros per column (§III-A).
    let ranges = plan_ranges(counts, 0, ctx.sched);
    // Kernel-per-chunk decisions come from structure the symbolic phase
    // already fixed, before any value is touched.
    let decisions = decide_kernels(mats, &colptr, &ranges, dispatch);
    let chunks = split_output(&colptr, &ranges, &mut rowidx, &mut values);

    // Per-task actual counts (differ from `counts` when inexact).
    let mut actual = vec![0usize; n];
    let mut actual_parts: Vec<&mut [usize]> = Vec::with_capacity(ranges.len());
    {
        let mut rest = actual.as_mut_slice();
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            actual_parts.push(head);
            rest = tail;
        }
    }

    chunks
        .into_par_iter()
        .zip(actual_parts.into_par_iter())
        .zip(decisions.clone().into_par_iter())
        .for_each(|((chunk, actual_out), kernel)| {
            let mut views: Vec<ColView<'_, T>> = Vec::with_capacity(k);
            let mut mem = NullModel;
            // Thread-private workspaces (§III-A): one per worker, reused
            // across all chunks that worker steals — and across plan
            // executions, because the pool outlives this call. Under
            // adaptive dispatch one worker may serve several kernel
            // families; the pool's components are lazy, so only the
            // families actually dispatched get built.
            let mut ws = pool.for_current_thread();
            for (slot, j) in chunk.cols.clone().enumerate() {
                views.clear();
                views.extend(mats.iter().map(|a| a.col(j)));
                let lo = colptr[j] - chunk.base;
                let hi = colptr[j + 1] - chunk.base;
                let out_rows = &mut chunk.rows[lo..hi];
                let out_vals = &mut chunk.vals[lo..hi];
                let written = match kernel {
                    NumericKernel::Hash => {
                        let ht = ws.hash();
                        ht.reserve_for(hi - lo);
                        hash_add_column_with(
                            &views,
                            ht,
                            out_rows,
                            out_vals,
                            ctx.sorted_output,
                            monoid,
                            &mut mem,
                        )
                    }
                    NumericKernel::SlidingHash => {
                        let (ht, scratch) = ws.hash_and_scratch();
                        sliding_add_column_with(
                            &views,
                            m,
                            ctx.budget_add,
                            hi - lo,
                            ht,
                            out_rows,
                            out_vals,
                            ctx.sorted_output,
                            ctx.inputs_sorted,
                            monoid,
                            scratch,
                            &mut mem,
                        )
                    }
                    NumericKernel::Spa => spa_add_column_with(
                        &views,
                        ws.spa(m),
                        out_rows,
                        out_vals,
                        ctx.sorted_output,
                        monoid,
                        &mut mem,
                    ),
                    NumericKernel::SlidingSpa => {
                        // One cache-resident row panel at a time (the
                        // §IV-B(b) extension).
                        let (spa, scratch) = ws.spa_and_scratch(m.min(ctx.budget_add.max(1)));
                        sliding_spa_add_column_with(
                            &views,
                            m,
                            ctx.budget_add,
                            spa,
                            out_rows,
                            out_vals,
                            ctx.sorted_output,
                            ctx.inputs_sorted,
                            monoid,
                            scratch,
                            &mut mem,
                        )
                    }
                    NumericKernel::Heap => heap_add_column_with(
                        &views,
                        ws.heap(k),
                        out_rows,
                        out_vals,
                        monoid,
                        &mut mem,
                    ),
                };
                debug_assert!(written <= hi - lo);
                debug_assert!(!exact || written == hi - lo);
                actual_out[slot] = written;
            }
        });

    let out = if exact {
        CscMatrix::from_parts(m, n, colptr, rowidx, values)
    } else {
        compact(m, n, &colptr, &actual, rowidx, values)
    };
    (out, decisions)
}

/// Numeric-only driver for a pattern-cache hit: the output structure is
/// already known, so the symbolic phase is skipped entirely — the cached
/// `colptr`/`rowidx` are copied into the (recycled) output buffers and
/// only values are computed. The hash and SPA kernels additionally skip
/// their per-column output sort via [`HashAccumulator::gather_reset`] /
/// [`Spa::gather_reset`] (the row order is the cached one); the heap and
/// sliding kernels run their normal numeric pass into the exact
/// per-column windows, overwriting the pre-copied rows with identical
/// values.
///
/// Only reached for non-filtering monoids (a filtering monoid's output
/// structure is value-dependent, so the plan layer bypasses the cache),
/// which also means every cached count is exact — no compaction pass.
///
/// [`HashAccumulator::gather_reset`]: crate::hashtab::HashAccumulator::gather_reset
/// [`Spa::gather_reset`]: crate::spa::Spa::gather_reset
#[allow(clippy::too_many_arguments)]
pub(crate) fn kway_numeric_cached<T: Element, O: Monoid<Value = T>>(
    mats: &[&CscMatrix<T>],
    pattern: &Pattern,
    dispatch: &KernelDispatch,
    monoid: O,
    ctx: &DriverCtx,
    pool: &WorkspacePool<T>,
    recycle: RecycledBufs<T>,
) -> (CscMatrix<T>, Vec<NumericKernel>) {
    debug_assert!(!O::MAY_FILTER, "filtering monoids must bypass the cache");
    let n = mats[0].ncols();
    let m = mats[0].nrows();
    let k = mats.len();
    debug_assert_eq!(pattern.colptr.len(), n + 1);

    let RecycledBufs {
        mut colptr,
        rows: mut rowidx,
        vals: mut values,
    } = recycle;
    colptr.clear();
    colptr.extend_from_slice(&pattern.colptr);
    let nnz = *colptr.last().unwrap();
    rowidx.clear();
    rowidx.extend_from_slice(&pattern.rowidx);
    values.clear();
    values.resize(nnz, T::default());

    let counts: Vec<usize> = colptr.windows(2).map(|w| w[1] - w[0]).collect();
    let ranges = plan_ranges(&counts, 0, ctx.sched);
    // A memoized dispatch replays the cold run's per-chunk decisions;
    // the identical counts reproduce the identical ranges, so no chunk
    // is ever rescored on the warm path.
    let decisions = decide_kernels(mats, &colptr, &ranges, dispatch);
    let chunks = split_output(&colptr, &ranges, &mut rowidx, &mut values);

    chunks
        .into_par_iter()
        .zip(decisions.clone().into_par_iter())
        .for_each(|(chunk, kernel)| {
            let mut views: Vec<ColView<'_, T>> = Vec::with_capacity(k);
            let mut mem = NullModel;
            let mut ws = pool.for_current_thread();
            for j in chunk.cols.clone() {
                views.clear();
                views.extend(mats.iter().map(|a| a.col(j)));
                let lo = colptr[j] - chunk.base;
                let hi = colptr[j + 1] - chunk.base;
                let out_rows = &mut chunk.rows[lo..hi];
                let out_vals = &mut chunk.vals[lo..hi];
                match kernel {
                    NumericKernel::Hash => {
                        let ht = ws.hash();
                        ht.reserve_for(hi - lo);
                        hash_numeric_only_column(&views, ht, out_rows, out_vals, monoid, &mut mem);
                    }
                    NumericKernel::Spa => spa_numeric_only_column(
                        &views,
                        ws.spa(m),
                        out_rows,
                        out_vals,
                        monoid,
                        &mut mem,
                    ),
                    // The sliding and heap kernels emit rows themselves; with
                    // exact cached counts they rewrite the pre-copied rows
                    // with the same content, so only the symbolic skip (the
                    // full-input sweep) is saved for these families.
                    NumericKernel::SlidingHash => {
                        let (ht, scratch) = ws.hash_and_scratch();
                        let written = sliding_add_column_with(
                            &views,
                            m,
                            ctx.budget_add,
                            hi - lo,
                            ht,
                            out_rows,
                            out_vals,
                            ctx.sorted_output,
                            ctx.inputs_sorted,
                            monoid,
                            scratch,
                            &mut mem,
                        );
                        debug_assert_eq!(written, hi - lo, "cached count mismatch");
                    }
                    NumericKernel::SlidingSpa => {
                        let (spa, scratch) = ws.spa_and_scratch(m.min(ctx.budget_add.max(1)));
                        let written = sliding_spa_add_column_with(
                            &views,
                            m,
                            ctx.budget_add,
                            spa,
                            out_rows,
                            out_vals,
                            ctx.sorted_output,
                            ctx.inputs_sorted,
                            monoid,
                            scratch,
                            &mut mem,
                        );
                        debug_assert_eq!(written, hi - lo, "cached count mismatch");
                    }
                    NumericKernel::Heap => {
                        let written = heap_add_column_with(
                            &views,
                            ws.heap(k),
                            out_rows,
                            out_vals,
                            monoid,
                            &mut mem,
                        );
                        debug_assert_eq!(written, hi - lo, "cached count mismatch");
                    }
                }
            }
        });

    (
        CscMatrix::from_parts(m, n, colptr, rowidx, values),
        decisions,
    )
}

/// Squeezes out the per-column slack left by an upper-bound allocation.
fn compact<T: Element>(
    m: usize,
    n: usize,
    alloc_colptr: &[usize],
    actual: &[usize],
    rowidx: Vec<u32>,
    values: Vec<T>,
) -> CscMatrix<T> {
    let colptr = exclusive_prefix_sum(actual);
    let nnz = *colptr.last().unwrap();
    let mut new_rows = vec![0u32; nnz];
    let mut new_vals = vec![T::default(); nnz];
    for j in 0..n {
        let src = alloc_colptr[j];
        let dst = colptr[j];
        let len = actual[j];
        new_rows[dst..dst + len].copy_from_slice(&rowidx[src..src + len]);
        new_vals[dst..dst + len].copy_from_slice(&values[src..src + len]);
    }
    CscMatrix::from_parts(m, n, colptr, new_rows, new_vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Plus;
    use crate::parallel::Scheduling;
    use crate::symbolic::{symbolic_counts, SymbolicStrategy};
    use spk_sparse::DenseMatrix;

    fn ctx() -> DriverCtx {
        DriverCtx {
            sched: Scheduling::default(),
            budget_sym: 1 << 20,
            budget_add: 1 << 20,
            inputs_sorted: true,
            sorted_output: true,
        }
    }

    fn pool() -> WorkspacePool<f64> {
        WorkspacePool::new(rayon::current_num_threads())
    }

    fn inputs() -> Vec<CscMatrix<f64>> {
        let a = CscMatrix::try_new(
            8,
            3,
            vec![0, 3, 3, 5],
            vec![1, 3, 6, 0, 4],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        let b = CscMatrix::try_new(
            8,
            3,
            vec![0, 2, 3, 5],
            vec![3, 7, 2, 0, 4],
            vec![10.0, 20.0, 30.0, 40.0, 50.0],
        )
        .unwrap();
        let c = CscMatrix::try_new(8, 3, vec![0, 1, 1, 1], vec![1], vec![100.0]).unwrap();
        vec![a, b, c]
    }

    fn oracle(mats: &[&CscMatrix<f64>]) -> DenseMatrix<f64> {
        let mut acc = DenseMatrix::zeros(mats[0].nrows(), mats[0].ncols());
        for m in mats {
            acc.add_assign(&DenseMatrix::from_csc(m)).unwrap();
        }
        acc
    }

    #[test]
    fn all_kernels_match_dense_oracle() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let c = ctx();
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let expect = oracle(&refs);
        for kernel in [
            NumericKernel::Hash,
            NumericKernel::SlidingHash,
            NumericKernel::Spa,
            NumericKernel::Heap,
        ] {
            let (out, decisions) = kway_numeric(
                &refs,
                &counts,
                true,
                &KernelDispatch::Fixed(kernel),
                Plus::new(),
                &c,
                &ws,
                RecycledBufs::default(),
            );
            assert_eq!(
                DenseMatrix::from_csc(&out).max_abs_diff(&expect),
                0.0,
                "{kernel:?} wrong"
            );
            assert!(out.is_sorted(), "{kernel:?} must emit sorted columns");
            assert_eq!(out.nnz(), counts.iter().sum::<usize>());
            assert!(
                decisions.iter().all(|&d| d == kernel),
                "fixed dispatch must not mix kernels"
            );
            assert_eq!(
                KernelCounts::from_decisions(&decisions).total(),
                decisions.len() as u64
            );
        }
    }

    #[test]
    fn upper_bound_path_compacts() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let c = ctx();
        let ws = pool();
        let upper = symbolic_counts(&refs, SymbolicStrategy::UpperBound, &c, &ws);
        let exact = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let (out, _) = kway_numeric(
            &refs,
            &upper,
            false,
            &KernelDispatch::Fixed(NumericKernel::Hash),
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        assert_eq!(out.nnz(), exact.iter().sum::<usize>());
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&oracle(&refs)),
            0.0
        );
    }

    #[test]
    fn unsorted_output_mode_still_correct() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut c = ctx();
        c.sorted_output = false;
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let (out, _) = kway_numeric(
            &refs,
            &counts,
            true,
            &KernelDispatch::Fixed(NumericKernel::Hash),
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&oracle(&refs)),
            0.0
        );
    }

    #[test]
    fn sliding_with_tiny_budget_matches() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut c = ctx();
        c.budget_add = 16;
        c.budget_sym = 16;
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::SlidingHash, &c, &ws);
        let (out, _) = kway_numeric(
            &refs,
            &counts,
            true,
            &KernelDispatch::Fixed(NumericKernel::SlidingHash),
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&oracle(&refs)),
            0.0
        );
        assert!(out.is_sorted());
    }

    #[test]
    fn static_scheduling_matches_dynamic() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut c = ctx();
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let (dynamic, _) = kway_numeric(
            &refs,
            &counts,
            true,
            &KernelDispatch::Fixed(NumericKernel::Hash),
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        c.sched = Scheduling::Static;
        let (stat, _) = kway_numeric(
            &refs,
            &counts,
            true,
            &KernelDispatch::Fixed(NumericKernel::Hash),
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        assert!(dynamic.approx_eq(&stat, 0.0));
    }

    #[test]
    fn adaptive_dispatch_is_bitwise_equal_to_fixed() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let c = ctx();
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let (expect, _) = kway_numeric(
            &refs,
            &counts,
            true,
            &KernelDispatch::Fixed(NumericKernel::Hash),
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        let scorer = ChunkScorer {
            rows: 8,
            entry_bytes: 12,
            threads: 1,
            llc_bytes: 32 << 20,
            heap_allowed: true,
        };
        let (out, decisions) = kway_numeric(
            &refs,
            &counts,
            true,
            &KernelDispatch::Adaptive(scorer),
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        assert_eq!(out, expect);
        assert!(!decisions.is_empty());
        // Replaying the decisions (the warm-hit path's dispatch) agrees.
        let (replay, replay_decisions) = kway_numeric(
            &refs,
            &counts,
            true,
            &KernelDispatch::Memoized {
                decisions: Arc::new(decisions.clone()),
                scorer,
            },
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        assert_eq!(replay, expect);
        assert_eq!(replay_decisions, decisions);
    }

    #[test]
    fn recycled_buffers_are_reused() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let c = ctx();
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let (first, _) = kway_numeric(
            &refs,
            &counts,
            true,
            &KernelDispatch::Fixed(NumericKernel::Hash),
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        let expect = first.clone();
        let (again, _) = kway_numeric(
            &refs,
            &counts,
            true,
            &KernelDispatch::Fixed(NumericKernel::Hash),
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::from_matrix(first),
        );
        assert_eq!(again, expect);
    }
}
