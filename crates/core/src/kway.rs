//! The parallel k-way numeric driver (Algorithm 2 + §III-A).
//!
//! One code path serves the heap, SPA, hash, and sliding-hash algorithms:
//! the symbolic phase has already produced per-column output sizes, so the
//! driver prefix-sums them into the output column pointer, splits the
//! output arrays into per-task disjoint windows (no synchronization), and
//! runs the chosen column kernel over weight-balanced column ranges with
//! thread-private workspaces **borrowed from the caller's
//! [`WorkspacePool`]** — a plan executed repeatedly reuses its tables,
//! SPA panels, and heap buffers instead of reallocating them per call.

use crate::kernels::{
    hash_add_column_with, hash_numeric_only_column, heap_add_column_with, spa_add_column_with,
    spa_numeric_only_column,
};
use crate::mem::NullModel;
use crate::monoid::Monoid;
use crate::parallel::{exclusive_prefix_sum, exclusive_prefix_sum_into, plan_ranges, split_output};
use crate::pattern::Pattern;
use crate::sliding::sliding_add_column_with;
use crate::spa::sliding_spa_add_column_with;
use crate::symbolic::DriverCtx;
use crate::workspace::WorkspacePool;
use rayon::prelude::*;
use spk_sparse::{ColView, CscMatrix, Element};

/// Which column kernel the numeric phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NumericKernel {
    Hash,
    SlidingHash,
    Spa,
    SlidingSpa,
    Heap,
}

/// Output buffers recycled from a previous result (`execute_into`): the
/// vectors are cleared and refilled, so their capacity is reused when the
/// steady-state output shape repeats. `Default` yields fresh buffers.
#[derive(Debug, Default)]
pub(crate) struct RecycledBufs<T> {
    pub colptr: Vec<usize>,
    pub rows: Vec<u32>,
    pub vals: Vec<T>,
}

impl<T: Element> RecycledBufs<T> {
    /// Reclaims the buffers of an existing matrix (its contents are
    /// discarded, its allocations kept).
    pub fn from_matrix(m: CscMatrix<T>) -> Self {
        let (_, _, colptr, rows, vals) = m.into_parts();
        Self { colptr, rows, vals }
    }
}

/// Runs the numeric phase. `counts[j]` must be an exact size or an upper
/// bound for `nnz(B(:,j))`; when it is only an upper bound
/// (`exact = false`) the result is compacted afterwards. A filtering
/// monoid demotes every count to an upper bound — the symbolic phase is
/// value-free and cannot predict what `keep` will drop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn kway_numeric<T: Element, O: Monoid<Value = T>>(
    mats: &[&CscMatrix<T>],
    counts: &[usize],
    exact: bool,
    kernel: NumericKernel,
    monoid: O,
    ctx: &DriverCtx,
    pool: &WorkspacePool<T>,
    recycle: RecycledBufs<T>,
) -> CscMatrix<T> {
    let exact = exact && !O::MAY_FILTER;
    let n = mats[0].ncols();
    let m = mats[0].nrows();
    let k = mats.len();
    debug_assert_eq!(counts.len(), n);

    let RecycledBufs {
        mut colptr,
        rows: mut rowidx,
        vals: mut values,
    } = recycle;
    exclusive_prefix_sum_into(counts, &mut colptr);
    let nnz_alloc = *colptr.last().unwrap();
    rowidx.clear();
    rowidx.resize(nnz_alloc, 0u32);
    values.clear();
    values.resize(nnz_alloc, T::default());

    // Numeric-phase load balancing uses output nonzeros per column (§III-A).
    let ranges = plan_ranges(counts, 0, ctx.sched);
    let chunks = split_output(&colptr, &ranges, &mut rowidx, &mut values);

    // Per-task actual counts (differ from `counts` when inexact).
    let mut actual = vec![0usize; n];
    let mut actual_parts: Vec<&mut [usize]> = Vec::with_capacity(ranges.len());
    {
        let mut rest = actual.as_mut_slice();
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            actual_parts.push(head);
            rest = tail;
        }
    }

    chunks
        .into_par_iter()
        .zip(actual_parts.into_par_iter())
        .for_each(|(chunk, actual_out)| {
            let mut views: Vec<ColView<'_, T>> = Vec::with_capacity(k);
            let mut mem = NullModel;
            // Thread-private workspaces (§III-A): one per worker, reused
            // across all chunks that worker steals — and across plan
            // executions, because the pool outlives this call.
            let mut ws = pool.for_current_thread();
            for (slot, j) in chunk.cols.clone().enumerate() {
                views.clear();
                views.extend(mats.iter().map(|a| a.col(j)));
                let lo = colptr[j] - chunk.base;
                let hi = colptr[j + 1] - chunk.base;
                let out_rows = &mut chunk.rows[lo..hi];
                let out_vals = &mut chunk.vals[lo..hi];
                let written = match kernel {
                    NumericKernel::Hash => {
                        let ht = ws.hash();
                        ht.reserve_for(hi - lo);
                        hash_add_column_with(
                            &views,
                            ht,
                            out_rows,
                            out_vals,
                            ctx.sorted_output,
                            monoid,
                            &mut mem,
                        )
                    }
                    NumericKernel::SlidingHash => {
                        let (ht, scratch) = ws.hash_and_scratch();
                        sliding_add_column_with(
                            &views,
                            m,
                            ctx.budget_add,
                            hi - lo,
                            ht,
                            out_rows,
                            out_vals,
                            ctx.sorted_output,
                            ctx.inputs_sorted,
                            monoid,
                            scratch,
                            &mut mem,
                        )
                    }
                    NumericKernel::Spa => spa_add_column_with(
                        &views,
                        ws.spa(m),
                        out_rows,
                        out_vals,
                        ctx.sorted_output,
                        monoid,
                        &mut mem,
                    ),
                    NumericKernel::SlidingSpa => {
                        // One cache-resident row panel at a time (the
                        // §IV-B(b) extension).
                        let (spa, scratch) = ws.spa_and_scratch(m.min(ctx.budget_add.max(1)));
                        sliding_spa_add_column_with(
                            &views,
                            m,
                            ctx.budget_add,
                            spa,
                            out_rows,
                            out_vals,
                            ctx.sorted_output,
                            ctx.inputs_sorted,
                            monoid,
                            scratch,
                            &mut mem,
                        )
                    }
                    NumericKernel::Heap => heap_add_column_with(
                        &views,
                        ws.heap(k),
                        out_rows,
                        out_vals,
                        monoid,
                        &mut mem,
                    ),
                };
                debug_assert!(written <= hi - lo);
                debug_assert!(!exact || written == hi - lo);
                actual_out[slot] = written;
            }
        });

    if exact {
        CscMatrix::from_parts(m, n, colptr, rowidx, values)
    } else {
        compact(m, n, &colptr, &actual, rowidx, values)
    }
}

/// Numeric-only driver for a pattern-cache hit: the output structure is
/// already known, so the symbolic phase is skipped entirely — the cached
/// `colptr`/`rowidx` are copied into the (recycled) output buffers and
/// only values are computed. The hash and SPA kernels additionally skip
/// their per-column output sort via [`HashAccumulator::gather_reset`] /
/// [`Spa::gather_reset`] (the row order is the cached one); the heap and
/// sliding kernels run their normal numeric pass into the exact
/// per-column windows, overwriting the pre-copied rows with identical
/// values.
///
/// Only reached for non-filtering monoids (a filtering monoid's output
/// structure is value-dependent, so the plan layer bypasses the cache),
/// which also means every cached count is exact — no compaction pass.
///
/// [`HashAccumulator::gather_reset`]: crate::hashtab::HashAccumulator::gather_reset
/// [`Spa::gather_reset`]: crate::spa::Spa::gather_reset
#[allow(clippy::too_many_arguments)]
pub(crate) fn kway_numeric_cached<T: Element, O: Monoid<Value = T>>(
    mats: &[&CscMatrix<T>],
    pattern: &Pattern,
    kernel: NumericKernel,
    monoid: O,
    ctx: &DriverCtx,
    pool: &WorkspacePool<T>,
    recycle: RecycledBufs<T>,
) -> CscMatrix<T> {
    debug_assert!(!O::MAY_FILTER, "filtering monoids must bypass the cache");
    let n = mats[0].ncols();
    let m = mats[0].nrows();
    let k = mats.len();
    debug_assert_eq!(pattern.colptr.len(), n + 1);

    let RecycledBufs {
        mut colptr,
        rows: mut rowidx,
        vals: mut values,
    } = recycle;
    colptr.clear();
    colptr.extend_from_slice(&pattern.colptr);
    let nnz = *colptr.last().unwrap();
    rowidx.clear();
    rowidx.extend_from_slice(&pattern.rowidx);
    values.clear();
    values.resize(nnz, T::default());

    let counts: Vec<usize> = colptr.windows(2).map(|w| w[1] - w[0]).collect();
    let ranges = plan_ranges(&counts, 0, ctx.sched);
    let chunks = split_output(&colptr, &ranges, &mut rowidx, &mut values);

    chunks.into_par_iter().for_each(|chunk| {
        let mut views: Vec<ColView<'_, T>> = Vec::with_capacity(k);
        let mut mem = NullModel;
        let mut ws = pool.for_current_thread();
        for j in chunk.cols.clone() {
            views.clear();
            views.extend(mats.iter().map(|a| a.col(j)));
            let lo = colptr[j] - chunk.base;
            let hi = colptr[j + 1] - chunk.base;
            let out_rows = &mut chunk.rows[lo..hi];
            let out_vals = &mut chunk.vals[lo..hi];
            match kernel {
                NumericKernel::Hash => {
                    let ht = ws.hash();
                    ht.reserve_for(hi - lo);
                    hash_numeric_only_column(&views, ht, out_rows, out_vals, monoid, &mut mem);
                }
                NumericKernel::Spa => {
                    spa_numeric_only_column(&views, ws.spa(m), out_rows, out_vals, monoid, &mut mem)
                }
                // The sliding and heap kernels emit rows themselves; with
                // exact cached counts they rewrite the pre-copied rows
                // with the same content, so only the symbolic skip (the
                // full-input sweep) is saved for these families.
                NumericKernel::SlidingHash => {
                    let (ht, scratch) = ws.hash_and_scratch();
                    let written = sliding_add_column_with(
                        &views,
                        m,
                        ctx.budget_add,
                        hi - lo,
                        ht,
                        out_rows,
                        out_vals,
                        ctx.sorted_output,
                        ctx.inputs_sorted,
                        monoid,
                        scratch,
                        &mut mem,
                    );
                    debug_assert_eq!(written, hi - lo, "cached count mismatch");
                }
                NumericKernel::SlidingSpa => {
                    let (spa, scratch) = ws.spa_and_scratch(m.min(ctx.budget_add.max(1)));
                    let written = sliding_spa_add_column_with(
                        &views,
                        m,
                        ctx.budget_add,
                        spa,
                        out_rows,
                        out_vals,
                        ctx.sorted_output,
                        ctx.inputs_sorted,
                        monoid,
                        scratch,
                        &mut mem,
                    );
                    debug_assert_eq!(written, hi - lo, "cached count mismatch");
                }
                NumericKernel::Heap => {
                    let written = heap_add_column_with(
                        &views,
                        ws.heap(k),
                        out_rows,
                        out_vals,
                        monoid,
                        &mut mem,
                    );
                    debug_assert_eq!(written, hi - lo, "cached count mismatch");
                }
            }
        }
    });

    CscMatrix::from_parts(m, n, colptr, rowidx, values)
}

/// Squeezes out the per-column slack left by an upper-bound allocation.
fn compact<T: Element>(
    m: usize,
    n: usize,
    alloc_colptr: &[usize],
    actual: &[usize],
    rowidx: Vec<u32>,
    values: Vec<T>,
) -> CscMatrix<T> {
    let colptr = exclusive_prefix_sum(actual);
    let nnz = *colptr.last().unwrap();
    let mut new_rows = vec![0u32; nnz];
    let mut new_vals = vec![T::default(); nnz];
    for j in 0..n {
        let src = alloc_colptr[j];
        let dst = colptr[j];
        let len = actual[j];
        new_rows[dst..dst + len].copy_from_slice(&rowidx[src..src + len]);
        new_vals[dst..dst + len].copy_from_slice(&values[src..src + len]);
    }
    CscMatrix::from_parts(m, n, colptr, new_rows, new_vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Plus;
    use crate::parallel::Scheduling;
    use crate::symbolic::{symbolic_counts, SymbolicStrategy};
    use spk_sparse::DenseMatrix;

    fn ctx() -> DriverCtx {
        DriverCtx {
            sched: Scheduling::default(),
            budget_sym: 1 << 20,
            budget_add: 1 << 20,
            inputs_sorted: true,
            sorted_output: true,
        }
    }

    fn pool() -> WorkspacePool<f64> {
        WorkspacePool::new(rayon::current_num_threads())
    }

    fn inputs() -> Vec<CscMatrix<f64>> {
        let a = CscMatrix::try_new(
            8,
            3,
            vec![0, 3, 3, 5],
            vec![1, 3, 6, 0, 4],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        let b = CscMatrix::try_new(
            8,
            3,
            vec![0, 2, 3, 5],
            vec![3, 7, 2, 0, 4],
            vec![10.0, 20.0, 30.0, 40.0, 50.0],
        )
        .unwrap();
        let c = CscMatrix::try_new(8, 3, vec![0, 1, 1, 1], vec![1], vec![100.0]).unwrap();
        vec![a, b, c]
    }

    fn oracle(mats: &[&CscMatrix<f64>]) -> DenseMatrix<f64> {
        let mut acc = DenseMatrix::zeros(mats[0].nrows(), mats[0].ncols());
        for m in mats {
            acc.add_assign(&DenseMatrix::from_csc(m)).unwrap();
        }
        acc
    }

    #[test]
    fn all_kernels_match_dense_oracle() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let c = ctx();
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let expect = oracle(&refs);
        for kernel in [
            NumericKernel::Hash,
            NumericKernel::SlidingHash,
            NumericKernel::Spa,
            NumericKernel::Heap,
        ] {
            let out = kway_numeric(
                &refs,
                &counts,
                true,
                kernel,
                Plus::new(),
                &c,
                &ws,
                RecycledBufs::default(),
            );
            assert_eq!(
                DenseMatrix::from_csc(&out).max_abs_diff(&expect),
                0.0,
                "{kernel:?} wrong"
            );
            assert!(out.is_sorted(), "{kernel:?} must emit sorted columns");
            assert_eq!(out.nnz(), counts.iter().sum::<usize>());
        }
    }

    #[test]
    fn upper_bound_path_compacts() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let c = ctx();
        let ws = pool();
        let upper = symbolic_counts(&refs, SymbolicStrategy::UpperBound, &c, &ws);
        let exact = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let out = kway_numeric(
            &refs,
            &upper,
            false,
            NumericKernel::Hash,
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        assert_eq!(out.nnz(), exact.iter().sum::<usize>());
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&oracle(&refs)),
            0.0
        );
    }

    #[test]
    fn unsorted_output_mode_still_correct() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut c = ctx();
        c.sorted_output = false;
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let out = kway_numeric(
            &refs,
            &counts,
            true,
            NumericKernel::Hash,
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&oracle(&refs)),
            0.0
        );
    }

    #[test]
    fn sliding_with_tiny_budget_matches() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut c = ctx();
        c.budget_add = 16;
        c.budget_sym = 16;
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::SlidingHash, &c, &ws);
        let out = kway_numeric(
            &refs,
            &counts,
            true,
            NumericKernel::SlidingHash,
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        assert_eq!(
            DenseMatrix::from_csc(&out).max_abs_diff(&oracle(&refs)),
            0.0
        );
        assert!(out.is_sorted());
    }

    #[test]
    fn static_scheduling_matches_dynamic() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut c = ctx();
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let dynamic = kway_numeric(
            &refs,
            &counts,
            true,
            NumericKernel::Hash,
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        c.sched = Scheduling::Static;
        let stat = kway_numeric(
            &refs,
            &counts,
            true,
            NumericKernel::Hash,
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        assert!(dynamic.approx_eq(&stat, 0.0));
    }

    #[test]
    fn recycled_buffers_are_reused() {
        let ms = inputs();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let c = ctx();
        let ws = pool();
        let counts = symbolic_counts(&refs, SymbolicStrategy::Hash, &c, &ws);
        let first = kway_numeric(
            &refs,
            &counts,
            true,
            NumericKernel::Hash,
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::default(),
        );
        let expect = first.clone();
        let again = kway_numeric(
            &refs,
            &counts,
            true,
            NumericKernel::Hash,
            Plus::new(),
            &c,
            &ws,
            RecycledBufs::from_matrix(first),
        );
        assert_eq!(again, expect);
    }
}
