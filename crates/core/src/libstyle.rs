//! Library-style 2-way addition baselines — the suite's stand-in for the
//! paper's Intel MKL (`mkl_sparse_d_add`) columns in Tables III and IV.
//!
//! MKL cannot be linked here, so this module reproduces the *cost
//! structure* of calling a general-purpose library primitive in a loop
//! (see DESIGN.md, substitution 1):
//!
//! * every call converts the operands into an internal representation
//!   (here: triplets — MKL's inspector builds its own handle state);
//! * the addition itself is a sort-and-compact over the combined
//!   triplets, not an in-place streaming merge;
//! * every call allocates a fresh output and canonicalizes it.
//!
//! That per-call overhead is precisely what the paper's incremental/tree
//! drivers amplify k−1 times, which is why the MKL rows of Tables III/IV
//! are uniformly the slowest.

use crate::monoid::{Monoid, Plus};
use rayon::prelude::*;
use spk_sparse::{CooMatrix, CscMatrix, Scalar};

/// One library-style 2-way addition: triplet conversion, concatenation,
/// sort, duplicate compaction, fresh allocation.
pub fn lib_add_pair<T: Scalar>(a: &CscMatrix<T>, b: &CscMatrix<T>) -> CscMatrix<T> {
    lib_add_pair_with(a, b, Plus::new())
}

/// Monoid-generic library-style addition — see [`lib_add_pair`], which
/// is this with [`Plus`]. The combined triplets are counting-sorted
/// (stable, so `a`'s entries fold before `b`'s — the same order the
/// streaming merges use) and duplicate runs are reduced with
/// `monoid.combine`; `monoid.keep` filters each reduced entry.
pub fn lib_add_pair_with<T: spk_sparse::Element, O: Monoid<Value = T>>(
    a: &CscMatrix<T>,
    b: &CscMatrix<T>,
    monoid: O,
) -> CscMatrix<T> {
    debug_assert_eq!(a.shape(), b.shape());
    // "Inspector": both operands are re-ingested into library-internal
    // storage on every call.
    let mut combined = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz() + b.nnz());
    for (r, c, v) in a.iter() {
        combined.push(r, c, v);
    }
    for (r, c, v) in b.iter() {
        combined.push(r, c, v);
    }
    // "Executor": sort + compact into a canonical fresh output.
    let sorted = combined.to_csc();
    let (m, n, colptr, rows, vals) = sorted.into_parts();
    let mut out_colptr = vec![0usize; n + 1];
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut out_vals = Vec::with_capacity(vals.len());
    for j in 0..n {
        let mut i = colptr[j];
        let hi = colptr[j + 1];
        while i < hi {
            let r = rows[i];
            let mut acc = vals[i];
            i += 1;
            while i < hi && rows[i] == r {
                monoid.combine(&mut acc, vals[i]);
                i += 1;
            }
            if !O::MAY_FILTER || monoid.keep(&acc) {
                out_rows.push(r);
                out_vals.push(acc);
            }
        }
        out_colptr[j + 1] = out_rows.len();
    }
    CscMatrix::from_parts(m, n, out_colptr, out_rows, out_vals)
}

/// SpKAdd by incremental library calls (the paper's "MKL Incremental").
pub fn lib_incremental<T: Scalar>(mats: &[&CscMatrix<T>]) -> CscMatrix<T> {
    lib_incremental_with(mats, Plus::new())
}

/// Monoid-generic incremental library fold — see [`lib_incremental`].
pub fn lib_incremental_with<T: spk_sparse::Element, O: Monoid<Value = T>>(
    mats: &[&CscMatrix<T>],
    monoid: O,
) -> CscMatrix<T> {
    let mut acc = mats[0].clone();
    for a in &mats[1..] {
        acc = lib_add_pair_with(&acc, a, monoid);
    }
    acc
}

/// SpKAdd by a balanced tree of library calls (the paper's "MKL Tree").
/// Pairs within a level run in parallel — mirroring how one would drive a
/// thread-safe library — but each call keeps its per-call overhead.
pub fn lib_tree<T: Scalar>(mats: &[&CscMatrix<T>]) -> CscMatrix<T> {
    lib_tree_with(mats, Plus::new())
}

/// Monoid-generic tree of library calls — see [`lib_tree`].
pub fn lib_tree_with<T: spk_sparse::Element, O: Monoid<Value = T>>(
    mats: &[&CscMatrix<T>],
    monoid: O,
) -> CscMatrix<T> {
    let mut level: Vec<CscMatrix<T>> = mats
        .par_chunks(2)
        .map(|pair| match pair {
            [a, b] => lib_add_pair_with(a, b, monoid),
            [a] => (*a).clone(),
            _ => unreachable!(),
        })
        .collect();
    while level.len() > 1 {
        level = level
            .par_chunks(2)
            .map(|pair| match pair {
                [a, b] => lib_add_pair_with(a, b, monoid),
                [a] => a.clone(),
                _ => unreachable!(),
            })
            .collect();
    }
    level.pop().expect("non-empty input collection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::Scheduling;
    use crate::twoway;

    fn mk(cols: Vec<(Vec<u32>, Vec<f64>)>, m: usize) -> CscMatrix<f64> {
        let mut colptr = vec![0usize];
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        for (r, v) in cols {
            rows.extend_from_slice(&r);
            vals.extend_from_slice(&v);
            colptr.push(rows.len());
        }
        CscMatrix::try_new(m, colptr.len() - 1, colptr, rows, vals).unwrap()
    }

    #[test]
    fn lib_add_matches_native_add() {
        let a = mk(vec![(vec![1, 3], vec![1.0, 2.0]), (vec![0], vec![5.0])], 4);
        let b = mk(vec![(vec![0, 3], vec![4.0, 8.0]), (vec![0], vec![1.0])], 4);
        let lib = lib_add_pair(&a, &b);
        let native = twoway::add_pair(&a, &b, 0, Scheduling::default());
        assert!(lib.approx_eq(&native, 1e-12));
    }

    #[test]
    fn incremental_and_tree_agree() {
        let a = mk(vec![(vec![0], vec![1.0])], 3);
        let b = mk(vec![(vec![1], vec![2.0])], 3);
        let c = mk(vec![(vec![0, 2], vec![4.0, 8.0])], 3);
        let inc = lib_incremental(&[&a, &b, &c]);
        let tree = lib_tree(&[&a, &b, &c]);
        assert!(inc.approx_eq(&tree, 1e-12));
        assert_eq!(inc.get(0, 0).unwrap(), 5.0);
    }

    #[test]
    fn single_matrix_passthrough() {
        let a = mk(vec![(vec![2], vec![7.0])], 3);
        assert!(lib_tree(&[&a]).approx_eq(&a, 0.0));
        assert!(lib_incremental(&[&a]).approx_eq(&a, 0.0));
    }
}
