//! Reusable per-thread kernel workspaces — the state a [`crate::SpkAddPlan`]
//! retains between executions.
//!
//! Every k-way SpKAdd needs thread-private scratch: a numeric hash table
//! (Alg 5), a symbolic hash table (Alg 6), an O(m) SPA (Alg 4), an O(k)
//! merge heap (Alg 3), and the bucketing scratch of the sliding kernels
//! (Alg 7/8). The one-shot drivers used to allocate these inside every
//! call; a [`Workspace`] owns them instead, building each component
//! lazily on first use and handing out borrows afterwards, so a plan
//! executed repeatedly at a steady shape performs **zero** workspace
//! allocations after its first execution. [`Workspace::allocations`]
//! counts component (re)builds, which is what the plan-reuse tests
//! assert on.
//!
//! A [`WorkspacePool`] holds one mutex-wrapped workspace per worker
//! thread; the drivers lock the slot matching their rayon worker index,
//! exactly as the old driver-local pools did (§III-A: thread-private
//! accumulators, shared nothing).
//!
//! Under adaptive dispatch (`Algorithm::Auto` with per-chunk scoring) a
//! single execution may exercise **several kernel families** from the
//! same pool: a worker that draws a SPA chunk and then a hash chunk
//! lazily materializes both components in its one workspace. That is by
//! design — the components are independent fields, so mixing kernels
//! costs each family's one-time build and nothing more, and a steady
//! shape still reaches the zero-allocation regime even when every
//! execution mixes.

use crate::hashtab::{HashAccumulator, SymbolicHashTable};
use crate::heap::KwayHeap;
use crate::sliding::SlidingScratch;
use crate::spa::Spa;
use spk_sparse::Element;
use std::sync::{Mutex, MutexGuard};

/// Initial hash-table capacity; tables grow on demand via `reserve_for`.
const INITIAL_TABLE_CAPACITY: usize = 16;

/// Thread-private kernel state, sized per the paper's Table I memory
/// rows: heap O(k), SPA O(m), hash O(max column output), sliding
/// O(budget). All components are built lazily and kept for reuse.
#[derive(Debug, Default)]
pub struct Workspace<T> {
    hash: Option<HashAccumulator<T>>,
    sym_hash: Option<SymbolicHashTable>,
    spa: Option<Spa<T>>,
    heap: Option<KwayHeap<T>>,
    /// Capacity the heap was built for (KwayHeap does not expose it).
    heap_k: usize,
    scratch: Option<SlidingScratch<T>>,
    allocations: u64,
}

impl<T: Element> Workspace<T> {
    /// An empty workspace; components materialize on first use.
    pub fn new() -> Self {
        Self {
            hash: None,
            sym_hash: None,
            spa: None,
            heap: None,
            heap_k: 0,
            scratch: None,
            allocations: 0,
        }
    }

    /// Number of component builds/rebuilds so far. Stable across
    /// executions at a steady shape — the "zero per-execute
    /// allocations" property the reuse tests assert.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// The numeric hash accumulator (Alg 5); grows via `reserve_for`.
    pub fn hash(&mut self) -> &mut HashAccumulator<T> {
        if self.hash.is_none() {
            self.allocations += 1;
            self.hash = Some(HashAccumulator::with_capacity(INITIAL_TABLE_CAPACITY));
        }
        self.hash.as_mut().unwrap()
    }

    /// The symbolic hash table (Alg 6).
    pub fn sym_hash(&mut self) -> &mut SymbolicHashTable {
        if self.sym_hash.is_none() {
            self.allocations += 1;
            self.sym_hash = Some(SymbolicHashTable::with_capacity(INITIAL_TABLE_CAPACITY));
        }
        self.sym_hash.as_mut().unwrap()
    }

    /// A SPA covering at least `rows` rows; rebuilt only when a bigger
    /// one is required (a larger SPA serves a smaller panel unchanged).
    pub fn spa(&mut self, rows: usize) -> &mut Spa<T> {
        if self.spa.as_ref().is_none_or(|s| s.num_rows() < rows) {
            self.allocations += 1;
            self.spa = Some(Spa::new(rows));
        }
        self.spa.as_mut().unwrap()
    }

    /// A k-way merge heap for at least `k` operands.
    pub fn heap(&mut self, k: usize) -> &mut KwayHeap<T> {
        if self.heap.is_none() || self.heap_k < k {
            self.allocations += 1;
            self.heap = Some(KwayHeap::new(k));
            self.heap_k = k;
        }
        self.heap.as_mut().unwrap()
    }

    /// The sliding kernels' bucketing scratch.
    pub fn scratch(&mut self) -> &mut SlidingScratch<T> {
        if self.scratch.is_none() {
            self.allocations += 1;
            self.scratch = Some(SlidingScratch::new());
        }
        self.scratch.as_mut().unwrap()
    }

    /// Hash table and sliding scratch together (Alg 8 borrows both).
    pub fn hash_and_scratch(&mut self) -> (&mut HashAccumulator<T>, &mut SlidingScratch<T>) {
        self.hash();
        self.scratch();
        (self.hash.as_mut().unwrap(), self.scratch.as_mut().unwrap())
    }

    /// Symbolic table and sliding scratch together (Alg 7).
    pub fn sym_hash_and_scratch(&mut self) -> (&mut SymbolicHashTable, &mut SlidingScratch<T>) {
        self.sym_hash();
        self.scratch();
        (
            self.sym_hash.as_mut().unwrap(),
            self.scratch.as_mut().unwrap(),
        )
    }

    /// SPA panel and sliding scratch together (the §IV-B(b) extension).
    pub fn spa_and_scratch(&mut self, rows: usize) -> (&mut Spa<T>, &mut SlidingScratch<T>) {
        self.spa(rows);
        self.scratch();
        (self.spa.as_mut().unwrap(), self.scratch.as_mut().unwrap())
    }
}

/// One [`Workspace`] per worker thread, shared with the parallel drivers.
///
/// Slots are locked by rayon worker index; with one task in flight per
/// worker the locks are uncontended (they exist so the borrow checker
/// and the work-stealing scheduler agree the state is exclusive).
#[derive(Debug, Default)]
pub struct WorkspacePool<T> {
    slots: Vec<Mutex<Workspace<T>>>,
}

impl<T: Element> WorkspacePool<T> {
    /// A pool with one workspace per worker.
    pub fn new(workers: usize) -> Self {
        Self {
            slots: (0..workers.max(1))
                .map(|_| Mutex::new(Workspace::new()))
                .collect(),
        }
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Locks the workspace slot for the calling rayon worker.
    pub(crate) fn for_current_thread(&self) -> MutexGuard<'_, Workspace<T>> {
        let tid = rayon::current_thread_index().unwrap_or(0) % self.slots.len();
        self.slots[tid].lock().expect("workspace mutex poisoned")
    }

    /// Total component builds across all slots (see
    /// [`Workspace::allocations`]).
    pub fn allocations(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.lock().expect("workspace mutex poisoned").allocations)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_build_once_and_are_reused() {
        let mut ws = Workspace::<f64>::new();
        assert_eq!(ws.allocations(), 0);
        ws.hash();
        ws.hash();
        assert_eq!(ws.allocations(), 1, "hash table built exactly once");
        ws.sym_hash();
        ws.scratch();
        assert_eq!(ws.allocations(), 3);
        ws.hash_and_scratch();
        assert_eq!(ws.allocations(), 3, "paired accessor reuses both");
    }

    #[test]
    fn spa_and_heap_rebuild_only_when_growing() {
        let mut ws = Workspace::<f64>::new();
        ws.spa(100);
        ws.spa(50);
        assert_eq!(ws.allocations(), 1, "smaller panel reuses the SPA");
        ws.spa(200);
        assert_eq!(ws.allocations(), 2, "larger panel rebuilds");
        ws.heap(4);
        ws.heap(3);
        assert_eq!(ws.allocations(), 3);
        ws.heap(8);
        assert_eq!(ws.allocations(), 4);
    }

    #[test]
    fn pool_has_one_slot_per_worker() {
        let pool = WorkspacePool::<f64>::new(3);
        assert_eq!(pool.workers(), 3);
        assert_eq!(pool.allocations(), 0);
        pool.for_current_thread().hash();
        assert_eq!(pool.allocations(), 1);
        let zero = WorkspacePool::<f64>::new(0);
        assert_eq!(zero.workers(), 1, "at least one slot");
    }
}
