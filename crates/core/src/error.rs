//! Error type for SpKAdd operations.

use spk_sparse::SparseError;
use std::fmt;

/// Errors returned by the SpKAdd entry points.
#[derive(Debug)]
pub enum SpkaddError {
    /// Structural/shape problem reported by the sparse substrate.
    Sparse(SparseError),
    /// An algorithm that requires sorted input columns (2-way merges, the
    /// heap algorithm — Table I of the paper) received unsorted input.
    UnsortedInput {
        /// Name of the algorithm that refused the input.
        algorithm: &'static str,
        /// Index of the offending matrix in the collection.
        operand: usize,
    },
    /// An option combination is invalid (reason in the payload).
    InvalidOptions(String),
    /// An algorithm name failed to parse (`Algorithm::from_str`).
    UnknownAlgorithm(String),
}

impl fmt::Display for SpkaddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpkaddError::Sparse(e) => write!(f, "{e}"),
            SpkaddError::UnsortedInput { algorithm, operand } => write!(
                f,
                "algorithm '{algorithm}' requires sorted input columns, but \
                 matrix {operand} is unsorted (sort with \
                 CscMatrix::sort_columns, or use the hash/SPA algorithms \
                 which accept unsorted inputs)"
            ),
            SpkaddError::InvalidOptions(msg) => write!(f, "invalid options: {msg}"),
            SpkaddError::UnknownAlgorithm(name) => write!(
                f,
                "unknown algorithm '{name}' (expected one of: {})",
                crate::Algorithm::tokens().join(", ")
            ),
        }
    }
}

impl std::error::Error for SpkaddError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpkaddError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for SpkaddError {
    fn from(e: SparseError) -> Self {
        SpkaddError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_remedy() {
        let e = SpkaddError::UnsortedInput {
            algorithm: "heap",
            operand: 3,
        };
        let s = e.to_string();
        assert!(s.contains("heap"));
        assert!(s.contains("matrix 3"));
        assert!(s.contains("sort_columns"));
    }

    #[test]
    fn wraps_sparse_errors() {
        use std::error::Error;
        let e: SpkaddError = SparseError::EmptyCollection.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("at least one"));
    }
}
