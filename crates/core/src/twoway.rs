//! 2-way SpKAdd: pairwise merges, incremental and tree reduction
//! (Algorithm 1 and §II-B of the paper).
//!
//! The column merge is the textbook two-pointer merge of sorted
//! `(row, value)` lists. On top of it:
//!
//! * [`add_pair`] — one parallel 2-way addition `A + B` (count pass,
//!   prefix sum, fill pass; columns distributed by weight);
//! * [`spkadd_incremental`] — Alg 1: fold the collection left to right,
//!   Θ(k²·nd) work for ER inputs because every prefix is re-streamed;
//! * [`spkadd_tree`] — balanced binary reduction, Θ(k·nd·lg k) work, the
//!   "free" improvement the paper recommends when only a 2-way primitive
//!   is available.
//!
//! Both require sorted, duplicate-free input columns.

use crate::mem::{MemModel, NullModel};
use crate::monoid::{Monoid, Plus};
use crate::parallel::{exclusive_prefix_sum, plan_ranges, split_output, Scheduling};
use rayon::prelude::*;
use spk_sparse::{ColView, CscMatrix, Element, Scalar};

/// Counts the entries `|A(:,j) ∪ B(:,j)|` a merge would produce.
#[inline]
pub fn col_merge_count<T: Element, M: MemModel>(
    a: ColView<'_, T>,
    b: ColView<'_, T>,
    mem: &mut M,
) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.rows.len() && j < b.rows.len() {
        mem.op(1);
        mem.read(a.rows.as_ptr() as usize + i * 4, 4);
        mem.read(b.rows.as_ptr() as usize + j * 4, 4);
        let (ra, rb) = (a.rows[i], b.rows[j]);
        i += (ra <= rb) as usize;
        j += (rb <= ra) as usize;
        n += 1;
    }
    n + (a.rows.len() - i) + (b.rows.len() - j)
}

/// Merges two sorted columns into the output slices, summing equal rows;
/// returns the number of entries written (the paper's `ColAdd`).
#[inline]
pub fn col_merge_into<T: Scalar, M: MemModel>(
    a: ColView<'_, T>,
    b: ColView<'_, T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    mem: &mut M,
) -> usize {
    col_merge_into_with(a, b, out_rows, out_vals, Plus::new(), mem)
}

/// Monoid-generic column merge — see [`col_merge_into`], which is this
/// with [`Plus`]. Equal rows are folded with `monoid.combine`; every
/// emitted entry (merged or passed through) is subject to `monoid.keep`,
/// so a filtering monoid can return fewer entries than
/// [`col_merge_count`] predicts.
#[inline]
pub fn col_merge_into_with<T: Element, O: Monoid<Value = T>, M: MemModel>(
    a: ColView<'_, T>,
    b: ColView<'_, T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    monoid: O,
    mem: &mut M,
) -> usize {
    let sz = std::mem::size_of::<T>();
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.rows.len() && j < b.rows.len() {
        mem.op(1);
        mem.read(a.rows.as_ptr() as usize + i * 4, 4);
        mem.read(b.rows.as_ptr() as usize + j * 4, 4);
        let (ra, rb) = (a.rows[i], b.rows[j]);
        let (row, val) = if ra < rb {
            mem.read(a.vals.as_ptr() as usize + i * sz, sz);
            let v = a.vals[i];
            i += 1;
            (ra, v)
        } else if rb < ra {
            mem.read(b.vals.as_ptr() as usize + j * sz, sz);
            let v = b.vals[j];
            j += 1;
            (rb, v)
        } else {
            mem.read(a.vals.as_ptr() as usize + i * sz, sz);
            mem.read(b.vals.as_ptr() as usize + j * sz, sz);
            let mut v = a.vals[i];
            monoid.combine(&mut v, b.vals[j]);
            i += 1;
            j += 1;
            (ra, v)
        };
        if O::MAY_FILTER && !monoid.keep(&val) {
            continue;
        }
        out_rows[n] = row;
        out_vals[n] = val;
        mem.write(out_rows.as_ptr() as usize + n * 4, 4);
        mem.write(out_vals.as_ptr() as usize + n * sz, sz);
        n += 1;
    }
    while i < a.rows.len() {
        mem.read(a.rows.as_ptr() as usize + i * 4, 4);
        mem.read(a.vals.as_ptr() as usize + i * sz, sz);
        let v = a.vals[i];
        i += 1;
        if O::MAY_FILTER && !monoid.keep(&v) {
            continue;
        }
        out_rows[n] = a.rows[i - 1];
        out_vals[n] = v;
        mem.write(out_rows.as_ptr() as usize + n * 4, 4);
        mem.write(out_vals.as_ptr() as usize + n * sz, sz);
        n += 1;
    }
    while j < b.rows.len() {
        mem.read(b.rows.as_ptr() as usize + j * 4, 4);
        mem.read(b.vals.as_ptr() as usize + j * sz, sz);
        let v = b.vals[j];
        j += 1;
        if O::MAY_FILTER && !monoid.keep(&v) {
            continue;
        }
        out_rows[n] = b.rows[j - 1];
        out_vals[n] = v;
        mem.write(out_rows.as_ptr() as usize + n * 4, 4);
        mem.write(out_vals.as_ptr() as usize + n * sz, sz);
        n += 1;
    }
    n
}

/// Parallel 2-way addition `A + B` over sorted CSC inputs.
///
/// Two passes: a counting pass sizes every output column exactly, then a
/// fill pass writes disjoint windows — no synchronization, no compaction.
pub fn add_pair<T: Scalar>(
    a: &CscMatrix<T>,
    b: &CscMatrix<T>,
    threads: usize,
    sched: Scheduling,
) -> CscMatrix<T> {
    add_pair_with(a, b, threads, sched, Plus::new())
}

/// Monoid-generic parallel 2-way merge — see [`add_pair`], which is this
/// with [`Plus`]. For a filtering monoid the counting pass yields *upper
/// bounds*, so the fill pass records actual per-column sizes and a final
/// compaction squeezes the dropped slots out.
pub fn add_pair_with<T: Element, O: Monoid<Value = T>>(
    a: &CscMatrix<T>,
    b: &CscMatrix<T>,
    threads: usize,
    sched: Scheduling,
    monoid: O,
) -> CscMatrix<T> {
    debug_assert_eq!(a.shape(), b.shape());
    let n = a.ncols();
    // Per-column weights for balancing: the merge cost is linear in the
    // total entries of both columns.
    let weights: Vec<usize> = (0..n).map(|j| a.col_nnz(j) + b.col_nnz(j)).collect();
    let ranges = plan_ranges(&weights, threads, sched);

    // Pass 1: per-column output sizes (exact unless the monoid filters,
    // in which case they are upper bounds).
    let mut counts = vec![0usize; n];
    {
        let mut parts: Vec<(std::ops::Range<usize>, &mut [usize])> = Vec::new();
        let mut rest = counts.as_mut_slice();
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            parts.push((r.clone(), head));
            rest = tail;
        }
        parts.into_par_iter().for_each(|(cols, out)| {
            let mut mem = NullModel;
            for (slot, j) in cols.into_iter().enumerate() {
                out[slot] = col_merge_count(a.col(j), b.col(j), &mut mem);
            }
        });
    }
    let colptr = exclusive_prefix_sum(&counts);
    let nnz = *colptr.last().unwrap();
    let mut rowidx = vec![0u32; nnz];
    let mut values = vec![T::default(); nnz];

    // Pass 2: merge into disjoint windows, recording actual sizes.
    let mut actual = vec![0usize; n];
    {
        let mut actual_parts: Vec<&mut [usize]> = Vec::new();
        let mut rest = actual.as_mut_slice();
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            actual_parts.push(head);
            rest = tail;
        }
        let chunks = split_output(&colptr, &ranges, &mut rowidx, &mut values);
        chunks
            .into_par_iter()
            .zip(actual_parts.into_par_iter())
            .for_each(|(chunk, act)| {
                let mut mem = NullModel;
                for (slot, j) in chunk.cols.clone().enumerate() {
                    let lo = colptr[j] - chunk.base;
                    let hi = colptr[j + 1] - chunk.base;
                    let written = col_merge_into_with(
                        a.col(j),
                        b.col(j),
                        &mut chunk.rows[lo..hi],
                        &mut chunk.vals[lo..hi],
                        monoid,
                        &mut mem,
                    );
                    debug_assert!(O::MAY_FILTER || written == hi - lo);
                    act[slot] = written;
                }
            });
    }

    if O::MAY_FILTER {
        // Squeeze the dropped slots out of the over-allocated windows.
        let tight = exclusive_prefix_sum(&actual);
        let tight_nnz = *tight.last().unwrap();
        let mut t_rows = vec![0u32; tight_nnz];
        let mut t_vals = vec![T::default(); tight_nnz];
        for j in 0..n {
            let (src, dst, len) = (colptr[j], tight[j], actual[j]);
            t_rows[dst..dst + len].copy_from_slice(&rowidx[src..src + len]);
            t_vals[dst..dst + len].copy_from_slice(&values[src..src + len]);
        }
        return CscMatrix::from_parts(a.nrows(), a.ncols(), tight, t_rows, t_vals);
    }

    CscMatrix::from_parts(a.nrows(), a.ncols(), colptr, rowidx, values)
}

/// SpKAdd by 2-way *incremental* additions (Algorithm 1): `B ← B + A_i`
/// left to right. Quadratic in `k` for disjoint inputs.
pub fn spkadd_incremental<T: Scalar>(
    mats: &[&CscMatrix<T>],
    threads: usize,
    sched: Scheduling,
) -> CscMatrix<T> {
    spkadd_incremental_with(mats, threads, sched, Plus::new())
}

/// Monoid-generic incremental fold — see [`spkadd_incremental`].
pub fn spkadd_incremental_with<T: Element, O: Monoid<Value = T>>(
    mats: &[&CscMatrix<T>],
    threads: usize,
    sched: Scheduling,
    monoid: O,
) -> CscMatrix<T> {
    let mut acc = mats[0].clone();
    for a in &mats[1..] {
        acc = add_pair_with(&acc, a, threads, sched, monoid);
    }
    acc
}

/// SpKAdd by 2-way *tree* additions: inputs at the leaves of a balanced
/// binary tree, `⌈lg k⌉` levels, every level touching Σ nnz once.
///
/// Pairs within a level are independent and run in parallel on top of the
/// column-parallel `add_pair`; rayon's work stealing composes the two
/// levels of parallelism.
pub fn spkadd_tree<T: Scalar>(
    mats: &[&CscMatrix<T>],
    threads: usize,
    sched: Scheduling,
) -> CscMatrix<T> {
    spkadd_tree_with(mats, threads, sched, Plus::new())
}

/// Monoid-generic tree fold — see [`spkadd_tree`].
pub fn spkadd_tree_with<T: Element, O: Monoid<Value = T>>(
    mats: &[&CscMatrix<T>],
    threads: usize,
    sched: Scheduling,
    monoid: O,
) -> CscMatrix<T> {
    // Leaf level: borrow the inputs.
    let mut level: Vec<CscMatrix<T>> = mats
        .par_chunks(2)
        .map(|pair| match pair {
            [a, b] => add_pair_with(a, b, threads, sched, monoid),
            [a] => (*a).clone(),
            _ => unreachable!(),
        })
        .collect();
    // Internal levels: own the intermediates.
    while level.len() > 1 {
        level = level
            .par_chunks(2)
            .map(|pair| match pair {
                [a, b] => add_pair_with(a, b, threads, sched, monoid),
                [a] => a.clone(),
                _ => unreachable!(),
            })
            .collect();
    }
    level.pop().expect("non-empty input collection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::CountingModel;
    use spk_sparse::DenseMatrix;

    fn mat(cols: Vec<(Vec<u32>, Vec<f64>)>, m: usize) -> CscMatrix<f64> {
        let mut colptr = vec![0usize];
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        for (r, v) in cols {
            rows.extend_from_slice(&r);
            vals.extend_from_slice(&v);
            colptr.push(rows.len());
        }
        CscMatrix::try_new(m, colptr.len() - 1, colptr, rows, vals).unwrap()
    }

    fn dense_sum(mats: &[&CscMatrix<f64>]) -> DenseMatrix<f64> {
        let mut acc = DenseMatrix::zeros(mats[0].nrows(), mats[0].ncols());
        for m in mats {
            acc.add_assign(&DenseMatrix::from_csc(m)).unwrap();
        }
        acc
    }

    #[test]
    fn merge_kernels_agree_on_count() {
        let a = mat(vec![(vec![1, 3, 6], vec![3.0, 2.0, 1.0])], 8);
        let b = mat(vec![(vec![0, 3, 5], vec![2.0, 1.0, 3.0])], 8);
        let mut mem = NullModel;
        let c = col_merge_count(a.col(0), b.col(0), &mut mem);
        assert_eq!(c, 5);
        let mut rows = vec![0u32; c];
        let mut vals = vec![0.0f64; c];
        let n = col_merge_into(a.col(0), b.col(0), &mut rows, &mut vals, &mut mem);
        assert_eq!(n, c);
        assert_eq!(rows, vec![0, 1, 3, 5, 6]);
        assert_eq!(vals, vec![2.0, 3.0, 3.0, 3.0, 1.0]);
    }

    #[test]
    fn merge_with_empty_sides() {
        let a = mat(vec![(vec![], vec![])], 4);
        let b = mat(vec![(vec![2], vec![1.0])], 4);
        let mut mem = NullModel;
        assert_eq!(col_merge_count(a.col(0), b.col(0), &mut mem), 1);
        assert_eq!(col_merge_count(a.col(0), a.col(0), &mut mem), 0);
        let mut rows = [0u32; 1];
        let mut vals = [0.0f64; 1];
        assert_eq!(
            col_merge_into(b.col(0), a.col(0), &mut rows, &mut vals, &mut mem),
            1
        );
        assert_eq!(rows[0], 2);
    }

    #[test]
    fn add_pair_matches_dense_oracle() {
        let a = mat(
            vec![
                (vec![1, 3, 6], vec![3.0, 2.0, 1.0]),
                (vec![], vec![]),
                (vec![0, 7], vec![5.0, 5.0]),
            ],
            8,
        );
        let b = mat(
            vec![
                (vec![0, 3, 5], vec![2.0, 1.0, 3.0]),
                (vec![4], vec![9.0]),
                (vec![0], vec![-5.0]),
            ],
            8,
        );
        let c = add_pair(&a, &b, 0, Scheduling::default());
        let oracle = dense_sum(&[&a, &b]).to_csc();
        // add_pair keeps explicit zeros (0 + -0 cancellations stay stored),
        // so compare densely.
        assert_eq!(
            DenseMatrix::from_csc(&c).max_abs_diff(&dense_sum(&[&a, &b])),
            0.0
        );
        assert!(c.is_sorted());
        // Structure: union of patterns (5 + 1 + 2 entries).
        assert_eq!(c.nnz(), 5 + 1 + 2);
        let _ = oracle;
    }

    #[test]
    fn incremental_and_tree_agree() {
        let a = mat(vec![(vec![0, 2], vec![1.0, 1.0])], 4);
        let b = mat(vec![(vec![1], vec![2.0])], 4);
        let c = mat(vec![(vec![2, 3], vec![4.0, 8.0])], 4);
        let d = mat(vec![(vec![0], vec![16.0])], 4);
        let mats = [&a, &b, &c, &d];
        let inc = spkadd_incremental(&mats, 0, Scheduling::default());
        let tree = spkadd_tree(&mats, 0, Scheduling::default());
        assert!(inc.approx_eq(&tree, 1e-12));
        assert_eq!(inc.get(2, 0).unwrap(), 5.0);
        assert_eq!(inc.get(0, 0).unwrap(), 17.0);
    }

    #[test]
    fn tree_handles_odd_and_single_inputs() {
        let a = mat(vec![(vec![0], vec![1.0])], 2);
        let b = mat(vec![(vec![1], vec![2.0])], 2);
        let c = mat(vec![(vec![0], vec![4.0])], 2);
        let three = spkadd_tree(&[&a, &b, &c], 0, Scheduling::default());
        assert_eq!(three.get(0, 0).unwrap(), 5.0);
        assert_eq!(three.get(1, 0).unwrap(), 2.0);
        let one = spkadd_tree(&[&a], 0, Scheduling::default());
        assert!(one.approx_eq(&a, 0.0));
    }

    #[test]
    fn static_scheduling_gives_same_result() {
        let a = mat(vec![(vec![0, 2], vec![1.0, 1.0]), (vec![1], vec![3.0])], 4);
        let b = mat(vec![(vec![2], vec![2.0]), (vec![1, 3], vec![1.0, 1.0])], 4);
        let dynamic = add_pair(&a, &b, 0, Scheduling::default());
        let stat = add_pair(&a, &b, 0, Scheduling::Static);
        assert!(dynamic.approx_eq(&stat, 0.0));
    }

    #[test]
    fn merge_traffic_is_linear_in_inputs() {
        // Disjoint rows: |out| = |a| + |b|; every entry read and written once.
        let a = mat(vec![((0..50).map(|i| i * 2).collect(), vec![1.0; 50])], 100);
        let b = mat(
            vec![((0..50).map(|i| i * 2 + 1).collect(), vec![1.0; 50])],
            100,
        );
        let mut mem = CountingModel::new();
        let mut rows = vec![0u32; 100];
        let mut vals = vec![0.0f64; 100];
        let n = col_merge_into(a.col(0), b.col(0), &mut rows, &mut vals, &mut mem);
        assert_eq!(n, 100);
        assert_eq!(mem.writes, 200, "one row + one val write per output entry");
    }
}
