//! Pattern-keyed symbolic caching: fingerprint a collection's *structure*
//! and reuse the symbolic phase's answer when the same structure repeats.
//!
//! The paper's k-way algorithms (§II-D) split SpKAdd into a symbolic pass
//! (per-column output sizes → output `colptr`/`rowidx`) and a numeric
//! pass. The symbolic pass is a full sweep over all k inputs, yet the
//! dominant repeat workloads — FEM assembly on a fixed mesh, gradient
//! all-reduce over a fixed model — add collections with *identical
//! sparsity* every iteration. The symbolic/numeric separation inherited
//! from Buluç–Gilbert (arXiv:1109.3739) makes the output structure a
//! first-class artifact, so a plan can cache it: on a fingerprint hit the
//! driver skips symbolic entirely, copies the cached `colptr`/`rowidx`
//! into the (possibly recycled) output buffers, and runs a numeric-only
//! kernel that scatters values into the known structure.
//!
//! The cache is structural only — values never enter the fingerprint, and
//! cached entries never carry values — so a hit is always sound for
//! non-filtering monoids (the output structure is the set union of input
//! structures, independent of the values being folded). Filtering monoids
//! (`MAY_FILTER = true`) have value-dependent structure and bypass the
//! cache entirely; the plan layer enforces that.

use std::collections::HashMap;
use std::sync::Arc;

use crate::kway::NumericKernel;
use rayon::prelude::*;
use spk_sparse::{CscMatrix, Element};

/// An order-sensitive 128-bit structural fingerprint of a collection.
///
/// Covers the common shape, k, and every matrix's `colptr` and `rowidx`
/// in sequence (values are deliberately excluded). Two independent mixing
/// lanes plus the exact total input nnz and k make accidental collisions
/// negligible (~2⁻¹²⁸ per pair of distinct structures) — and a collision
/// would still produce a structurally valid (merely wrong-sparsity)
/// output, never unsoundness, because cached entries hold structure only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternFingerprint {
    lane_a: u64,
    lane_b: u64,
    /// Exact total input nnz — a free equality check alongside the lanes.
    total_nnz: u64,
    /// Collection length, order-sensitivity's outer guard.
    k: u32,
}

/// `splitmix64` finalizer: full-avalanche 64-bit mixing.
#[inline(always)]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Two-lane absorber: the lanes consume each word through different
/// multipliers and rotations, so 128 bits of state evolve independently.
struct Absorber {
    a: u64,
    b: u64,
}

impl Absorber {
    fn new() -> Self {
        // Arbitrary distinct nonzero seeds (first 16 hex digits of π/e).
        Self {
            a: 0x243f_6a88_85a3_08d3,
            b: 0xb7e1_5162_8aed_2a6a,
        }
    }

    /// xxHash-style accumulation: one multiply per lane per word — the
    /// full-avalanche [`mix`] runs once per lane in [`Absorber::finish`],
    /// not per word. Per-word updates are invertible, so no state is
    /// lost along the way; the digest sweep is the warm path's main cost
    /// and this keeps it close to memory speed.
    #[inline(always)]
    fn push(&mut self, w: u64) {
        self.a = (self.a ^ w)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .rotate_left(27);
        self.b = (self.b.rotate_left(31) ^ w).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    }

    /// Finalizes both lanes with a full-avalanche mix.
    fn finish(self) -> (u64, u64) {
        (mix(self.a), mix(self.b))
    }

    /// Absorbs a `u32` slice two words at a time (the rowidx hot path).
    fn push_u32s(&mut self, xs: &[u32]) {
        let mut it = xs.chunks_exact(2);
        for pair in &mut it {
            self.push((pair[0] as u64) | ((pair[1] as u64) << 32));
        }
        if let [last] = it.remainder() {
            // Distinct tag keeps `[x]` and `[x, 0]` apart.
            self.push((*last as u64) | (1 << 63));
        }
    }
}

/// Digests one matrix's structure into a two-lane summary. Includes a
/// separator word so an empty matrix still contributes state.
fn digest_one<T: Element>(a: &CscMatrix<T>) -> (u64, u64) {
    let mut ab = Absorber::new();
    ab.push(0xa5a5_a5a5_5a5a_5a5a ^ a.nnz() as u64);
    // Per-column counts determine `colptr` (given the CSC `colptr[0] = 0`
    // invariant and the column count absorbed by the caller), and fit a
    // u32 each — row indices are u32, so a column holds < 2³² entries —
    // which lets two columns share one absorbed word.
    let colptr = a.colptr();
    let mut i = 1;
    while i + 1 < colptr.len() {
        let d0 = (colptr[i] - colptr[i - 1]) as u64;
        let d1 = (colptr[i + 1] - colptr[i]) as u64;
        debug_assert!(d0 >> 32 == 0 && d1 >> 32 == 0);
        ab.push(d0 | (d1 << 32));
        i += 2;
    }
    if i < colptr.len() {
        ab.push(((colptr[i] - colptr[i - 1]) as u64) | (1 << 63));
    }
    ab.push_u32s(a.rowidx());
    ab.finish()
}

/// Collections with more absorbed words than this fingerprint their
/// matrices on the worker threads; smaller ones stay serial.
const PARALLEL_DIGEST_WORDS: usize = 1 << 15;

impl PatternFingerprint {
    /// Fingerprints a collection's structure. Order-sensitive: each
    /// matrix is digested independently (in parallel for large
    /// collections — the digest sweep is the warm path's main cost) and
    /// the digests are folded in sequence, so swapping two structurally
    /// different inputs changes the print (the cached output structure
    /// would still match, but per-input order is what the numeric
    /// kernels' first-touch combine order keys off, so the cache stays
    /// conservatively exact).
    pub fn of<T: Element>(mats: &[&CscMatrix<T>]) -> Self {
        let mut ab = Absorber::new();
        let (m, n) = if mats.is_empty() {
            (0, 0)
        } else {
            mats[0].shape()
        };
        ab.push(m as u64);
        ab.push(n as u64);
        let mut total_nnz = 0u64;
        let mut words = 0usize;
        for a in mats {
            total_nnz += a.nnz() as u64;
            words += a.nnz() / 2 + a.colptr().len();
        }
        let digests: Vec<(u64, u64)> = if words >= PARALLEL_DIGEST_WORDS && mats.len() > 1 {
            mats.to_vec().into_par_iter().map(digest_one).collect()
        } else {
            mats.iter().map(|a| digest_one(a)).collect()
        };
        for (da, db) in digests {
            ab.push(da);
            ab.push(db);
        }
        let (lane_a, lane_b) = ab.finish();
        Self {
            lane_a,
            lane_b,
            total_nnz,
            k: mats.len() as u32,
        }
    }
}

/// A cached output structure: the symbolic phase's entire answer for one
/// input pattern. Values are never cached — a hit recomputes them from
/// the (possibly changed) input values.
#[derive(Debug)]
pub(crate) struct Pattern {
    pub(crate) colptr: Vec<usize>,
    pub(crate) rowidx: Vec<u32>,
    /// Per-chunk kernel decisions memoized from the cold (miss) run.
    /// Identical structure ⇒ identical symbolic counts ⇒ identical
    /// chunking ⇒ identical scores, so an adaptive warm hit replays
    /// these instead of rescoring. Empty for non-adaptive insertions —
    /// the dispatch ignores it then.
    pub(crate) kernels: Arc<Vec<NumericKernel>>,
}

#[derive(Debug)]
struct Slot {
    pattern: Arc<Pattern>,
    last_used: u64,
}

/// How one execution interacted with the plan's pattern cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PatternOutcome {
    /// The plan has no cache (`pattern_cache(0)`, the default).
    #[default]
    Disabled,
    /// A cache exists but this execution could not use it: either the
    /// monoid filters (`MAY_FILTER` — output structure depends on
    /// values), or the resolved algorithm is a 2-way/library fold with no
    /// symbolic phase to skip.
    Bypassed,
    /// The structure was fingerprinted but not found; the cold result's
    /// structure was inserted for next time.
    Miss,
    /// The structure was found — symbolic was skipped entirely.
    Hit,
}

/// Bounded LRU map from [`PatternFingerprint`] to cached output
/// structure, retained inside a [`crate::SpkAddPlan`].
///
/// Capacities are expected to be tiny (1–8): a streaming accumulator
/// flushes one batch shape, an aggregation-service key sees one gradient
/// layout. Eviction is therefore a linear scan for the oldest stamp — no
/// intrusive list needed at these sizes.
#[derive(Debug)]
pub struct PatternCache {
    capacity: usize,
    entries: HashMap<PatternFingerprint, Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    identity_hits: u64,
    /// Pointer-identity memo for the fingerprint fast path: the buffer
    /// addresses and nnz of the last fingerprinted collection, plus its
    /// print. See [`PatternCache::fingerprint`].
    identity: IdentityMemo,
    /// Process-wide `spkadd.pattern.*` counters, resolved once at
    /// construction so the per-lookup cost is one relaxed add.
    obs: PatternObs,
}

/// Handles into [`spk_obs::global`] mirroring the per-cache counters,
/// so traces and metrics dumps see pattern traffic across every cache
/// in the process (per-plan stats stay exact via `stats()`).
#[derive(Debug)]
struct PatternObs {
    hits: Arc<spk_obs::Counter>,
    misses: Arc<spk_obs::Counter>,
    insertions: Arc<spk_obs::Counter>,
    evictions: Arc<spk_obs::Counter>,
    identity_hits: Arc<spk_obs::Counter>,
}

impl PatternObs {
    fn new() -> Self {
        let reg = spk_obs::global();
        PatternObs {
            hits: reg.counter("spkadd.pattern.hits"),
            misses: reg.counter("spkadd.pattern.misses"),
            insertions: reg.counter("spkadd.pattern.insertions"),
            evictions: reg.counter("spkadd.pattern.evictions"),
            identity_hits: reg.counter("spkadd.pattern.identity_hits"),
        }
    }
}

#[derive(Debug, Default)]
struct IdentityMemo {
    /// One `(colptr ptr, rowidx ptr, nnz)` triple per matrix, in order.
    /// Buffer pointers — not `&CscMatrix` addresses — so the memo
    /// survives the matrix structs being moved between executions.
    ids: Vec<(usize, usize, usize)>,
    fp: Option<PatternFingerprint>,
}

/// Identity triple of one matrix: its structural buffers and nnz.
fn identity_of<T: Element>(a: &CscMatrix<T>) -> (usize, usize, usize) {
    (
        a.colptr().as_ptr() as usize,
        a.rowidx().as_ptr() as usize,
        a.nnz(),
    )
}

impl PatternCache {
    pub(crate) fn new(capacity: usize) -> Self {
        debug_assert!(capacity > 0, "a zero-capacity cache should be None");
        Self {
            capacity,
            entries: HashMap::with_capacity(capacity),
            tick: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            identity_hits: 0,
            identity: IdentityMemo::default(),
            obs: PatternObs::new(),
        }
    }

    /// Fingerprints a collection, skipping the digest sweep when the
    /// caller passes the same structural buffers (by pointer identity and
    /// nnz) as the previous execution — the steady-state repeat caller
    /// holds its matrices in place and only rewrites values, so the
    /// O(Σ nnz) re-hash is pure overhead for it.
    ///
    /// The check cannot see *in-place structural mutation*: rewriting
    /// `rowidx` contents inside the same allocation (e.g. sorting
    /// columns) keeps the pointers and nnz identical while changing the
    /// structure. Callers that do this must call
    /// [`PatternCache::invalidate_identity`] (via
    /// [`crate::SpkAddPlan::invalidate_pattern_identity`]) before the
    /// next execution; a stale identity hit would return the old print
    /// and scatter values into the old structure.
    pub(crate) fn fingerprint<T: Element>(&mut self, mats: &[&CscMatrix<T>]) -> PatternFingerprint {
        if let Some(fp) = self.identity.fp {
            if self.identity.ids.len() == mats.len()
                && mats
                    .iter()
                    .zip(&self.identity.ids)
                    .all(|(a, id)| identity_of(a) == *id)
            {
                self.identity_hits += 1;
                self.obs.identity_hits.inc();
                return fp;
            }
        }
        let fp = PatternFingerprint::of(mats);
        self.identity.ids.clear();
        self.identity
            .ids
            .extend(mats.iter().map(|a| identity_of(a)));
        self.identity.fp = Some(fp);
        fp
    }

    /// Forgets the pointer-identity memo; the next
    /// [`PatternCache::fingerprint`] re-hashes. Cached structures are
    /// untouched.
    pub(crate) fn invalidate_identity(&mut self) {
        self.identity.ids.clear();
        self.identity.fp = None;
    }

    /// Looks a fingerprint up, counting the hit/miss and refreshing the
    /// entry's recency on a hit. The entry is returned by `Arc` so the
    /// borrow does not pin the cache across the numeric phase.
    pub(crate) fn lookup(&mut self, fp: &PatternFingerprint) -> Option<Arc<Pattern>> {
        self.tick += 1;
        match self.entries.get_mut(fp) {
            Some(slot) => {
                self.hits += 1;
                self.obs.hits.inc();
                slot.last_used = self.tick;
                Some(Arc::clone(&slot.pattern))
            }
            None => {
                self.misses += 1;
                self.obs.misses.inc();
                None
            }
        }
    }

    /// Inserts (or refreshes) a structure together with the per-chunk
    /// kernel decisions that materialized it, evicting the
    /// least-recently used entry when at capacity.
    pub(crate) fn insert(
        &mut self,
        fp: PatternFingerprint,
        colptr: &[usize],
        rowidx: &[u32],
        kernels: &[NumericKernel],
    ) {
        self.tick += 1;
        if !self.entries.contains_key(&fp) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
                self.obs.evictions.inc();
            }
        }
        self.insertions += 1;
        self.obs.insertions.inc();
        self.entries.insert(
            fp,
            Slot {
                pattern: Arc::new(Pattern {
                    colptr: colptr.to_vec(),
                    rowidx: rowidx.to_vec(),
                    kernels: Arc::new(kernels.to_vec()),
                }),
                last_used: self.tick,
            },
        );
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PatternCacheStats {
        PatternCacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            identity_hits: self.identity_hits,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

/// Counter snapshot of a [`PatternCache`] (see
/// [`crate::SpkAddPlan::pattern_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternCacheStats {
    /// Lookups that found their structure (symbolic skipped).
    pub hits: u64,
    /// Lookups that did not (cold execution, structure inserted after).
    pub misses: u64,
    /// Structures stored (one per miss on the non-filtering k-way path).
    pub insertions: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Fingerprints answered by the pointer-identity fast path (no
    /// digest sweep ran; a subset of all lookups).
    pub identity_hits: u64,
    /// Structures currently cached.
    pub entries: usize,
    /// The configured LRU bound.
    pub capacity: usize,
}

impl PatternCacheStats {
    /// Hit fraction over all lookups (0.0 when none happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(n: usize, shift: u32) -> CscMatrix<f64> {
        let colptr = (0..=n).collect();
        let rows = (0..n as u32).map(|j| (j + shift) % n as u32).collect();
        CscMatrix::try_new(n, n, colptr, rows, vec![1.0; n]).unwrap()
    }

    #[test]
    fn same_structure_same_print_regardless_of_values() {
        let a = diag(8, 0);
        let mut b = diag(8, 0);
        b.values_mut().iter_mut().for_each(|v| *v = 42.0);
        assert_eq!(
            PatternFingerprint::of(&[&a]),
            PatternFingerprint::of(&[&b]),
            "values must not enter the fingerprint"
        );
    }

    #[test]
    fn order_and_structure_sensitivity() {
        let a = diag(8, 0);
        let b = diag(8, 3);
        let ab = PatternFingerprint::of(&[&a, &b]);
        let ba = PatternFingerprint::of(&[&b, &a]);
        assert_ne!(ab, ba, "order-sensitive");
        assert_ne!(
            PatternFingerprint::of(&[&a, &a]),
            PatternFingerprint::of(&[&a, &b]),
            "structure-sensitive"
        );
        assert_ne!(
            PatternFingerprint::of(&[&a]),
            PatternFingerprint::of(&[&a, &a]),
            "k-sensitive"
        );
    }

    #[test]
    fn single_rowidx_mutation_changes_the_print() {
        let a = diag(8, 0);
        let (m, n, colptr, mut rows, vals) = diag(8, 0).into_parts();
        rows[3] = (rows[3] + 1) % 8;
        let mutated = CscMatrix::try_new(m, n, colptr, rows, vals).unwrap();
        assert_ne!(
            PatternFingerprint::of(&[&a]),
            PatternFingerprint::of(&[&mutated])
        );
    }

    #[test]
    fn lru_evicts_the_oldest() {
        let mut cache = PatternCache::new(2);
        let prints: Vec<PatternFingerprint> = (0..3)
            .map(|s| {
                let m = diag(8, s);
                PatternFingerprint::of(&[&m])
            })
            .collect();
        let cp = vec![0usize; 9];
        let ri = vec![0u32; 0];
        cache.insert(prints[0], &cp, &ri, &[]);
        cache.insert(prints[1], &cp, &ri, &[]);
        assert!(cache.lookup(&prints[0]).is_some(), "refresh 0's recency");
        cache.insert(prints[2], &cp, &ri, &[]); // evicts 1, the LRU entry
        assert!(cache.lookup(&prints[0]).is_some());
        assert!(cache.lookup(&prints[1]).is_none(), "1 was evicted");
        assert!(cache.lookup(&prints[2]).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.capacity, 2);
        assert_eq!((s.hits, s.misses), (3, 1));
    }

    #[test]
    fn identity_fast_path_skips_rehashing_same_buffers() {
        let a = diag(64, 0);
        let b = diag(64, 5);
        let mut cache = PatternCache::new(2);
        let cold = cache.fingerprint(&[&a, &b]);
        assert_eq!(cache.stats().identity_hits, 0);
        // Same buffers again → answered from the memo.
        let warm = cache.fingerprint(&[&a, &b]);
        assert_eq!(warm, cold);
        assert_eq!(cache.stats().identity_hits, 1);
        // Different order = different buffers in slot 0 → full re-hash.
        let swapped = cache.fingerprint(&[&b, &a]);
        assert_ne!(swapped, cold);
        assert_eq!(cache.stats().identity_hits, 1);
        // A clone has equal structure but different buffers: no identity
        // hit, same print.
        let a2 = a.clone();
        let b2 = b.clone();
        // Re-memoize the original pair first, then present the clones.
        cache.fingerprint(&[&a, &b]);
        let cloned = cache.fingerprint(&[&a2, &b2]);
        assert_eq!(cloned, cold);
        assert_eq!(cache.stats().identity_hits, 1, "clone must miss the memo");
    }

    #[test]
    fn invalidate_identity_forces_a_rehash() {
        let a = diag(64, 0);
        let mut cache = PatternCache::new(2);
        let before = cache.fingerprint(&[&a]);
        cache.invalidate_identity();
        let after = cache.fingerprint(&[&a]);
        assert_eq!(before, after, "same structure, same print");
        assert_eq!(
            cache.stats().identity_hits,
            0,
            "invalidation must force the digest sweep"
        );
    }
}
