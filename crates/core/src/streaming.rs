//! Streaming (batched) SpKAdd — the paper's closing future-work note made
//! concrete: "when [all matrices do not fit in memory] we can still
//! arrange input matrices in multiple batches and then use SpKAdd for
//! each batch".
//!
//! [`StreamingAccumulator`] holds at most `batch_size` pending matrices.
//! When the batch fills (or [`StreamingAccumulator::flush`] is called),
//! the batch is reduced with a k-way SpKAdd and folded into the running
//! total with one 2-way merge. Peak memory is therefore
//! O(batch · max nnz + nnz(total)) instead of O(Σ nnz), at the cost of
//! one extra 2-way pass per batch.

use crate::kway::KernelCounts;
use crate::monoid::{Monoid, Plus};
use crate::parallel::Scheduling;
use crate::pattern::PatternCacheStats;
use crate::sliding::budget_entries;
use crate::twoway::add_pair_with;
use crate::{numeric_entry_bytes, Algorithm, Options, SpkAdd, SpkAddPlan, SpkaddError};
use spk_sparse::{CscMatrix, Element, Scalar, SparseError};

/// When a [`StreamingAccumulator`] reduces its pending batch.
///
/// The matrix-count mode is the paper's literal batching note; the nnz
/// modes are the shard-friendly policies the aggregation service
/// (`spk_server`) uses: a shard flushes once the *pending nonzeros* —
/// not the matrix count — outgrow a budget, so many tiny slices buffer
/// cheaply while a few dense ones flush early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Flush after this many pending matrices (the original batch mode).
    Matrices(usize),
    /// Flush once the pending nonzeros exceed this entry budget.
    Nnz(usize),
    /// Derive the nnz budget from the machine model: the pending batch's
    /// numeric hash entries (`numeric_entry_bytes::<T>()` each, the
    /// paper's `b`) must fit in an LLC shared by `sharers` accumulators —
    /// `budget_entries(M, b, sharers)` from the sliding-hash analysis.
    CacheBudget {
        /// Accumulators (shard workers) sharing the last-level cache.
        sharers: usize,
    },
}

impl FlushPolicy {
    /// Resolves the policy against execution options into concrete
    /// `(matrix, nnz)` budgets (`usize::MAX` = unbounded on that axis).
    pub fn budgets<T: Element>(&self, opts: &Options) -> (usize, usize) {
        match *self {
            FlushPolicy::Matrices(n) => (n.max(1), usize::MAX),
            FlushPolicy::Nnz(b) => (usize::MAX, b.max(1)),
            FlushPolicy::CacheBudget { sharers } => (
                usize::MAX,
                budget_entries(opts.cache.llc_bytes, numeric_entry_bytes::<T>(), sharers),
            ),
        }
    }
}

/// Incrementally accumulates a stream of same-shape sparse matrices.
///
/// Every batch reduction runs through one retained [`SpkAddPlan`] (built
/// lazily on the first flush), so a long-lived accumulator — e.g. an
/// aggregation-service shard flushing thousands of batches at a fixed
/// shape — reuses its hash tables and SPA panels instead of reallocating
/// them per flush.
#[derive(Debug)]
pub struct StreamingAccumulator<T: Element, O: Monoid<Value = T> = Plus<T>> {
    shape: (usize, usize),
    /// Flush once `pending` reaches this many matrices…
    mat_budget: usize,
    /// …or this many pending nonzeros, whichever comes first.
    nnz_budget: usize,
    algorithm: Algorithm,
    opts: Options,
    monoid: O,
    /// The retained batch-reduction plan; `None` until the first flush
    /// (building it eagerly would charge never-flushed accumulators).
    plan: Option<SpkAddPlan<T, O>>,
    pending: Vec<CscMatrix<T>>,
    pending_nnz: usize,
    total: Option<CscMatrix<T>>,
    batches_flushed: usize,
    matrices_seen: usize,
    /// Aggregated per-chunk kernel histogram across all flushes.
    kernel_counts: KernelCounts,
    /// Wall-clock of the previous flush, for the cadence histogram.
    last_flush: Option<std::time::Instant>,
    /// Process-wide flush cadence histogram
    /// (`stream.flush.interval_ns` in [`spk_obs::global`]), resolved
    /// once at construction; recording is three relaxed atomic adds.
    flush_interval_obs: std::sync::Arc<spk_obs::Histogram>,
}

impl<T: Scalar> StreamingAccumulator<T> {
    /// A new accumulator for `nrows × ncols` matrices, reducing every
    /// `batch_size` arrivals with `algorithm`.
    pub fn new(
        nrows: usize,
        ncols: usize,
        batch_size: usize,
        algorithm: Algorithm,
        opts: Options,
    ) -> Self {
        Self::with_policy(
            nrows,
            ncols,
            FlushPolicy::Matrices(batch_size),
            algorithm,
            opts,
        )
    }

    /// A new accumulator flushing per an explicit [`FlushPolicy`].
    pub fn with_policy(
        nrows: usize,
        ncols: usize,
        policy: FlushPolicy,
        algorithm: Algorithm,
        opts: Options,
    ) -> Self {
        Self::with_monoid(nrows, ncols, policy, algorithm, opts, Plus::new())
    }

    /// Convenience constructor: hash SpKAdd with default options.
    pub fn with_defaults(nrows: usize, ncols: usize, batch_size: usize) -> Self {
        Self::new(
            nrows,
            ncols,
            batch_size,
            Algorithm::Hash,
            Options::default(),
        )
    }
}

impl<T: Element, O: Monoid<Value = T>> StreamingAccumulator<T, O> {
    /// A new accumulator reducing under an arbitrary [`Monoid`] — both
    /// the batch k-way reductions and the running-total 2-way merges fold
    /// with `monoid.combine` (and drop entries failing `monoid.keep`).
    ///
    /// Note for filtering monoids: the stream is folded *per batch*, so
    /// `keep` is applied at every flush boundary, not once over the whole
    /// stream — the same per-level semantics as the tree drivers.
    pub fn with_monoid(
        nrows: usize,
        ncols: usize,
        policy: FlushPolicy,
        algorithm: Algorithm,
        mut opts: Options,
        monoid: O,
    ) -> Self {
        let (mat_budget, nnz_budget) = policy.budgets::<T>(&opts);
        // The streaming merge (`add_pair_with` in `flush`) requires sorted
        // canonical operands, so batch reductions must emit sorted columns
        // even when the caller prefers unsorted output — otherwise the
        // two-pointer merge would silently mis-combine unsorted columns.
        opts.sorted_output = true;
        Self {
            shape: (nrows, ncols),
            mat_budget,
            nnz_budget,
            algorithm,
            opts,
            monoid,
            plan: None,
            pending: Vec::new(),
            pending_nnz: 0,
            total: None,
            batches_flushed: 0,
            matrices_seen: 0,
            kernel_counts: KernelCounts::default(),
            last_flush: None,
            flush_interval_obs: spk_obs::global().histogram("stream.flush.interval_ns"),
        }
    }

    /// Number of matrices accepted so far.
    pub fn matrices_seen(&self) -> usize {
        self.matrices_seen
    }

    /// Number of batch reductions performed so far.
    pub fn batches_flushed(&self) -> usize {
        self.batches_flushed
    }

    /// Matrices buffered but not yet reduced.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Stored entries buffered but not yet reduced.
    pub fn pending_nnz(&self) -> usize {
        self.pending_nnz
    }

    /// Accepts one matrix; reduces the batch when either flush budget
    /// (matrix count or pending nnz) is reached.
    pub fn push(&mut self, m: CscMatrix<T>) -> Result<(), SpkaddError> {
        if m.shape() != self.shape {
            return Err(SpkaddError::Sparse(SparseError::DimensionMismatch {
                expected: self.shape,
                found: m.shape(),
                operand: self.matrices_seen,
            }));
        }
        self.matrices_seen += 1;
        // An all-zero matrix contributes nothing to the sum; dropping it
        // here keeps nnz-budget streams bounded structurally too (every
        // buffered matrix then carries at least one budget-counted entry,
        // so empty-slab floods — e.g. a shard outside a skewed stream's
        // row range — cannot grow `pending` without triggering a flush).
        if m.nnz() == 0 {
            return Ok(());
        }
        self.pending_nnz += m.nnz();
        self.pending.push(m);
        if self.pending.len() >= self.mat_budget || self.pending_nnz >= self.nnz_budget {
            self.flush()?;
        }
        Ok(())
    }

    /// The retained batch-reduction plan (`None` before the first flush).
    pub fn plan(&self) -> Option<&SpkAddPlan<T, O>> {
        self.plan.as_ref()
    }

    /// Pattern-cache counters of the retained plan (`None` before the
    /// first flush or when `opts.pattern_cache == 0`). A steady-sparsity
    /// stream — the gradient/FEM case batching motivates — hits the
    /// cache on every flush after the first, skipping the symbolic pass.
    pub fn pattern_stats(&self) -> Option<PatternCacheStats> {
        self.plan.as_ref().and_then(|p| p.pattern_stats())
    }

    /// Aggregated kernel histogram across every flush so far: how many
    /// column chunks each numeric kernel materialized. Empty until the
    /// first flush; stays single-kernel for explicit algorithms and
    /// mixes under adaptive [`Algorithm::Auto`].
    pub fn kernel_counts(&self) -> KernelCounts {
        self.kernel_counts
    }

    /// Reduces the pending batch into the running total now, through the
    /// retained plan (built on first use).
    pub fn flush(&mut self) -> Result<(), SpkaddError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let _span = spk_obs::span!("stream.flush");
        let now = spk_obs::now();
        if let Some(prev) = self.last_flush.replace(now) {
            self.flush_interval_obs
                .record(now.duration_since(prev).as_nanos() as u64);
        }
        let plan = match self.plan.as_mut() {
            Some(p) => p,
            None => {
                let built = SpkAdd::new(self.shape.0, self.shape.1)
                    .algorithm(self.algorithm)
                    .options(self.opts.clone())
                    .build_with_monoid(self.monoid)?;
                self.plan.insert(built)
            }
        };
        let refs: Vec<&CscMatrix<T>> = self.pending.iter().collect();
        let (batch_sum, stats) = plan.execute_timed(&refs)?;
        self.kernel_counts.merge(&stats.kernel_counts);
        self.pending.clear();
        self.pending_nnz = 0;
        self.batches_flushed += 1;
        self.total = Some(match self.total.take() {
            None => batch_sum,
            Some(acc) => {
                // The running total and the batch sum are both sorted
                // canonical outputs, so the streaming merge is one linear
                // 2-way pass.
                add_pair_with(
                    &acc,
                    &batch_sum,
                    self.opts.threads,
                    Scheduling::default(),
                    self.monoid,
                )
            }
        });
        Ok(())
    }

    /// A read-only view of the running total (pending matrices excluded).
    pub fn current(&self) -> Option<&CscMatrix<T>> {
        self.total.as_ref()
    }

    /// Flushes any pending batch and returns the final sum. An empty
    /// stream yields the all-zero matrix of the configured shape.
    pub fn finish(mut self) -> Result<CscMatrix<T>, SpkaddError> {
        self.flush()?;
        Ok(self
            .total
            .unwrap_or_else(|| CscMatrix::zeros(self.shape.0, self.shape.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spkadd_with;
    use spk_sparse::DenseMatrix;

    fn shifted_diag(n: usize, s: u32) -> CscMatrix<f64> {
        let colptr = (0..=n).collect();
        let rows = (0..n as u32).map(|j| (j + s) % n as u32).collect();
        CscMatrix::try_new(n, n, colptr, rows, vec![1.0; n]).unwrap()
    }

    #[test]
    fn streamed_equals_one_shot() {
        let mats: Vec<CscMatrix<f64>> = (0..23).map(|i| shifted_diag(16, i % 5)).collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let oneshot = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();

        let mut acc = StreamingAccumulator::with_defaults(16, 16, 4);
        for m in &mats {
            acc.push(m.clone()).unwrap();
        }
        assert_eq!(acc.matrices_seen(), 23);
        assert_eq!(acc.batches_flushed(), 5, "23 pushes = 5 full batches");
        assert_eq!(acc.pending(), 3);
        let streamed = acc.finish().unwrap();
        assert!(streamed.approx_eq(&oneshot, 1e-12));
    }

    #[test]
    fn peak_pending_is_bounded() {
        let mut acc = StreamingAccumulator::with_defaults(8, 8, 3);
        for i in 0..10 {
            acc.push(shifted_diag(8, i)).unwrap();
            assert!(acc.pending() < 3, "batch must flush at capacity");
        }
    }

    #[test]
    fn nnz_budget_flushes_on_entry_pressure() {
        // Budget of 20 entries: each 8×8 shifted diagonal has 8 nnz, so
        // every third push crosses the budget and flushes.
        let mut acc = StreamingAccumulator::with_policy(
            8,
            8,
            FlushPolicy::Nnz(20),
            Algorithm::Hash,
            Options::default(),
        );
        acc.push(shifted_diag(8, 0)).unwrap();
        acc.push(shifted_diag(8, 1)).unwrap();
        assert_eq!(acc.pending(), 2, "16 < 20 entries: still buffered");
        assert_eq!(acc.pending_nnz(), 16);
        acc.push(shifted_diag(8, 2)).unwrap();
        assert_eq!(acc.pending(), 0, "24 >= 20 entries: flushed");
        assert_eq!(acc.pending_nnz(), 0);
        assert_eq!(acc.batches_flushed(), 1);
        let total = acc.finish().unwrap();
        assert_eq!(
            total.nnz(),
            24,
            "3 distinct shifted diagonals never overlap"
        );
    }

    #[test]
    fn unsorted_output_options_do_not_corrupt_the_merge() {
        // Regression: with the caller preferring unsorted output, batch
        // sums must still be sorted internally or the add_pair streaming
        // merge mis-sums. Force several flushes and check exactness.
        let mats: Vec<CscMatrix<f64>> = (0..9).map(|i| shifted_diag(16, i % 4)).collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let oneshot = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        let mut acc = StreamingAccumulator::new(
            16,
            16,
            2,
            Algorithm::Hash,
            Options::default().unsorted_output(),
        );
        for m in &mats {
            acc.push(m.clone()).unwrap();
        }
        assert!(acc.batches_flushed() >= 4, "multiple merges exercised");
        let streamed = acc.finish().unwrap();
        assert!(streamed.approx_eq(&oneshot, 0.0));
    }

    #[test]
    fn empty_matrices_do_not_accumulate() {
        // Regression: zero-nnz pushes (a shard outside a skewed stream's
        // row range) must not grow `pending` — the nnz budget would never
        // trigger and memory would grow without bound.
        let mut acc = StreamingAccumulator::<f64>::with_policy(
            8,
            8,
            FlushPolicy::CacheBudget { sharers: 1 },
            Algorithm::Hash,
            Options::default(),
        );
        for _ in 0..10_000 {
            acc.push(CscMatrix::zeros(8, 8)).unwrap();
        }
        assert_eq!(acc.pending(), 0);
        assert_eq!(acc.pending_nnz(), 0);
        assert_eq!(acc.matrices_seen(), 10_000);
        acc.push(shifted_diag(8, 1)).unwrap();
        let total = acc.finish().unwrap();
        assert_eq!(total.nnz(), 8, "zeros contribute nothing");
    }

    #[test]
    fn cache_budget_policy_resolves_to_paper_formula() {
        let mut opts = Options::default();
        opts.cache.llc_bytes = 12_000; // 1000 f64 entries at 12 B each
        let (mats, nnz) = FlushPolicy::CacheBudget { sharers: 4 }.budgets::<f64>(&opts);
        assert_eq!(mats, usize::MAX);
        assert_eq!(nnz, 250, "M / (b · sharers) = 12000 / (12 · 4)");
    }

    #[test]
    fn rejects_wrong_shapes() {
        let mut acc = StreamingAccumulator::<f64>::with_defaults(8, 8, 4);
        assert!(acc.push(CscMatrix::zeros(9, 8)).is_err());
        assert!(acc.push(CscMatrix::zeros(8, 8)).is_ok());
    }

    #[test]
    fn empty_stream_yields_zero_matrix() {
        let acc = StreamingAccumulator::<f64>::with_defaults(5, 7, 4);
        let out = acc.finish().unwrap();
        assert_eq!(out.shape(), (5, 7));
        assert_eq!(out.nnz(), 0);
    }

    #[test]
    fn current_reflects_flushed_prefix() {
        let mut acc = StreamingAccumulator::with_defaults(8, 8, 2);
        assert!(acc.current().is_none());
        acc.push(shifted_diag(8, 0)).unwrap();
        acc.push(shifted_diag(8, 0)).unwrap(); // flush happens here
        let current = acc.current().unwrap();
        assert_eq!(
            DenseMatrix::from_csc(current).get(0, 0),
            2.0,
            "two diagonals accumulated"
        );
    }

    #[test]
    fn flushes_route_through_one_retained_plan() {
        let mut acc = StreamingAccumulator::with_defaults(16, 16, 2);
        assert!(acc.plan().is_none(), "plan is built on first flush");
        acc.push(shifted_diag(16, 0)).unwrap();
        acc.push(shifted_diag(16, 1)).unwrap(); // first flush
        let after_first = acc.plan().unwrap().workspace_allocations();
        assert!(after_first > 0);
        for i in 2..8 {
            acc.push(shifted_diag(16, i)).unwrap();
        }
        assert_eq!(acc.batches_flushed(), 4);
        let plan = acc.plan().unwrap();
        assert_eq!(plan.executions(), 4, "every flush went through the plan");
        assert_eq!(
            plan.workspace_allocations(),
            after_first,
            "steady-shape flushes reuse the workspaces"
        );
    }

    #[test]
    fn explicit_flush_with_partial_batch() {
        let mut acc = StreamingAccumulator::with_defaults(8, 8, 100);
        acc.push(shifted_diag(8, 1)).unwrap();
        acc.flush().unwrap();
        assert_eq!(acc.batches_flushed(), 1);
        acc.flush().unwrap(); // idempotent on empty pending
        assert_eq!(acc.batches_flushed(), 1);
    }
}
