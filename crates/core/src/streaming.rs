//! Streaming (batched) SpKAdd — the paper's closing future-work note made
//! concrete: "when [all matrices do not fit in memory] we can still
//! arrange input matrices in multiple batches and then use SpKAdd for
//! each batch".
//!
//! [`StreamingAccumulator`] holds at most `batch_size` pending matrices.
//! When the batch fills (or [`StreamingAccumulator::flush`] is called),
//! the batch is reduced with a k-way SpKAdd and folded into the running
//! total with one 2-way merge. Peak memory is therefore
//! O(batch · max nnz + nnz(total)) instead of O(Σ nnz), at the cost of
//! one extra 2-way pass per batch.

use crate::parallel::Scheduling;
use crate::twoway::add_pair;
use crate::{spkadd_with, Algorithm, Options, SpkaddError};
use spk_sparse::{CscMatrix, Scalar, SparseError};

/// Incrementally accumulates a stream of same-shape sparse matrices.
#[derive(Debug)]
pub struct StreamingAccumulator<T: Scalar> {
    shape: (usize, usize),
    batch_size: usize,
    algorithm: Algorithm,
    opts: Options,
    pending: Vec<CscMatrix<T>>,
    total: Option<CscMatrix<T>>,
    batches_flushed: usize,
    matrices_seen: usize,
}

impl<T: Scalar> StreamingAccumulator<T> {
    /// A new accumulator for `nrows × ncols` matrices, reducing every
    /// `batch_size` arrivals with `algorithm`.
    pub fn new(
        nrows: usize,
        ncols: usize,
        batch_size: usize,
        algorithm: Algorithm,
        opts: Options,
    ) -> Self {
        Self {
            shape: (nrows, ncols),
            batch_size: batch_size.max(1),
            algorithm,
            opts,
            pending: Vec::new(),
            total: None,
            batches_flushed: 0,
            matrices_seen: 0,
        }
    }

    /// Convenience constructor: hash SpKAdd with default options.
    pub fn with_defaults(nrows: usize, ncols: usize, batch_size: usize) -> Self {
        Self::new(nrows, ncols, batch_size, Algorithm::Hash, Options::default())
    }

    /// Number of matrices accepted so far.
    pub fn matrices_seen(&self) -> usize {
        self.matrices_seen
    }

    /// Number of batch reductions performed so far.
    pub fn batches_flushed(&self) -> usize {
        self.batches_flushed
    }

    /// Matrices buffered but not yet reduced.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accepts one matrix; reduces the batch when it reaches capacity.
    pub fn push(&mut self, m: CscMatrix<T>) -> Result<(), SpkaddError> {
        if m.shape() != self.shape {
            return Err(SpkaddError::Sparse(SparseError::DimensionMismatch {
                expected: self.shape,
                found: m.shape(),
                operand: self.matrices_seen,
            }));
        }
        self.pending.push(m);
        self.matrices_seen += 1;
        if self.pending.len() >= self.batch_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Reduces the pending batch into the running total now.
    pub fn flush(&mut self) -> Result<(), SpkaddError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let refs: Vec<&CscMatrix<T>> = self.pending.iter().collect();
        let batch_sum = spkadd_with(&refs, self.algorithm, &self.opts)?;
        self.pending.clear();
        self.batches_flushed += 1;
        self.total = Some(match self.total.take() {
            None => batch_sum,
            Some(acc) => {
                // The running total and the batch sum are both sorted
                // canonical outputs, so the streaming merge is one linear
                // 2-way pass.
                add_pair(&acc, &batch_sum, self.opts.threads, Scheduling::default())
            }
        });
        Ok(())
    }

    /// A read-only view of the running total (pending matrices excluded).
    pub fn current(&self) -> Option<&CscMatrix<T>> {
        self.total.as_ref()
    }

    /// Flushes any pending batch and returns the final sum. An empty
    /// stream yields the all-zero matrix of the configured shape.
    pub fn finish(mut self) -> Result<CscMatrix<T>, SpkaddError> {
        self.flush()?;
        Ok(self
            .total
            .unwrap_or_else(|| CscMatrix::zeros(self.shape.0, self.shape.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spk_sparse::DenseMatrix;

    fn shifted_diag(n: usize, s: u32) -> CscMatrix<f64> {
        let colptr = (0..=n).collect();
        let rows = (0..n as u32).map(|j| (j + s) % n as u32).collect();
        CscMatrix::try_new(n, n, colptr, rows, vec![1.0; n]).unwrap()
    }

    #[test]
    fn streamed_equals_one_shot() {
        let mats: Vec<CscMatrix<f64>> = (0..23).map(|i| shifted_diag(16, i % 5)).collect();
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let oneshot = spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();

        let mut acc = StreamingAccumulator::with_defaults(16, 16, 4);
        for m in &mats {
            acc.push(m.clone()).unwrap();
        }
        assert_eq!(acc.matrices_seen(), 23);
        assert_eq!(acc.batches_flushed(), 5, "23 pushes = 5 full batches");
        assert_eq!(acc.pending(), 3);
        let streamed = acc.finish().unwrap();
        assert!(streamed.approx_eq(&oneshot, 1e-12));
    }

    #[test]
    fn peak_pending_is_bounded() {
        let mut acc = StreamingAccumulator::with_defaults(8, 8, 3);
        for i in 0..10 {
            acc.push(shifted_diag(8, i)).unwrap();
            assert!(acc.pending() < 3, "batch must flush at capacity");
        }
    }

    #[test]
    fn rejects_wrong_shapes() {
        let mut acc = StreamingAccumulator::<f64>::with_defaults(8, 8, 4);
        assert!(acc.push(CscMatrix::zeros(9, 8)).is_err());
        assert!(acc.push(CscMatrix::zeros(8, 8)).is_ok());
    }

    #[test]
    fn empty_stream_yields_zero_matrix() {
        let acc = StreamingAccumulator::<f64>::with_defaults(5, 7, 4);
        let out = acc.finish().unwrap();
        assert_eq!(out.shape(), (5, 7));
        assert_eq!(out.nnz(), 0);
    }

    #[test]
    fn current_reflects_flushed_prefix() {
        let mut acc = StreamingAccumulator::with_defaults(8, 8, 2);
        assert!(acc.current().is_none());
        acc.push(shifted_diag(8, 0)).unwrap();
        acc.push(shifted_diag(8, 0)).unwrap(); // flush happens here
        let current = acc.current().unwrap();
        assert_eq!(
            DenseMatrix::from_csc(current).get(0, 0),
            2.0,
            "two diagonals accumulated"
        );
    }

    #[test]
    fn explicit_flush_with_partial_batch() {
        let mut acc = StreamingAccumulator::with_defaults(8, 8, 100);
        acc.push(shifted_diag(8, 1)).unwrap();
        acc.flush().unwrap();
        assert_eq!(acc.batches_flushed(), 1);
        acc.flush().unwrap(); // idempotent on empty pending
        assert_eq!(acc.batches_flushed(), 1);
    }
}
