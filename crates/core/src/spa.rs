//! Sparse accumulator (SPA) — Algorithm 4 of the paper.
//!
//! A SPA is a dense array of length `m` (the number of matrix rows) plus a
//! list of touched indices. The paper represents validity with the `idx`
//! membership list; this implementation uses the classic *generation
//! stamp* refinement (one `u32` epoch per slot) so that clearing between
//! columns is O(entries touched) rather than O(m), while the O(m) memory
//! footprint the paper analyses — the SPA's defining cost at high thread
//! counts, Fig 3 — is preserved (in fact made explicit: `2·m` words per
//! thread-private SPA).

use crate::mem::MemModel;
use crate::monoid::{Monoid, Plus};
use spk_sparse::{ColView, Element, Scalar};

/// Thread-private sparse accumulator over `m` rows.
#[derive(Debug, Clone)]
pub struct Spa<T> {
    vals: Vec<T>,
    stamps: Vec<u32>,
    epoch: u32,
    idx: Vec<u32>,
}

impl<T: Element> Spa<T> {
    /// A SPA for matrices with `m` rows.
    pub fn new(m: usize) -> Self {
        Self {
            vals: vec![T::default(); m],
            stamps: vec![0; m],
            epoch: 1,
            idx: Vec::new(),
        }
    }

    /// Number of rows this SPA covers.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.vals.len()
    }

    /// Number of distinct rows touched in the current column.
    #[inline]
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// `true` when the current column has no entries yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Scatters `v` into row `r`, folding with `monoid` on repeat touches
    /// (Alg 4 lines 5–7, generalized from `+=`).
    #[inline]
    pub fn scatter_combine<O: Monoid<Value = T>, M: MemModel>(
        &mut self,
        r: u32,
        v: T,
        monoid: O,
        mem: &mut M,
    ) {
        let ri = r as usize;
        debug_assert!(ri < self.vals.len(), "row index out of SPA range");
        mem.op(1);
        mem.read(self.stamps.as_ptr() as usize + ri * 4, 4);
        if self.stamps[ri] == self.epoch {
            mem.read(
                self.vals.as_ptr() as usize + ri * std::mem::size_of::<T>(),
                std::mem::size_of::<T>(),
            );
            monoid.combine(&mut self.vals[ri], v);
        } else {
            self.stamps[ri] = self.epoch;
            self.vals[ri] = v;
            self.idx.push(r);
            mem.write(self.stamps.as_ptr() as usize + ri * 4, 4);
        }
        mem.write(
            self.vals.as_ptr() as usize + ri * std::mem::size_of::<T>(),
            std::mem::size_of::<T>(),
        );
    }

    /// Marks row `r` as touched without consuming a value — the symbolic
    /// phase's scatter. Issues the same memory traffic as
    /// [`Spa::scatter_combine`] so the instrumentation models observe an
    /// identical address stream, but never reads a value: symbolic output
    /// structure is monoid-independent.
    #[inline]
    pub fn scatter_mark<M: MemModel>(&mut self, r: u32, mem: &mut M) {
        let ri = r as usize;
        debug_assert!(ri < self.vals.len(), "row index out of SPA range");
        mem.op(1);
        mem.read(self.stamps.as_ptr() as usize + ri * 4, 4);
        if self.stamps[ri] == self.epoch {
            mem.read(
                self.vals.as_ptr() as usize + ri * std::mem::size_of::<T>(),
                std::mem::size_of::<T>(),
            );
        } else {
            self.stamps[ri] = self.epoch;
            self.idx.push(r);
            mem.write(self.stamps.as_ptr() as usize + ri * 4, 4);
        }
        mem.write(
            self.vals.as_ptr() as usize + ri * std::mem::size_of::<T>(),
            std::mem::size_of::<T>(),
        );
    }

    /// Emits the accumulated column (Alg 4 lines 8–10), optionally sorting
    /// the index list first, advances the epoch, and returns the entry
    /// count. Entries failing [`Monoid::keep`] are dropped at this flush
    /// point (compiled out for monoids that never filter).
    pub fn drain_into_with<O: Monoid<Value = T>, M: MemModel>(
        &mut self,
        out_rows: &mut [u32],
        out_vals: &mut [T],
        sorted: bool,
        monoid: O,
        mem: &mut M,
    ) -> usize {
        if sorted {
            self.idx.sort_unstable();
        }
        let n = self.idx.len();
        let mut written = 0usize;
        for &r in self.idx.iter() {
            let v = self.vals[r as usize];
            mem.read(
                self.vals.as_ptr() as usize + r as usize * std::mem::size_of::<T>(),
                std::mem::size_of::<T>(),
            );
            if O::MAY_FILTER && !monoid.keep(&v) {
                continue;
            }
            out_rows[written] = r;
            out_vals[written] = v;
            mem.write(out_rows.as_ptr() as usize + written * 4, 4);
            mem.write(
                out_vals.as_ptr() as usize + written * std::mem::size_of::<T>(),
                std::mem::size_of::<T>(),
            );
            written += 1;
        }
        mem.op(n as u64);
        debug_assert!(out_rows.len() >= written && out_vals.len() >= written);
        self.idx.clear();
        self.advance_epoch();
        written
    }

    /// Numeric-only emission for a pattern-cache hit: the output row
    /// order is already known, so each cached row's accumulated value is
    /// gathered directly — no sort of the touched-index list. Advances
    /// the epoch for the next column. Every row in `rows` must have been
    /// scattered this epoch (guaranteed when the cached structure matches
    /// the inputs and the monoid does not filter).
    pub fn gather_reset<M: MemModel>(&mut self, rows: &[u32], out_vals: &mut [T], mem: &mut M) {
        debug_assert_eq!(rows.len(), self.idx.len(), "cached structure stale");
        for (r, out) in rows.iter().zip(out_vals.iter_mut()) {
            let ri = *r as usize;
            debug_assert_eq!(self.stamps[ri], self.epoch, "cached row untouched");
            mem.read(
                self.vals.as_ptr() as usize + ri * std::mem::size_of::<T>(),
                std::mem::size_of::<T>(),
            );
            *out = self.vals[ri];
            mem.write(out as *const T as usize, std::mem::size_of::<T>());
        }
        mem.op(rows.len() as u64);
        self.idx.clear();
        self.advance_epoch();
    }

    /// Counts-only variant for the symbolic phase: number of distinct rows,
    /// then reset.
    pub fn drain_count(&mut self) -> usize {
        let n = self.idx.len();
        self.idx.clear();
        self.advance_epoch();
        n
    }

    fn advance_epoch(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrap: one O(m) wipe every 2³²−1 columns.
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

impl<T: Scalar> Spa<T> {
    /// Scatters `v` into row `r` — [`Spa::scatter_combine`] with the
    /// [`Plus`] monoid.
    #[inline]
    pub fn scatter<M: MemModel>(&mut self, r: u32, v: T, mem: &mut M) {
        self.scatter_combine(r, v, Plus::new(), mem);
    }

    /// Emits the accumulated column — [`Spa::drain_into_with`] with the
    /// [`Plus`] monoid.
    pub fn drain_into<M: MemModel>(
        &mut self,
        out_rows: &mut [u32],
        out_vals: &mut [T],
        sorted: bool,
        mem: &mut M,
    ) -> usize {
        self.drain_into_with(out_rows, out_vals, sorted, Plus::new(), mem)
    }
}

/// Sliding (row-partitioned) SPA addition for one column — the paper's
/// §IV-B(b) suggestion: "the benefits of sliding hash can also be
/// observed in the SPA algorithm if we partition the SPA array based on
/// row indices".
///
/// The dense accumulator covers only `budget_rows` rows at a time; the
/// row space is swept in `⌈m / budget_rows⌉` panels, each using the same
/// cache-resident SPA segment with indices rebased to the panel. Requires
/// `spa.num_rows() ≥ min(m, budget_rows)`. Sorted inputs use binary-search
/// panelling; unsorted inputs use the shared bucketing scratch.
#[allow(clippy::too_many_arguments)]
pub fn sliding_spa_add_column<T: Scalar, M: MemModel>(
    cols: &[ColView<'_, T>],
    m: usize,
    budget_rows: usize,
    spa: &mut Spa<T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    sorted: bool,
    inputs_sorted: bool,
    scratch: &mut crate::sliding::SlidingScratch<T>,
    mem: &mut M,
) -> usize {
    sliding_spa_add_column_with(
        cols,
        m,
        budget_rows,
        spa,
        out_rows,
        out_vals,
        sorted,
        inputs_sorted,
        Plus::new(),
        scratch,
        mem,
    )
}

/// Monoid-generic sliding SPA addition — see
/// [`sliding_spa_add_column`], which is this with [`Plus`].
#[allow(clippy::too_many_arguments)]
pub fn sliding_spa_add_column_with<T: Element, O: Monoid<Value = T>, M: MemModel>(
    cols: &[ColView<'_, T>],
    m: usize,
    budget_rows: usize,
    spa: &mut Spa<T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    sorted: bool,
    inputs_sorted: bool,
    monoid: O,
    scratch: &mut crate::sliding::SlidingScratch<T>,
    mem: &mut M,
) -> usize {
    let budget_rows = budget_rows.max(1);
    let parts = m.div_ceil(budget_rows).max(1);
    if parts == 1 {
        let mut written = 0usize;
        for col in cols {
            for (r, v) in col.iter() {
                spa.scatter_combine(r, v, monoid, mem);
            }
        }
        written += spa.drain_into_with(out_rows, out_vals, sorted, monoid, mem);
        return written;
    }
    debug_assert!(spa.num_rows() >= budget_rows);
    let mut written = 0usize;
    if inputs_sorted {
        for p in 0..parts {
            let r1 = ((p as u64 * m as u64) / parts as u64) as u32;
            let r2 = (((p + 1) as u64 * m as u64) / parts as u64) as u32;
            for col in cols {
                for (r, v) in col.row_range(r1, r2).iter() {
                    spa.scatter_combine(r - r1, v, monoid, mem);
                }
            }
            let n = spa.drain_into_with(
                &mut out_rows[written..],
                &mut out_vals[written..],
                sorted,
                monoid,
                mem,
            );
            // Rebase panel-local rows to global indices.
            for slot in &mut out_rows[written..written + n] {
                *slot += r1;
            }
            written += n;
        }
    } else {
        scratch.prepare_parts(parts);
        let bounds: Vec<u32> = (0..=parts)
            .map(|i| ((i as u64 * m as u64) / parts as u64) as u32)
            .collect();
        for col in cols {
            for (r, v) in col.iter() {
                let p = bounds.partition_point(|&b| b <= r) - 1;
                scratch.push(p, r, v);
            }
        }
        for (p, &r1) in bounds[..parts].iter().enumerate() {
            let (rows, vals) = scratch.part(p);
            for (r, v) in rows.iter().zip(vals) {
                spa.scatter_combine(*r - r1, *v, monoid, mem);
            }
            let n = spa.drain_into_with(
                &mut out_rows[written..],
                &mut out_vals[written..],
                sorted,
                monoid,
                mem,
            );
            for slot in &mut out_rows[written..written + n] {
                *slot += r1;
            }
            written += n;
        }
    }
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NullModel;

    #[test]
    fn scatter_accumulates_and_drains_sorted() {
        let mut spa = Spa::<f64>::new(10);
        let mut mem = NullModel;
        spa.scatter(7, 1.0, &mut mem);
        spa.scatter(2, 2.0, &mut mem);
        spa.scatter(7, 3.0, &mut mem);
        assert_eq!(spa.len(), 2);
        let mut rows = [0u32; 2];
        let mut vals = [0.0f64; 2];
        let n = spa.drain_into(&mut rows, &mut vals, true, &mut mem);
        assert_eq!(n, 2);
        assert_eq!(rows, [2, 7]);
        assert_eq!(vals, [2.0, 4.0]);
    }

    #[test]
    fn unsorted_drain_preserves_first_touch_order() {
        let mut spa = Spa::<f64>::new(10);
        let mut mem = NullModel;
        spa.scatter(7, 1.0, &mut mem);
        spa.scatter(2, 2.0, &mut mem);
        let mut rows = [0u32; 2];
        let mut vals = [0.0f64; 2];
        spa.drain_into(&mut rows, &mut vals, false, &mut mem);
        assert_eq!(rows, [7, 2]);
    }

    #[test]
    fn epoch_isolates_columns() {
        let mut spa = Spa::<f64>::new(4);
        let mut mem = NullModel;
        spa.scatter(1, 5.0, &mut mem);
        let mut rows = [0u32; 1];
        let mut vals = [0.0f64; 1];
        spa.drain_into(&mut rows, &mut vals, true, &mut mem);
        // Next column: row 1 must start from zero, not 5.0.
        spa.scatter(1, 2.0, &mut mem);
        spa.drain_into(&mut rows, &mut vals, true, &mut mem);
        assert_eq!(vals[0], 2.0);
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let mut spa = Spa::<f64>::new(2);
        spa.epoch = u32::MAX; // force the wrap path
        let mut mem = NullModel;
        spa.scatter(0, 1.0, &mut mem);
        let mut rows = [0u32; 1];
        let mut vals = [0.0f64; 1];
        spa.drain_into(&mut rows, &mut vals, true, &mut mem);
        assert_eq!(spa.epoch, 1);
        // Stale stamp (u32::MAX) must not be considered valid after reset.
        spa.scatter(0, 9.0, &mut mem);
        spa.drain_into(&mut rows, &mut vals, true, &mut mem);
        assert_eq!(vals[0], 9.0);
    }

    #[test]
    fn sliding_spa_matches_plain_spa() {
        use crate::sliding::SlidingScratch;
        let m = 64usize;
        let r1: Vec<u32> = (0..64).step_by(2).collect();
        let v1 = vec![1.0f64; r1.len()];
        let r2: Vec<u32> = (0..64).step_by(3).collect();
        let v2 = vec![2.0f64; r2.len()];
        let cols = vec![
            ColView {
                rows: &r1,
                vals: &v1,
            },
            ColView {
                rows: &r2,
                vals: &v2,
            },
        ];
        let mut mem = NullModel;
        // Plain SPA reference.
        let mut plain = Spa::<f64>::new(m);
        let mut ref_rows = vec![0u32; 64];
        let mut ref_vals = vec![0.0f64; 64];
        for col in &cols {
            for (r, v) in col.iter() {
                plain.scatter(r, v, &mut mem);
            }
        }
        let n_ref = plain.drain_into(&mut ref_rows, &mut ref_vals, true, &mut mem);

        // Sliding SPA with an 8-row panel, both panelling paths.
        let mut scratch = SlidingScratch::new();
        for inputs_sorted in [true, false] {
            let mut spa = Spa::<f64>::new(8);
            let mut rows = vec![0u32; n_ref];
            let mut vals = vec![0.0f64; n_ref];
            let n = sliding_spa_add_column(
                &cols,
                m,
                8,
                &mut spa,
                &mut rows,
                &mut vals,
                true,
                inputs_sorted,
                &mut scratch,
                &mut mem,
            );
            assert_eq!(n, n_ref, "sorted={inputs_sorted}");
            assert_eq!(&rows[..], &ref_rows[..n_ref]);
            assert_eq!(&vals[..], &ref_vals[..n_ref]);
        }
    }

    #[test]
    fn sliding_spa_single_panel_fallback() {
        use crate::sliding::SlidingScratch;
        let rows_in: Vec<u32> = vec![1, 5, 9];
        let vals_in = vec![1.0f64, 2.0, 3.0];
        let cols = vec![ColView {
            rows: &rows_in,
            vals: &vals_in,
        }];
        let mut spa = Spa::<f64>::new(16);
        let mut rows = vec![0u32; 3];
        let mut vals = vec![0.0f64; 3];
        let n = sliding_spa_add_column(
            &cols,
            16,
            1 << 20,
            &mut spa,
            &mut rows,
            &mut vals,
            true,
            true,
            &mut SlidingScratch::new(),
            &mut NullModel,
        );
        assert_eq!(n, 3);
        assert_eq!(rows, vec![1, 5, 9]);
    }

    #[test]
    fn drain_count_matches_distinct_rows() {
        let mut spa = Spa::<f64>::new(8);
        let mut mem = NullModel;
        for r in [1u32, 1, 2, 3, 3, 3] {
            spa.scatter(r, 1.0, &mut mem);
        }
        assert_eq!(spa.drain_count(), 3);
        assert_eq!(spa.len(), 0);
    }
}
