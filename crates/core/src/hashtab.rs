//! Open-addressing hash accumulators — the data structure behind the
//! paper's winning HashSpKAdd algorithm (Algorithms 5 and 6).
//!
//! Both tables use the paper's multiplicative masking scheme
//! `HASH(r) = (a · r) & (2^q − 1)` with a prime multiplier `a` and a
//! power-of-two table of size `2^q`, resolving collisions by linear
//! probing. The numeric table ([`HashAccumulator`]) stores `(row, value)`
//! pairs; the symbolic table ([`SymbolicHashTable`]) stores row keys only
//! (4 bytes per entry vs 4 + sizeof(T), which is why the paper's symbolic
//! phase benefits from the sliding scheme earlier — §III-B).
//!
//! One deviation from the paper's pseudocode, standard in production hash
//! SpGEMM codes: instead of re-scanning the whole table to emit the output
//! column (Alg 5 line 13), the tables keep a list of occupied slots, so
//! emission and reset cost O(nnz of the column), not O(table capacity).
//! The table can therefore be sized once per task and reused across
//! columns without an O(capacity) wipe per column.

use crate::mem::MemModel;
use crate::monoid::{Monoid, Plus};
use spk_sparse::{Element, Scalar};

/// The paper's prime multiplier `a`. 2654435761 = ⌊2³²/φ⌋ (Knuth's
/// multiplicative constant), which is prime and spreads consecutive row
/// indices across the table.
pub const HASH_PRIME: u32 = 2_654_435_761;

/// Sentinel row key marking an empty slot (`-1` in the paper's i32 tables).
pub const EMPTY_KEY: u32 = u32::MAX;

/// Multiplicative hash of a row index into a table of size `mask + 1`.
#[inline(always)]
pub fn hash_row(r: u32, mask: usize) -> usize {
    (r.wrapping_mul(HASH_PRIME)) as usize & mask
}

/// Smallest valid table capacity.
const MIN_CAPACITY: usize = 4;

/// Returns the paper's table size for an expected entry count: the smallest
/// power of two *strictly greater* than `entries` (Alg 5 line 2).
#[inline]
pub fn table_size_for(entries: usize) -> usize {
    (entries + 1).next_power_of_two().max(MIN_CAPACITY)
}

/// Numeric-phase hash table: accumulates `(row, value)` pairs (Alg 5).
#[derive(Debug, Clone)]
pub struct HashAccumulator<T> {
    keys: Vec<u32>,
    vals: Vec<T>,
    occupied: Vec<u32>,
    mask: usize,
    /// Scratch for sorted emission, reused across columns.
    sort_scratch: Vec<(u32, T)>,
}

impl<T: Element> HashAccumulator<T> {
    /// A table able to hold at least `entries` rows.
    pub fn with_capacity(entries: usize) -> Self {
        let cap = table_size_for(entries);
        Self {
            keys: vec![EMPTY_KEY; cap],
            vals: vec![T::default(); cap],
            occupied: Vec::with_capacity(entries.min(1 << 20)),
            mask: cap - 1,
            sort_scratch: Vec::new(),
        }
    }

    /// Current capacity (a power of two).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Number of distinct rows currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// `true` when no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Resizes so at least `entries` rows fit: grows when too small,
    /// shrinks when oversized by 4× or more (so a table grown for one
    /// outlier sliding panel returns to the cache budget afterwards). The
    /// table must be empty — this is a between-columns operation.
    pub fn reserve_for(&mut self, entries: usize) {
        debug_assert!(self.occupied.is_empty(), "reserve_for on non-empty table");
        let want = table_size_for(entries);
        if want > self.capacity() || want * 4 <= self.capacity() {
            self.keys = vec![EMPTY_KEY; want];
            self.vals = vec![T::default(); want];
            self.mask = want - 1;
        }
    }

    /// Inserts `v` at row `r`, folding with `monoid` if the row is
    /// present (Alg 5 lines 5–12, generalized from `+=` to any
    /// commutative monoid — `insert_combine(…, Plus, …)` compiles to the
    /// exact loop the hard-coded addition produced).
    ///
    /// The table grows (doubling + rehash) when the load factor would
    /// exceed 7/8, so callers may size it by an *estimate* — the sliding
    /// algorithm reserves the cache budget and lets skewed panels grow
    /// past it only when they genuinely hold more distinct rows.
    #[inline]
    pub fn insert_combine<O: Monoid<Value = T>, M: MemModel>(
        &mut self,
        r: u32,
        v: T,
        monoid: O,
        mem: &mut M,
    ) {
        if (self.occupied.len() + 1) * 8 > self.capacity() * 7 {
            self.grow_rehash(mem);
        }
        let mut h = hash_row(r, self.mask);
        loop {
            mem.op(1);
            mem.read(self.keys.as_ptr() as usize + h * 4, 4);
            let k = self.keys[h];
            if k == EMPTY_KEY {
                self.keys[h] = r;
                self.vals[h] = v;
                self.occupied.push(h as u32);
                mem.write(self.keys.as_ptr() as usize + h * 4, 4);
                mem.write(
                    self.vals.as_ptr() as usize + h * std::mem::size_of::<T>(),
                    std::mem::size_of::<T>(),
                );
                return;
            } else if k == r {
                mem.read(
                    self.vals.as_ptr() as usize + h * std::mem::size_of::<T>(),
                    std::mem::size_of::<T>(),
                );
                monoid.combine(&mut self.vals[h], v);
                mem.write(
                    self.vals.as_ptr() as usize + h * std::mem::size_of::<T>(),
                    std::mem::size_of::<T>(),
                );
                return;
            }
            // Hash conflict: linear probing (Alg 5 line 11-12).
            h = (h + 1) & self.mask;
        }
    }

    /// Emits all stored `(row, value)` pairs into the output slices,
    /// optionally sorted by row (Alg 5 lines 13–15), resets the table for
    /// the next column, and returns the number of entries written.
    ///
    /// Entries failing [`Monoid::keep`] are dropped at this flush point;
    /// for monoids with `MAY_FILTER == false` the check is compiled out.
    pub fn drain_into_with<O: Monoid<Value = T>, M: MemModel>(
        &mut self,
        out_rows: &mut [u32],
        out_vals: &mut [T],
        sorted: bool,
        monoid: O,
        mem: &mut M,
    ) -> usize {
        let n = self.occupied.len();
        let mut written = 0usize;
        if sorted {
            self.sort_scratch.clear();
            for &slot in &self.occupied {
                let s = slot as usize;
                self.sort_scratch.push((self.keys[s], self.vals[s]));
                self.keys[s] = EMPTY_KEY;
            }
            self.sort_scratch.sort_unstable_by_key(|&(r, _)| r);
            mem.op(n as u64); // emission pass; sorting cost grows n lg n
            for &(r, v) in self.sort_scratch.iter() {
                if O::MAY_FILTER && !monoid.keep(&v) {
                    continue;
                }
                out_rows[written] = r;
                out_vals[written] = v;
                mem.write(out_rows.as_ptr() as usize + written * 4, 4);
                mem.write(
                    out_vals.as_ptr() as usize + written * std::mem::size_of::<T>(),
                    std::mem::size_of::<T>(),
                );
                written += 1;
            }
        } else {
            for &slot in self.occupied.iter() {
                let s = slot as usize;
                let (r, v) = (self.keys[s], self.vals[s]);
                self.keys[s] = EMPTY_KEY;
                if O::MAY_FILTER && !monoid.keep(&v) {
                    continue;
                }
                out_rows[written] = r;
                out_vals[written] = v;
                mem.write(out_rows.as_ptr() as usize + written * 4, 4);
                mem.write(
                    out_vals.as_ptr() as usize + written * std::mem::size_of::<T>(),
                    std::mem::size_of::<T>(),
                );
                written += 1;
            }
            mem.op(n as u64);
        }
        debug_assert!(out_rows.len() >= written && out_vals.len() >= written);
        self.occupied.clear();
        written
    }

    /// Numeric-only emission for a pattern-cache hit: the output row
    /// order is already known (cached from a cold execution of the same
    /// structure), so instead of draining in hash-table order and
    /// sorting, each cached row is probed and its accumulated value
    /// copied out — O(nnz) with no sort, regardless of output ordering.
    /// Resets the table for the next column.
    ///
    /// Every row in `rows` must be present (the cached structure is the
    /// exact set union of the inputs, and the caller only takes this path
    /// for non-filtering monoids).
    pub fn gather_reset<M: MemModel>(&mut self, rows: &[u32], out_vals: &mut [T], mem: &mut M) {
        debug_assert_eq!(rows.len(), self.occupied.len(), "cached structure stale");
        for (r, out) in rows.iter().zip(out_vals.iter_mut()) {
            let mut h = hash_row(*r, self.mask);
            loop {
                mem.op(1);
                mem.read(self.keys.as_ptr() as usize + h * 4, 4);
                let k = self.keys[h];
                if k == *r {
                    *out = self.vals[h];
                    mem.read(
                        self.vals.as_ptr() as usize + h * std::mem::size_of::<T>(),
                        std::mem::size_of::<T>(),
                    );
                    break;
                }
                // The load factor never exceeds 7/8, so an absent row's
                // probe chain always ends at an empty slot instead of
                // cycling — unreachable unless the cached structure is
                // stale (guarded by the fingerprint).
                debug_assert_ne!(k, EMPTY_KEY, "cached row absent from table");
                if k == EMPTY_KEY {
                    *out = T::default();
                    break;
                }
                h = (h + 1) & self.mask;
            }
            mem.write(out as *const T as usize, std::mem::size_of::<T>());
        }
        self.clear();
    }

    /// Clears without emitting (error-recovery path).
    pub fn clear(&mut self) {
        for &slot in &self.occupied {
            self.keys[slot as usize] = EMPTY_KEY;
        }
        self.occupied.clear();
    }

    /// Doubles the capacity and rehashes the live entries.
    #[cold]
    fn grow_rehash<M: MemModel>(&mut self, mem: &mut M) {
        let new_cap = self.capacity() * 2;
        let mask = new_cap - 1;
        let mut keys = vec![EMPTY_KEY; new_cap];
        let mut vals = vec![T::default(); new_cap];
        let mut occupied = Vec::with_capacity(self.occupied.len() + 16);
        for &slot in &self.occupied {
            let (r, v) = (self.keys[slot as usize], self.vals[slot as usize]);
            let mut h = hash_row(r, mask);
            while keys[h] != EMPTY_KEY {
                h = (h + 1) & mask;
            }
            keys[h] = r;
            vals[h] = v;
            occupied.push(h as u32);
            mem.op(1);
            mem.write(keys.as_ptr() as usize + h * 4, 4);
            mem.write(
                vals.as_ptr() as usize + h * std::mem::size_of::<T>(),
                std::mem::size_of::<T>(),
            );
        }
        self.keys = keys;
        self.vals = vals;
        self.mask = mask;
        self.occupied = occupied;
    }
}

impl<T: Scalar> HashAccumulator<T> {
    /// Inserts `v` at row `r`, accumulating if the row is present —
    /// [`HashAccumulator::insert_combine`] with the [`Plus`] monoid.
    #[inline]
    pub fn insert_add<M: MemModel>(&mut self, r: u32, v: T, mem: &mut M) {
        self.insert_combine(r, v, Plus::new(), mem);
    }

    /// Emits all stored `(row, value)` pairs —
    /// [`HashAccumulator::drain_into_with`] with the [`Plus`] monoid.
    pub fn drain_into<M: MemModel>(
        &mut self,
        out_rows: &mut [u32],
        out_vals: &mut [T],
        sorted: bool,
        mem: &mut M,
    ) -> usize {
        self.drain_into_with(out_rows, out_vals, sorted, Plus::new(), mem)
    }
}

/// Symbolic-phase hash table: row keys only, counts distinct rows (Alg 6).
#[derive(Debug, Clone)]
pub struct SymbolicHashTable {
    keys: Vec<u32>,
    occupied: Vec<u32>,
    mask: usize,
}

impl SymbolicHashTable {
    /// A table able to hold at least `entries` distinct rows.
    pub fn with_capacity(entries: usize) -> Self {
        let cap = table_size_for(entries);
        Self {
            keys: vec![EMPTY_KEY; cap],
            occupied: Vec::with_capacity(entries.min(1 << 20)),
            mask: cap - 1,
        }
    }

    /// Current capacity (a power of two).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Number of distinct rows seen since the last reset.
    #[inline]
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// `true` when no rows are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Resizes so at least `entries` rows fit (grows when too small,
    /// shrinks when ≥4× oversized); table must be empty.
    pub fn reserve_for(&mut self, entries: usize) {
        debug_assert!(self.occupied.is_empty(), "reserve_for on non-empty table");
        let want = table_size_for(entries);
        if want > self.capacity() || want * 4 <= self.capacity() {
            self.keys = vec![EMPTY_KEY; want];
            self.mask = want - 1;
        }
    }

    /// Registers row `r`; returns `true` the first time `r` is seen
    /// (Alg 6 lines 6–12). Grows at load factor 7/8 like
    /// [`HashAccumulator::insert_add`].
    #[inline]
    pub fn insert<M: MemModel>(&mut self, r: u32, mem: &mut M) -> bool {
        if (self.occupied.len() + 1) * 8 > self.capacity() * 7 {
            self.grow_rehash(mem);
        }
        let mut h = hash_row(r, self.mask);
        loop {
            mem.op(1);
            mem.read(self.keys.as_ptr() as usize + h * 4, 4);
            let k = self.keys[h];
            if k == EMPTY_KEY {
                self.keys[h] = r;
                self.occupied.push(h as u32);
                mem.write(self.keys.as_ptr() as usize + h * 4, 4);
                return true;
            } else if k == r {
                return false;
            }
            h = (h + 1) & self.mask;
        }
    }

    /// Resets for the next column in O(distinct rows).
    pub fn reset(&mut self) {
        for &slot in &self.occupied {
            self.keys[slot as usize] = EMPTY_KEY;
        }
        self.occupied.clear();
    }

    /// Doubles the capacity and rehashes the live keys.
    #[cold]
    fn grow_rehash<M: MemModel>(&mut self, mem: &mut M) {
        let new_cap = self.capacity() * 2;
        let mask = new_cap - 1;
        let mut keys = vec![EMPTY_KEY; new_cap];
        let mut occupied = Vec::with_capacity(self.occupied.len() + 16);
        for &slot in &self.occupied {
            let r = self.keys[slot as usize];
            let mut h = hash_row(r, mask);
            while keys[h] != EMPTY_KEY {
                h = (h + 1) & mask;
            }
            keys[h] = r;
            occupied.push(h as u32);
            mem.op(1);
            mem.write(keys.as_ptr() as usize + h * 4, 4);
        }
        self.keys = keys;
        self.mask = mask;
        self.occupied = occupied;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{CountingModel, NullModel};

    #[test]
    fn table_size_strictly_greater_po2() {
        assert_eq!(table_size_for(0), 4);
        assert_eq!(table_size_for(3), 4);
        assert_eq!(table_size_for(4), 8, "strictly greater than entries");
        assert_eq!(table_size_for(8), 16);
        assert_eq!(table_size_for(1000), 1024);
        assert_eq!(table_size_for(1024), 2048);
    }

    #[test]
    fn accumulate_and_drain_sorted() {
        let mut ht = HashAccumulator::<f64>::with_capacity(8);
        let mut mem = NullModel;
        ht.insert_add(5, 1.0, &mut mem);
        ht.insert_add(1, 2.0, &mut mem);
        ht.insert_add(5, 3.0, &mut mem);
        ht.insert_add(9, 4.0, &mut mem);
        assert_eq!(ht.len(), 3);
        let mut rows = [0u32; 3];
        let mut vals = [0.0f64; 3];
        let n = ht.drain_into(&mut rows, &mut vals, true, &mut mem);
        assert_eq!(n, 3);
        assert_eq!(rows, [1, 5, 9]);
        assert_eq!(vals, [2.0, 4.0, 4.0]);
        assert!(ht.is_empty(), "drain resets the table");
        // Table is reusable afterwards.
        ht.insert_add(7, 1.5, &mut mem);
        let mut r2 = [0u32; 1];
        let mut v2 = [0.0f64; 1];
        assert_eq!(ht.drain_into(&mut r2, &mut v2, true, &mut mem), 1);
        assert_eq!((r2[0], v2[0]), (7, 1.5));
    }

    #[test]
    fn drain_unsorted_first_touch_order() {
        let mut ht = HashAccumulator::<f64>::with_capacity(8);
        let mut mem = NullModel;
        ht.insert_add(9, 1.0, &mut mem);
        ht.insert_add(2, 2.0, &mut mem);
        ht.insert_add(9, 1.0, &mut mem);
        let mut rows = [0u32; 2];
        let mut vals = [0.0f64; 2];
        ht.drain_into(&mut rows, &mut vals, false, &mut mem);
        assert_eq!(rows, [9, 2], "unsorted emission is first-touch order");
        assert_eq!(vals, [2.0, 2.0]);
    }

    #[test]
    fn collisions_resolved_by_linear_probing() {
        // Fill a tiny table almost completely so probes must wrap.
        let mut ht = HashAccumulator::<f64>::with_capacity(6); // capacity 8
        let mut mem = NullModel;
        for r in 0..7u32 {
            ht.insert_add(r, r as f64, &mut mem);
        }
        assert_eq!(ht.len(), 7);
        // Re-accumulate every key; counts must not grow.
        for r in 0..7u32 {
            ht.insert_add(r, 1.0, &mut mem);
        }
        assert_eq!(ht.len(), 7);
        let mut rows = vec![0u32; 7];
        let mut vals = vec![0.0f64; 7];
        ht.drain_into(&mut rows, &mut vals, true, &mut mem);
        assert_eq!(rows, (0..7).collect::<Vec<_>>());
        for (r, v) in rows.iter().zip(vals) {
            assert_eq!(v, *r as f64 + 1.0);
        }
    }

    #[test]
    fn reserve_resizes_hysteretically() {
        let mut ht = HashAccumulator::<f64>::with_capacity(4);
        let cap = ht.capacity();
        ht.reserve_for(2);
        assert_eq!(ht.capacity(), cap, "small shrinks are skipped");
        ht.reserve_for(100);
        assert!(ht.capacity() > 100);
        ht.reserve_for(2);
        assert_eq!(ht.capacity(), 4, "4x-oversized tables shrink back");
    }

    #[test]
    fn tables_grow_past_initial_capacity() {
        let mut ht = HashAccumulator::<f64>::with_capacity(2);
        let mut mem = NullModel;
        for r in 0..500u32 {
            ht.insert_add(r, r as f64, &mut mem);
            ht.insert_add(r, 1.0, &mut mem);
        }
        assert_eq!(ht.len(), 500);
        assert!(ht.capacity() >= 500);
        let mut rows = vec![0u32; 500];
        let mut vals = vec![0.0f64; 500];
        ht.drain_into(&mut rows, &mut vals, true, &mut mem);
        for (i, (r, v)) in rows.iter().zip(vals).enumerate() {
            assert_eq!(*r as usize, i);
            assert_eq!(v, i as f64 + 1.0);
        }

        let mut sym = SymbolicHashTable::with_capacity(2);
        for r in 0..300u32 {
            assert!(sym.insert(r, &mut mem));
            assert!(!sym.insert(r, &mut mem));
        }
        assert_eq!(sym.len(), 300);
    }

    #[test]
    fn symbolic_counts_distinct_rows() {
        let mut ht = SymbolicHashTable::with_capacity(16);
        let mut mem = NullModel;
        assert!(ht.insert(3, &mut mem));
        assert!(!ht.insert(3, &mut mem));
        assert!(ht.insert(4, &mut mem));
        assert_eq!(ht.len(), 2);
        ht.reset();
        assert_eq!(ht.len(), 0);
        assert!(ht.insert(3, &mut mem), "reset forgets previous keys");
    }

    #[test]
    fn memory_traffic_is_observed() {
        let mut ht = HashAccumulator::<f32>::with_capacity(8);
        let mut mem = CountingModel::new();
        ht.insert_add(1, 1.0, &mut mem);
        // One probe: key read, then key+val writes. f32 values are 4 bytes,
        // the paper's 8-bytes-per-entry numeric configuration.
        assert_eq!(mem.reads, 1);
        assert_eq!(mem.writes, 2);
        assert_eq!(mem.bytes_written, 8);
        ht.insert_add(1, 1.0, &mut mem);
        // Accumulation: key read, value read+write.
        assert_eq!(mem.reads, 3);
        assert_eq!(mem.writes, 3);
    }

    #[test]
    fn hash_row_uses_low_bits_only() {
        for r in [0u32, 1, 17, 123_456_789, u32::MAX - 1] {
            assert!(hash_row(r, 63) < 64);
        }
    }
}
