//! The symbolic phase (§II-D): computing `nnz(B(:,j))` for every output
//! column before any memory is allocated.
//!
//! Every k-way SpKAdd needs the output sizes to pre-allocate the result
//! and (for the hash algorithms) to size the tables. The paper's default
//! is the hash symbolic (Algorithm 6); heap and SPA symbolic phases are
//! also provided, as is the trivial upper bound `Σ_i nnz(A_i(:,j))` which
//! skips the symbolic pass at the cost of a compaction after the numeric
//! phase — the trade-off explored by the `ablation_symbolic` harness.

use crate::kernels::{hash_symbolic_column, heap_symbolic_column, spa_symbolic_column};
use crate::mem::NullModel;
use crate::parallel::{plan_ranges, Scheduling};
use crate::sliding::sliding_symbolic_column;
use crate::workspace::WorkspacePool;
use rayon::prelude::*;
use spk_sparse::{ColView, CscMatrix, Element};

/// Which data structure computes the per-column output sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SymbolicStrategy {
    /// Hash symbolic (Algorithm 6) — the paper's default.
    #[default]
    Hash,
    /// Hash symbolic with cache-budgeted sliding tables (Algorithm 7).
    /// This matters more than sliding the numeric phase when the
    /// compression factor is high: symbolic tables are sized by *input*
    /// entries, `cf×` larger than the output (§III-B, Fig 4(d)).
    SlidingHash,
    /// Dense-accumulator symbolic.
    Spa,
    /// k-way merge symbolic; requires sorted inputs.
    Heap,
    /// Skip the symbolic pass: use `Σ_i nnz(A_i(:,j))` as an upper bound
    /// and compact after the numeric phase.
    UpperBound,
}

/// Tuning knobs threaded through the symbolic/numeric drivers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DriverCtx {
    pub sched: Scheduling,
    /// Per-thread table budget (entries) for the *symbolic* sliding phase.
    pub budget_sym: usize,
    /// Per-thread table budget (entries) for the *numeric* sliding phase.
    pub budget_add: usize,
    /// Whether input columns are sorted (selects the sliding panelling).
    pub inputs_sorted: bool,
    /// Whether output columns must be emitted sorted.
    pub sorted_output: bool,
}

/// Per-column total input nonzeros — the symbolic-phase load-balancing
/// weights (§III-A) and the upper-bound column sizes.
pub fn input_nnz_per_column<T: Element>(mats: &[&CscMatrix<T>]) -> Vec<usize> {
    let n = mats[0].ncols();
    let mut w = vec![0usize; n];
    for m in mats {
        for (j, slot) in w.iter_mut().enumerate() {
            *slot += m.col_nnz(j);
        }
    }
    w
}

/// Computes `nnz(B(:,j))` for all columns in parallel, borrowing
/// thread-private symbolic state from `pool` (§III-A) — the SPA symbolic
/// state is O(m), so per-call allocation would charge it to every
/// execution of a reused plan.
///
/// The symbolic phase is *monoid-independent*: output structure is the
/// set union of input structures, so the counts hold for any
/// [`crate::monoid::Monoid`]. A filtering monoid can only shrink them —
/// the numeric driver then treats them as upper bounds and compacts.
pub(crate) fn symbolic_counts<T: Element>(
    mats: &[&CscMatrix<T>],
    strategy: SymbolicStrategy,
    ctx: &DriverCtx,
    pool: &WorkspacePool<T>,
) -> Vec<usize> {
    let n = mats[0].ncols();
    let m = mats[0].nrows();
    let k = mats.len();
    let weights = input_nnz_per_column(mats);
    if strategy == SymbolicStrategy::UpperBound {
        return weights;
    }
    let ranges = plan_ranges(&weights, 0, ctx.sched);
    let mut counts = vec![0usize; n];
    let mut tasks: Vec<(std::ops::Range<usize>, &mut [usize])> = Vec::new();
    {
        let mut rest = counts.as_mut_slice();
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            tasks.push((r.clone(), head));
            rest = tail;
        }
    }

    tasks.into_par_iter().for_each(|(cols_range, out)| {
        let mut views: Vec<ColView<'_, T>> = Vec::with_capacity(k);
        let mut mem = NullModel;
        let mut ws = pool.for_current_thread();
        for (slot, j) in cols_range.into_iter().enumerate() {
            views.clear();
            views.extend(mats.iter().map(|a| a.col(j)));
            out[slot] = match strategy {
                SymbolicStrategy::Hash => {
                    let ht = ws.sym_hash();
                    let inz: usize = views.iter().map(|c| c.nnz()).sum();
                    ht.reserve_for(inz);
                    hash_symbolic_column(&views, ht, &mut mem)
                }
                SymbolicStrategy::SlidingHash => {
                    let (ht, scratch) = ws.sym_hash_and_scratch();
                    sliding_symbolic_column(
                        &views,
                        m,
                        ctx.budget_sym,
                        ht,
                        ctx.inputs_sorted,
                        scratch,
                        &mut mem,
                    )
                }
                SymbolicStrategy::Spa => spa_symbolic_column(&views, ws.spa(m), &mut mem),
                SymbolicStrategy::Heap => heap_symbolic_column(&views, ws.heap(k), &mut mem),
                SymbolicStrategy::UpperBound => unreachable!("handled above"),
            };
        }
    });
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> DriverCtx {
        DriverCtx {
            sched: Scheduling::default(),
            budget_sym: 1 << 20,
            budget_add: 1 << 20,
            inputs_sorted: true,
            sorted_output: true,
        }
    }

    fn mats() -> Vec<CscMatrix<f64>> {
        let a = CscMatrix::try_new(8, 2, vec![0, 3, 5], vec![1, 3, 6, 0, 4], vec![1.0; 5]).unwrap();
        let b = CscMatrix::try_new(8, 2, vec![0, 2, 4], vec![3, 7, 0, 4], vec![1.0; 4]).unwrap();
        vec![a, b]
    }

    fn pool() -> WorkspacePool<f64> {
        WorkspacePool::new(rayon::current_num_threads())
    }

    #[test]
    fn strategies_agree_on_exact_counts() {
        let ms = mats();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let c = ctx();
        let ws = pool();
        let expect = vec![4usize, 2];
        for strategy in [
            SymbolicStrategy::Hash,
            SymbolicStrategy::SlidingHash,
            SymbolicStrategy::Spa,
            SymbolicStrategy::Heap,
        ] {
            assert_eq!(
                symbolic_counts(&refs, strategy, &c, &ws),
                expect,
                "{strategy:?} disagrees"
            );
        }
    }

    #[test]
    fn upper_bound_is_input_totals() {
        let ms = mats();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        assert_eq!(
            symbolic_counts(&refs, SymbolicStrategy::UpperBound, &ctx(), &pool()),
            vec![5, 4]
        );
    }

    #[test]
    fn sliding_with_tiny_budget_still_exact() {
        let ms = mats();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        let mut c = ctx();
        c.budget_sym = 16; // floor of budget_entries
        assert_eq!(
            symbolic_counts(&refs, SymbolicStrategy::SlidingHash, &c, &pool()),
            vec![4, 2]
        );
    }

    #[test]
    fn input_nnz_per_column_sums() {
        let ms = mats();
        let refs: Vec<&CscMatrix<f64>> = ms.iter().collect();
        assert_eq!(input_nnz_per_column(&refs), vec![5, 4]);
    }
}
