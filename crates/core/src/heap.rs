//! k-way merge with a binary min-heap — Algorithm 3 of the paper.
//!
//! The heap holds at most one `(row, matrix, value)` tuple per input
//! column, keyed by row index, so its size is O(k). Every input nonzero
//! passes through the heap once at O(lg k) per operation, giving the
//! paper's O(lg k · Σ nnz) work bound — *not* work-efficient, but with
//! optimal O(Σ nnz) streaming I/O since the heap itself stays in cache
//! (Table I).
//!
//! Requires all input columns sorted by row index.

use crate::mem::MemModel;
use crate::monoid::{Monoid, Plus};
use spk_sparse::{ColView, Element, Scalar};

/// One heap node: the frontier entry of input matrix `mat`.
#[derive(Debug, Clone, Copy)]
struct Node<T> {
    row: u32,
    mat: u32,
    val: T,
}

impl<T> Node<T> {
    /// Heap ordering key. The `mat` tie-break makes equal-row entries pop
    /// in matrix order, so duplicate coordinates fold left-to-right across
    /// the collection — the same combine order as the hash/SPA kernels'
    /// sequential sweep. Without it the pop order of ties depends on heap
    /// shape, and non-commutative-in-the-bits folds (f64 addition) could
    /// differ between kernels.
    #[inline(always)]
    fn key(&self) -> (u32, u32) {
        (self.row, self.mat)
    }
}

/// Reusable k-way merge heap for one task (thread-private, O(k) memory).
#[derive(Debug, Clone)]
pub struct KwayHeap<T> {
    heap: Vec<Node<T>>,
    /// Per-matrix cursor into the current column, reused across columns.
    cursors: Vec<usize>,
}

impl<T: Element> KwayHeap<T> {
    /// A heap for merging up to `k` columns.
    pub fn new(k: usize) -> Self {
        Self {
            heap: Vec::with_capacity(k),
            cursors: vec![0; k],
        }
    }

    /// Monoid-generic k-way merge — see [`KwayHeap::add_column`], which is
    /// this with [`Plus`]. Duplicate rows are folded with
    /// `monoid.combine`; when a run of duplicates closes (the heap yields
    /// a larger row, or the merge ends) the reduced value is dropped again
    /// if `monoid.keep` rejects it. The rollback is safe because the heap
    /// emits rows in ascending order, so a closed run never reopens.
    pub fn add_column_with<O: Monoid<Value = T>, M: MemModel>(
        &mut self,
        cols: &[ColView<'_, T>],
        out_rows: &mut [u32],
        out_vals: &mut [T],
        monoid: O,
        mem: &mut M,
    ) -> usize {
        let k = cols.len();
        debug_assert!(self.cursors.len() >= k);
        self.heap.clear();
        // Alg 3 lines 3–5: seed the heap with each column's first entry.
        for (i, col) in cols.iter().enumerate() {
            self.cursors[i] = 0;
            mem.read(col.rows.as_ptr() as usize, 4);
            if let (Some(&r), Some(&v)) = (col.rows.first(), col.vals.first()) {
                mem.read(col.vals.as_ptr() as usize, std::mem::size_of::<T>());
                self.push(
                    Node {
                        row: r,
                        mat: i as u32,
                        val: v,
                    },
                    mem,
                );
                self.cursors[i] = 1;
            }
        }
        let mut written = 0usize;
        // Alg 3 lines 6–14: repeatedly extract the min-row entry and refill
        // from the same input column.
        while let Some(min) = self.heap.first().copied() {
            let i = min.mat as usize;
            let col = &cols[i];
            let cur = self.cursors[i];
            if cur < col.rows.len() {
                mem.read(col.rows.as_ptr() as usize + cur * 4, 4);
                mem.read(
                    col.vals.as_ptr() as usize + cur * std::mem::size_of::<T>(),
                    std::mem::size_of::<T>(),
                );
                let next = Node {
                    row: col.rows[cur],
                    mat: min.mat,
                    val: col.vals[cur],
                };
                self.cursors[i] = cur + 1;
                self.replace_root(next, mem);
            } else {
                self.pop_root(mem);
            }
            // Alg 3 lines 8–11: extend or accumulate into the output.
            if written > 0 && out_rows[written - 1] == min.row {
                monoid.combine(&mut out_vals[written - 1], min.val);
                mem.write(
                    out_vals.as_ptr() as usize + (written - 1) * std::mem::size_of::<T>(),
                    std::mem::size_of::<T>(),
                );
            } else {
                // The previous row's run just closed; filter it now.
                if O::MAY_FILTER && written > 0 && !monoid.keep(&out_vals[written - 1]) {
                    written -= 1;
                }
                debug_assert!(
                    written == 0 || out_rows[written - 1] < min.row,
                    "heap merge received unsorted input"
                );
                out_rows[written] = min.row;
                out_vals[written] = min.val;
                mem.write(out_rows.as_ptr() as usize + written * 4, 4);
                mem.write(
                    out_vals.as_ptr() as usize + written * std::mem::size_of::<T>(),
                    std::mem::size_of::<T>(),
                );
                written += 1;
            }
        }
        // The final run closes when the heap drains.
        if O::MAY_FILTER && written > 0 && !monoid.keep(&out_vals[written - 1]) {
            written -= 1;
        }
        written
    }

    /// Counts the distinct rows across the `j`-th columns (symbolic phase
    /// via heap, mentioned in §II-D as an alternative to hash symbolic).
    pub fn count_column<M: MemModel>(&mut self, cols: &[ColView<'_, T>], mem: &mut M) -> usize {
        let k = cols.len();
        debug_assert!(self.cursors.len() >= k);
        self.heap.clear();
        for (i, col) in cols.iter().enumerate() {
            self.cursors[i] = 0;
            if let (Some(&r), Some(&v)) = (col.rows.first(), col.vals.first()) {
                self.push(
                    Node {
                        row: r,
                        mat: i as u32,
                        val: v,
                    },
                    mem,
                );
                self.cursors[i] = 1;
            }
        }
        let mut count = 0usize;
        let mut last_row = u32::MAX;
        while let Some(min) = self.heap.first().copied() {
            let i = min.mat as usize;
            let col = &cols[i];
            let cur = self.cursors[i];
            if cur < col.rows.len() {
                let next = Node {
                    row: col.rows[cur],
                    mat: min.mat,
                    val: col.vals[cur],
                };
                self.cursors[i] = cur + 1;
                self.replace_root(next, mem);
            } else {
                self.pop_root(mem);
            }
            if min.row != last_row || count == 0 {
                last_row = min.row;
                count += 1;
            }
        }
        count
    }

    #[inline]
    fn push<M: MemModel>(&mut self, node: Node<T>, mem: &mut M) {
        self.heap.push(node);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            mem.op(1);
            if self.heap[parent].key() <= self.heap[i].key() {
                break;
            }
            self.heap.swap(parent, i);
            i = parent;
        }
    }

    #[inline]
    fn replace_root<M: MemModel>(&mut self, node: Node<T>, mem: &mut M) {
        self.heap[0] = node;
        self.sift_down(0, mem);
    }

    #[inline]
    fn pop_root<M: MemModel>(&mut self, mem: &mut M) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0, mem);
        }
    }

    #[inline]
    fn sift_down<M: MemModel>(&mut self, mut i: usize, mem: &mut M) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            mem.op(1);
            if l < n && self.heap[l].key() < self.heap[smallest].key() {
                smallest = l;
            }
            if r < n && self.heap[r].key() < self.heap[smallest].key() {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

impl<T: Scalar> KwayHeap<T> {
    /// Merges the `j`-th columns of all inputs into `(out_rows, out_vals)`,
    /// summing duplicate rows, and returns the number of output entries.
    /// Output is produced in ascending row order (the heap algorithm can
    /// only emit sorted output).
    ///
    /// The caller guarantees each `ColView` is sorted by row index.
    pub fn add_column<M: MemModel>(
        &mut self,
        cols: &[ColView<'_, T>],
        out_rows: &mut [u32],
        out_vals: &mut [T],
        mem: &mut M,
    ) -> usize {
        self.add_column_with(cols, out_rows, out_vals, Plus::new(), mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NullModel;

    fn view<'a>(rows: &'a [u32], vals: &'a [f64]) -> ColView<'a, f64> {
        ColView { rows, vals }
    }

    #[test]
    fn merges_papers_figure_1_example() {
        // Fig 1(a): four input columns, expected output
        // (0,2) (1,5) (3,3) (5,5) (6,2) (7,4).
        let c1 = view(&[1, 3, 6], &[3.0, 2.0, 1.0]);
        let c2 = view(&[0, 3, 5], &[2.0, 1.0, 3.0]);
        let c3 = view(&[5, 7], &[2.0, 1.0]);
        let c4 = view(&[1, 6, 7], &[2.0, 1.0, 3.0]);
        let mut heap = KwayHeap::new(4);
        let mut rows = vec![0u32; 11];
        let mut vals = vec![0.0f64; 11];
        let n = heap.add_column(&[c1, c2, c3, c4], &mut rows, &mut vals, &mut NullModel);
        assert_eq!(n, 6);
        assert_eq!(&rows[..n], &[0, 1, 3, 5, 6, 7]);
        assert_eq!(&vals[..n], &[2.0, 5.0, 3.0, 5.0, 2.0, 4.0]);
    }

    #[test]
    fn handles_empty_columns() {
        let c1 = view(&[], &[]);
        let c2 = view(&[2], &[1.5]);
        let mut heap = KwayHeap::new(2);
        let mut rows = vec![0u32; 1];
        let mut vals = vec![0.0f64; 1];
        let n = heap.add_column(&[c1, c2], &mut rows, &mut vals, &mut NullModel);
        assert_eq!(n, 1);
        assert_eq!((rows[0], vals[0]), (2, 1.5));
        let n = heap.add_column(&[c1, c1], &mut rows, &mut vals, &mut NullModel);
        assert_eq!(n, 0);
    }

    #[test]
    fn single_input_passes_through() {
        let c = view(&[0, 4, 9], &[1.0, 2.0, 3.0]);
        let mut heap = KwayHeap::new(1);
        let mut rows = vec![0u32; 3];
        let mut vals = vec![0.0f64; 3];
        let n = heap.add_column(&[c], &mut rows, &mut vals, &mut NullModel);
        assert_eq!(n, 3);
        assert_eq!(&rows[..], &[0, 4, 9]);
    }

    #[test]
    fn count_column_matches_add_column() {
        let c1 = view(&[1, 3, 6], &[3.0, 2.0, 1.0]);
        let c2 = view(&[0, 3, 5], &[2.0, 1.0, 3.0]);
        let mut heap = KwayHeap::new(2);
        assert_eq!(heap.count_column(&[c1, c2], &mut NullModel), 5);
        assert_eq!(heap.count_column(&[c1, c1], &mut NullModel), 3);
    }

    #[test]
    fn heap_is_reusable_across_columns() {
        let c1 = view(&[0], &[1.0]);
        let c2 = view(&[0], &[2.0]);
        let mut heap = KwayHeap::new(2);
        let mut rows = vec![0u32; 1];
        let mut vals = vec![0.0f64; 1];
        for _ in 0..3 {
            let n = heap.add_column(&[c1, c2], &mut rows, &mut vals, &mut NullModel);
            assert_eq!(n, 1);
            assert_eq!(vals[0], 3.0);
        }
    }

    #[test]
    fn ties_combine_in_matrix_order() {
        // Float addition is not associative in the bits: with the
        // (row, mat) tie-break the heap must fold duplicates strictly
        // left-to-right, matching the hash/SPA kernels' sweep order.
        let vals = [1e16, 1.0, -1e16, 3.0];
        let cols: Vec<ColView<f64>> = vals
            .iter()
            .map(|v| ColView {
                rows: std::slice::from_ref(&7u32),
                vals: std::slice::from_ref(v),
            })
            .collect();
        let mut heap = KwayHeap::new(vals.len());
        let mut rows = vec![0u32; vals.len()];
        let mut out = vec![0.0f64; vals.len()];
        let n = heap.add_column(&cols, &mut rows, &mut out, &mut NullModel);
        assert_eq!(n, 1);
        let left_fold = vals.iter().copied().reduce(|a, b| a + b).unwrap();
        assert_eq!(out[0].to_bits(), left_fold.to_bits());
    }

    #[test]
    fn all_duplicate_rows_collapse() {
        let cols: Vec<ColView<f64>> = (0..8).map(|_| view(&[5], &[1.0])).collect();
        let mut heap = KwayHeap::new(8);
        let mut rows = vec![0u32; 8];
        let mut vals = vec![0.0f64; 8];
        let n = heap.add_column(&cols, &mut rows, &mut vals, &mut NullModel);
        assert_eq!(n, 1);
        assert_eq!(vals[0], 8.0);
    }
}
