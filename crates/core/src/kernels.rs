//! Column-level k-way kernels: one function per (data structure × phase).
//!
//! These are the bodies of the paper's Algorithms 3–6 operating on the
//! `j`-th columns of all `k` inputs. The parallel drivers in `crate::kway`
//! call them per column; `spk-cachesim` calls them directly to replay
//! address streams; the metered drivers call them with a
//! [`crate::mem::CountingModel`] to validate Table I.

use crate::hashtab::{HashAccumulator, SymbolicHashTable};
use crate::heap::KwayHeap;
use crate::mem::MemModel;
use crate::monoid::{Monoid, Plus};
use crate::spa::Spa;
use spk_sparse::{ColView, Element, Scalar};

/// Streams one input column into the model (the load half of the paper's
/// I/O accounting: every nonzero is read from memory exactly once in the
/// k-way algorithms).
#[inline(always)]
fn stream_column<T: Element, M: MemModel>(col: &ColView<'_, T>, mem: &mut M) {
    // One read event per array; byte counts capture the streamed volume.
    if !col.rows.is_empty() {
        mem.read(col.rows.as_ptr() as usize, col.rows.len() * 4);
        mem.read(col.vals.as_ptr() as usize, std::mem::size_of_val(col.vals));
    }
}

/// HashAdd (Algorithm 5): accumulates all input columns into `ht`, then
/// emits into the output slices. Returns the entries written.
pub fn hash_add_column<T: Scalar, M: MemModel>(
    cols: &[ColView<'_, T>],
    ht: &mut HashAccumulator<T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    sorted: bool,
    mem: &mut M,
) -> usize {
    hash_add_column_with(cols, ht, out_rows, out_vals, sorted, Plus::new(), mem)
}

/// Monoid-generic HashAdd — [`hash_add_column`] with an arbitrary
/// [`Monoid`] folding duplicate rows.
pub fn hash_add_column_with<T: Element, O: Monoid<Value = T>, M: MemModel>(
    cols: &[ColView<'_, T>],
    ht: &mut HashAccumulator<T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    sorted: bool,
    monoid: O,
    mem: &mut M,
) -> usize {
    for col in cols {
        stream_column(col, mem);
        for (r, v) in col.iter() {
            ht.insert_combine(r, v, monoid, mem);
        }
    }
    ht.drain_into_with(out_rows, out_vals, sorted, monoid, mem)
}

/// Numeric-only HashAdd for a pattern-cache hit: the output rows are
/// already in place (copied from the cached structure), so the kernel
/// accumulates as usual but *gathers* by the known row order instead of
/// draining and sorting — the per-column sort, the dominant non-streaming
/// cost of sorted hash emission, disappears along with the symbolic pass.
///
/// The accumulation loop is byte-identical to [`hash_add_column_with`]'s,
/// so each row's combine order (and therefore every floating-point
/// result) matches a cold execution bit for bit.
pub fn hash_numeric_only_column<T: Element, O: Monoid<Value = T>, M: MemModel>(
    cols: &[ColView<'_, T>],
    ht: &mut HashAccumulator<T>,
    rows: &[u32],
    out_vals: &mut [T],
    monoid: O,
    mem: &mut M,
) {
    for col in cols {
        stream_column(col, mem);
        for (r, v) in col.iter() {
            ht.insert_combine(r, v, monoid, mem);
        }
    }
    ht.gather_reset(rows, out_vals, mem);
}

/// HashSymbolic (Algorithm 6): counts the distinct rows across the input
/// columns — `nnz(B(:,j))`. Values are never touched: output *structure*
/// is the set union of input structures, independent of the monoid.
pub fn hash_symbolic_column<T: Element, M: MemModel>(
    cols: &[ColView<'_, T>],
    ht: &mut SymbolicHashTable,
    mem: &mut M,
) -> usize {
    let mut nz = 0usize;
    for col in cols {
        stream_column(col, mem);
        for &r in col.rows {
            if ht.insert(r, mem) {
                nz += 1;
            }
        }
    }
    ht.reset();
    nz
}

/// SPAAdd (Algorithm 4): scatters all input columns into the dense
/// accumulator, then gathers. Returns the entries written.
pub fn spa_add_column<T: Scalar, M: MemModel>(
    cols: &[ColView<'_, T>],
    spa: &mut Spa<T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    sorted: bool,
    mem: &mut M,
) -> usize {
    spa_add_column_with(cols, spa, out_rows, out_vals, sorted, Plus::new(), mem)
}

/// Monoid-generic SPAAdd — [`spa_add_column`] with an arbitrary
/// [`Monoid`] folding duplicate rows.
pub fn spa_add_column_with<T: Element, O: Monoid<Value = T>, M: MemModel>(
    cols: &[ColView<'_, T>],
    spa: &mut Spa<T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    sorted: bool,
    monoid: O,
    mem: &mut M,
) -> usize {
    for col in cols {
        stream_column(col, mem);
        for (r, v) in col.iter() {
            spa.scatter_combine(r, v, monoid, mem);
        }
    }
    spa.drain_into_with(out_rows, out_vals, sorted, monoid, mem)
}

/// Numeric-only SPAAdd for a pattern-cache hit — [`spa_add_column_with`]
/// with the emission replaced by a gather over the cached row order (no
/// sort of the touched-index list). Scatter order is identical to the
/// cold kernel, so results match bit for bit.
pub fn spa_numeric_only_column<T: Element, O: Monoid<Value = T>, M: MemModel>(
    cols: &[ColView<'_, T>],
    spa: &mut Spa<T>,
    rows: &[u32],
    out_vals: &mut [T],
    monoid: O,
    mem: &mut M,
) {
    for col in cols {
        stream_column(col, mem);
        for (r, v) in col.iter() {
            spa.scatter_combine(r, v, monoid, mem);
        }
    }
    spa.gather_reset(rows, out_vals, mem);
}

/// Symbolic phase via SPA (§II-D notes heap and SPA also work): counts
/// distinct rows. Value-free ([`Spa::scatter_mark`]) because output
/// structure is monoid-independent; the memory traffic matches the
/// numeric scatter exactly, preserving the Table I accounting.
pub fn spa_symbolic_column<T: Element, M: MemModel>(
    cols: &[ColView<'_, T>],
    spa: &mut Spa<T>,
    mem: &mut M,
) -> usize {
    for col in cols {
        stream_column(col, mem);
        for &r in col.rows {
            spa.scatter_mark(r, mem);
        }
    }
    spa.drain_count()
}

/// HeapAdd (Algorithm 3): k-way merge of sorted columns. Output is always
/// sorted. Returns the entries written.
pub fn heap_add_column<T: Scalar, M: MemModel>(
    cols: &[ColView<'_, T>],
    heap: &mut KwayHeap<T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    mem: &mut M,
) -> usize {
    heap.add_column(cols, out_rows, out_vals, mem)
}

/// Monoid-generic HeapAdd — [`heap_add_column`] with an arbitrary
/// [`Monoid`] folding duplicate rows.
pub fn heap_add_column_with<T: Element, O: Monoid<Value = T>, M: MemModel>(
    cols: &[ColView<'_, T>],
    heap: &mut KwayHeap<T>,
    out_rows: &mut [u32],
    out_vals: &mut [T],
    monoid: O,
    mem: &mut M,
) -> usize {
    heap.add_column_with(cols, out_rows, out_vals, monoid, mem)
}

/// Symbolic phase via heap: counts distinct rows of sorted columns.
pub fn heap_symbolic_column<T: Element, M: MemModel>(
    cols: &[ColView<'_, T>],
    heap: &mut KwayHeap<T>,
    mem: &mut M,
) -> usize {
    heap.count_column(cols, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::NullModel;

    fn views() -> Vec<ColView<'static, f64>> {
        // The paper's Fig 1(a) example.
        static R1: [u32; 3] = [1, 3, 6];
        static V1: [f64; 3] = [3.0, 2.0, 1.0];
        static R2: [u32; 3] = [0, 3, 5];
        static V2: [f64; 3] = [2.0, 1.0, 3.0];
        static R3: [u32; 2] = [5, 7];
        static V3: [f64; 2] = [2.0, 1.0];
        static R4: [u32; 3] = [1, 6, 7];
        static V4: [f64; 3] = [2.0, 1.0, 3.0];
        vec![
            ColView {
                rows: &R1,
                vals: &V1,
            },
            ColView {
                rows: &R2,
                vals: &V2,
            },
            ColView {
                rows: &R3,
                vals: &V3,
            },
            ColView {
                rows: &R4,
                vals: &V4,
            },
        ]
    }

    const EXPECT_ROWS: [u32; 6] = [0, 1, 3, 5, 6, 7];
    const EXPECT_VALS: [f64; 6] = [2.0, 5.0, 3.0, 5.0, 2.0, 4.0];

    #[test]
    fn all_three_kernels_agree_on_figure_1() {
        let cols = views();
        let mut mem = NullModel;

        let mut ht = HashAccumulator::<f64>::with_capacity(16);
        let mut rows = vec![0u32; 11];
        let mut vals = vec![0.0f64; 11];
        let n = hash_add_column(&cols, &mut ht, &mut rows, &mut vals, true, &mut mem);
        assert_eq!(n, 6);
        assert_eq!(&rows[..6], &EXPECT_ROWS);
        assert_eq!(&vals[..6], &EXPECT_VALS);

        let mut spa = Spa::<f64>::new(8);
        let n = spa_add_column(&cols, &mut spa, &mut rows, &mut vals, true, &mut mem);
        assert_eq!(n, 6);
        assert_eq!(&rows[..6], &EXPECT_ROWS);
        assert_eq!(&vals[..6], &EXPECT_VALS);

        let mut heap = KwayHeap::<f64>::new(4);
        let n = heap_add_column(&cols, &mut heap, &mut rows, &mut vals, &mut mem);
        assert_eq!(n, 6);
        assert_eq!(&rows[..6], &EXPECT_ROWS);
        assert_eq!(&vals[..6], &EXPECT_VALS);
    }

    #[test]
    fn symbolic_kernels_agree() {
        let cols = views();
        let mut mem = NullModel;
        let mut ht = SymbolicHashTable::with_capacity(16);
        assert_eq!(hash_symbolic_column(&cols, &mut ht, &mut mem), 6);
        let mut spa = Spa::<f64>::new(8);
        assert_eq!(spa_symbolic_column(&cols, &mut spa, &mut mem), 6);
        let mut heap = KwayHeap::<f64>::new(4);
        assert_eq!(heap_symbolic_column(&cols, &mut heap, &mut mem), 6);
    }

    #[test]
    fn hash_kernel_accepts_unsorted_input() {
        static RU: [u32; 3] = [6, 1, 3];
        static VU: [f64; 3] = [1.0, 3.0, 2.0];
        let cols = vec![ColView::<f64> {
            rows: &RU,
            vals: &VU,
        }];
        let mut ht = HashAccumulator::<f64>::with_capacity(8);
        let mut rows = vec![0u32; 3];
        let mut vals = vec![0.0f64; 3];
        let n = hash_add_column(&cols, &mut ht, &mut rows, &mut vals, true, &mut NullModel);
        assert_eq!(n, 3);
        assert_eq!(rows, vec![1, 3, 6]);
    }

    #[test]
    fn empty_collection_of_columns() {
        let cols: Vec<ColView<f64>> = vec![];
        let mut ht = HashAccumulator::<f64>::with_capacity(4);
        let mut rows = vec![0u32; 0];
        let mut vals = vec![0.0f64; 0];
        assert_eq!(
            hash_add_column(&cols, &mut ht, &mut rows, &mut vals, true, &mut NullModel),
            0
        );
    }
}
