//! Column partitioning and parallel-driver plumbing (§III-A of the paper).
//!
//! All SpKAdd algorithms parallelize the same way: columns of the output
//! are independent, so column *ranges* are distributed over threads with no
//! synchronization. What distinguishes a good driver is load balance: for
//! skewed (RMAT-like) inputs, equal column counts per thread are terrible
//! because a few columns carry most of the nonzeros. The paper balances by
//! total input nonzeros per column in the symbolic phase, and by output
//! nonzeros per column in the numeric phase; [`weighted_ranges`] implements
//! that policy, and [`Scheduling`] selects between it and the naive static
//! split (kept for the ablation study).

use std::ops::Range;

/// How columns are assigned to parallel tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduling {
    /// Equal *column counts* per task, one task per thread. This is the
    /// baseline the paper's §III-A warns about for skewed matrices.
    Static,
    /// Weight-balanced ranges, `chunks_per_thread` tasks per thread,
    /// executed under rayon work stealing — the paper's dynamic policy.
    Dynamic {
        /// Over-decomposition factor (tasks per thread). 8 is a good
        /// default: fine enough to steal, coarse enough to amortize
        /// workspace setup.
        chunks_per_thread: usize,
    },
}

impl Default for Scheduling {
    fn default() -> Self {
        Scheduling::Dynamic {
            chunks_per_thread: 8,
        }
    }
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal size.
pub fn equal_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    if n == 0 {
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..0];
    }
    (0..parts)
        .map(|p| (p * n / parts)..((p + 1) * n / parts))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Splits `0..weights.len()` into at most `parts` contiguous ranges whose
/// weight sums are approximately equal (greedy prefix cut at the running
/// target). Zero-weight prefixes/suffixes fold into neighbouring ranges.
pub fn weighted_ranges(weights: &[usize], parts: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    if n == 0 {
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..0];
    }
    let parts = parts.max(1).min(n);
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    if total == 0 {
        return equal_ranges(n, parts);
    }
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut cut = 1u64;
    for (j, &w) in weights.iter().enumerate() {
        acc += w as u64;
        // Cut when the running sum crosses the next 1/parts quantile.
        while cut < parts as u64 && acc * parts as u64 >= cut * total {
            // Close the current range after column j unless it would be
            // empty (several quantiles inside one heavy column).
            if j + 1 > start {
                out.push(start..j + 1);
                start = j + 1;
            }
            cut += 1;
        }
    }
    if start < n {
        out.push(start..n);
    } else if out.is_empty() {
        out.push(0..n);
    }
    debug_assert_eq!(out.first().unwrap().start, 0);
    debug_assert_eq!(out.last().unwrap().end, n);
    debug_assert!(out.windows(2).all(|w| w[0].end == w[1].start));
    out
}

/// Produces the task ranges for a phase given its per-column weights.
pub fn plan_ranges(weights: &[usize], threads: usize, sched: Scheduling) -> Vec<Range<usize>> {
    let threads = if threads == 0 {
        rayon::current_num_threads()
    } else {
        threads
    };
    match sched {
        Scheduling::Static => equal_ranges(weights.len(), threads),
        Scheduling::Dynamic { chunks_per_thread } => {
            weighted_ranges(weights, threads * chunks_per_thread.max(1))
        }
    }
}

/// Exclusive prefix sum: turns per-column counts into a CSC column-pointer
/// array of length `counts.len() + 1`.
pub fn exclusive_prefix_sum(counts: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    exclusive_prefix_sum_into(counts, &mut out);
    out
}

/// [`exclusive_prefix_sum`] into a caller-provided vector, reusing its
/// capacity (the plan/execute steady-state path recycles column pointers
/// this way).
pub fn exclusive_prefix_sum_into(counts: &[usize], out: &mut Vec<usize>) {
    out.clear();
    out.reserve(counts.len() + 1);
    let mut acc = 0usize;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
}

/// A task's mutable window into the output arrays: the columns `cols`,
/// whose entries live at `colptr[j] - base` within `rows`/`vals`.
pub struct OutChunk<'a, T> {
    /// Column range owned by this task.
    pub cols: Range<usize>,
    /// Global entry offset of `cols.start` (i.e. `colptr[cols.start]`).
    pub base: usize,
    /// This task's slice of the output row-index array.
    pub rows: &'a mut [u32],
    /// This task's slice of the output value array.
    pub vals: &'a mut [T],
}

/// Splits the output arrays into per-task disjoint windows. The windows
/// are handed to rayon tasks; because they never overlap, the numeric
/// phase writes the shared output with no synchronization — the paper's
/// "no thread synchronization" property.
pub fn split_output<'a, T>(
    colptr: &[usize],
    ranges: &[Range<usize>],
    mut rows: &'a mut [u32],
    mut vals: &'a mut [T],
) -> Vec<OutChunk<'a, T>> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut consumed = 0usize;
    for r in ranges {
        let base = colptr[r.start];
        let end = colptr[r.end];
        debug_assert_eq!(base, consumed, "ranges must tile the columns in order");
        let take = end - base;
        let (rh, rt) = rows.split_at_mut(take);
        let (vh, vt) = vals.split_at_mut(take);
        rows = rt;
        vals = vt;
        consumed = end;
        out.push(OutChunk {
            cols: r.clone(),
            base,
            rows: rh,
            vals: vh,
        });
    }
    out
}

/// Runs `f` on a dedicated rayon pool of `threads` threads (0 = the global
/// pool). Benchmarks use this for strong-scaling sweeps.
pub fn run_with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    if threads == 0 {
        f()
    } else {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build rayon pool")
            .install(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_ranges_tile() {
        let r = equal_ranges(10, 3);
        assert_eq!(r.first().unwrap().start, 0);
        assert_eq!(r.last().unwrap().end, 10);
        assert!(r.windows(2).all(|w| w[0].end == w[1].start));
        assert_eq!(equal_ranges(0, 4), vec![0..0]);
        assert_eq!(equal_ranges(2, 8).len(), 2, "never more parts than items");
    }

    #[test]
    fn weighted_ranges_balance_skew() {
        // One heavy column at the front.
        let mut w = vec![1usize; 100];
        w[0] = 1000;
        let r = weighted_ranges(&w, 4);
        assert_eq!(r.first().unwrap().start, 0);
        assert_eq!(r.last().unwrap().end, 100);
        assert!(r.windows(2).all(|a| a[0].end == a[1].start));
        // The heavy column must sit alone (or nearly) in its range.
        assert!(r[0].len() <= 2, "heavy head not isolated: {:?}", r);
    }

    #[test]
    fn weighted_ranges_uniform_close_to_equal() {
        let w = vec![5usize; 64];
        let r = weighted_ranges(&w, 8);
        assert_eq!(r.len(), 8);
        for range in &r {
            assert_eq!(range.len(), 8);
        }
    }

    #[test]
    fn weighted_ranges_zero_weights() {
        let w = vec![0usize; 10];
        let r = weighted_ranges(&w, 3);
        assert_eq!(r.last().unwrap().end, 10);
    }

    #[test]
    fn prefix_sum_builds_colptr() {
        assert_eq!(exclusive_prefix_sum(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(exclusive_prefix_sum(&[]), vec![0]);
    }

    #[test]
    fn split_output_windows_are_disjoint_and_complete() {
        let colptr = vec![0usize, 2, 2, 5, 6];
        let ranges = vec![0..2, 2..4];
        let mut rows = vec![0u32; 6];
        let mut vals = vec![0.0f64; 6];
        let chunks = split_output(&colptr, &ranges, &mut rows, &mut vals);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].base, 0);
        assert_eq!(chunks[0].rows.len(), 2);
        assert_eq!(chunks[1].base, 2);
        assert_eq!(chunks[1].rows.len(), 4);
    }

    #[test]
    fn run_with_threads_executes() {
        let x = run_with_threads(2, rayon::current_num_threads);
        assert_eq!(x, 2);
        let y = run_with_threads(0, || 42);
        assert_eq!(y, 42);
    }

    #[test]
    fn scheduling_default_is_dynamic() {
        match Scheduling::default() {
            Scheduling::Dynamic { chunks_per_thread } => assert_eq!(chunks_per_thread, 8),
            _ => panic!("default must be dynamic"),
        }
    }
}
