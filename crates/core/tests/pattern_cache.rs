//! Pattern-cache correctness: a warm (cache-hit) execution must be
//! bit-for-bit identical to a cold one for every algorithm, the LRU bound
//! must hold, structural mutations must miss, and filtering monoids must
//! bypass the cache entirely.

use spk_gen::{generate_collection, Pattern};
use spk_sparse::CscMatrix;
use spkadd::{
    Algorithm, ExecuteStats, Monoid, PatternOutcome, SpkAdd, SpkaddError, ThresholdedPlus,
};

const M: usize = 256;
const N: usize = 48;
const D: usize = 6;
const K: usize = 7;

fn collection(pattern: Pattern, seed: u64) -> Vec<CscMatrix<f64>> {
    let mut mats = generate_collection(pattern, M, N, D, K, seed);
    // The heap and 2-way/library algorithms require sorted inputs.
    for m in &mut mats {
        m.sort_columns();
    }
    mats
}

fn rescale(mats: &[CscMatrix<f64>], factor: f64) -> Vec<CscMatrix<f64>> {
    mats.iter()
        .map(|m| {
            let mut m = m.clone();
            m.values_mut().iter_mut().for_each(|v| *v *= factor);
            m
        })
        .collect()
}

const ALL_AND_AUTO: [Algorithm; 10] = [
    Algorithm::TwoWayIncremental,
    Algorithm::TwoWayTree,
    Algorithm::LibIncremental,
    Algorithm::LibTree,
    Algorithm::Heap,
    Algorithm::Spa,
    Algorithm::Hash,
    Algorithm::SlidingHash,
    Algorithm::SlidingSpa,
    Algorithm::Auto,
];

/// The k-way family caches; the 2-way/library folds have no symbolic
/// phase and report `Bypassed`.
fn expects_caching(alg: Algorithm) -> bool {
    matches!(
        alg,
        Algorithm::Heap
            | Algorithm::Spa
            | Algorithm::Hash
            | Algorithm::SlidingHash
            | Algorithm::SlidingSpa
            | Algorithm::Auto // resolves to Hash at this k
    )
}

#[test]
fn warm_execution_is_bit_for_bit_identical_for_all_algorithms() {
    for pattern in [Pattern::Er, Pattern::Rmat] {
        let mats = collection(pattern, 42);
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        // Same structure, different values: the hit must recompute values
        // from the *new* inputs, never replay cached ones.
        let scaled = rescale(&mats, 0.37);
        let scaled_refs: Vec<&CscMatrix<f64>> = scaled.iter().collect();

        for alg in ALL_AND_AUTO {
            let mut cached = SpkAdd::new(M, N)
                .algorithm(alg)
                .pattern_cache(4)
                .build::<f64>()
                .unwrap();
            let mut cold = SpkAdd::new(M, N).algorithm(alg).build::<f64>().unwrap();

            let (first, s1) = cached.execute_timed(&refs).unwrap();
            assert_eq!(first, cold.execute(&refs).unwrap(), "{alg}: cold mismatch");
            let (warm, s2) = cached.execute_timed(&refs).unwrap();
            assert_eq!(warm, first, "{alg}: warm result differs from cold");

            let (rescaled, s3) = cached.execute_timed(&scaled_refs).unwrap();
            assert_eq!(
                rescaled,
                cold.execute(&scaled_refs).unwrap(),
                "{alg}: hit must recompute values from the new inputs"
            );

            if expects_caching(alg) {
                assert_eq!(s1.pattern, PatternOutcome::Miss, "{alg}: first run");
                assert_eq!(s2.pattern, PatternOutcome::Hit, "{alg}: second run");
                assert!(s2.symbolic_skipped, "{alg}: hit skips symbolic");
                assert_eq!(s2.symbolic, 0.0, "{alg}: no symbolic seconds on a hit");
                assert_eq!(
                    s3.pattern,
                    PatternOutcome::Hit,
                    "{alg}: same structure with new values still hits"
                );
            } else {
                for s in [s1, s2, s3] {
                    assert_eq!(s.pattern, PatternOutcome::Bypassed, "{alg}");
                    assert!(!s.symbolic_skipped, "{alg}");
                }
            }
        }
    }
}

#[test]
fn execute_into_composes_with_the_cache() {
    let mats = collection(Pattern::Er, 7);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut plan = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .pattern_cache(2)
        .build::<f64>()
        .unwrap();
    let expect = plan.execute(&refs).unwrap();
    let mut sink = CscMatrix::zeros(0, 0);
    let stats = plan.execute_into_timed(&refs, &mut sink).unwrap();
    assert_eq!(sink, expect);
    assert_eq!(stats.pattern, PatternOutcome::Hit);
    assert!(stats.symbolic_skipped);
    // Again, now recycling the previous hit's buffers.
    let stats = plan.execute_into_timed(&refs, &mut sink).unwrap();
    assert_eq!(sink, expect);
    assert_eq!(stats.pattern, PatternOutcome::Hit);
    let cache = plan.pattern_stats().unwrap();
    assert_eq!((cache.hits, cache.misses), (2, 1));
}

#[test]
fn steady_state_hit_allocates_no_workspaces() {
    let mats = collection(Pattern::Er, 13);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut plan = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .threads(1)
        .pattern_cache(1)
        .build::<f64>()
        .unwrap();
    plan.execute(&refs).unwrap();
    let after_cold = plan.workspace_allocations();
    let mut sink = CscMatrix::zeros(0, 0);
    plan.execute_into(&refs, &mut sink).unwrap();
    plan.execute_into(&refs, &mut sink).unwrap();
    assert_eq!(
        plan.workspace_allocations(),
        after_cold,
        "warm numeric-only executions must reuse the retained workspaces"
    );
}

#[test]
fn lru_evicts_at_capacity() {
    let a = collection(Pattern::Er, 1);
    let b = collection(Pattern::Er, 2);
    let c = collection(Pattern::Er, 3);
    fn refs(v: &[CscMatrix<f64>]) -> Vec<&CscMatrix<f64>> {
        v.iter().collect()
    }
    let mut plan = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .pattern_cache(2)
        .build::<f64>()
        .unwrap();

    let outcome = |plan: &mut spkadd::SpkAddPlan<f64>, mats: &[CscMatrix<f64>]| -> ExecuteStats {
        let (_, stats) = plan.execute_timed(&refs(mats)).unwrap();
        stats
    };

    assert_eq!(outcome(&mut plan, &a).pattern, PatternOutcome::Miss);
    assert_eq!(outcome(&mut plan, &b).pattern, PatternOutcome::Miss);
    assert_eq!(outcome(&mut plan, &a).pattern, PatternOutcome::Hit);
    // Third distinct pattern evicts b (a was refreshed more recently).
    assert_eq!(outcome(&mut plan, &c).pattern, PatternOutcome::Miss);
    assert_eq!(
        outcome(&mut plan, &b).pattern,
        PatternOutcome::Miss,
        "evicted"
    );
    let stats = plan.pattern_stats().unwrap();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.capacity, 2);
    assert!(stats.evictions >= 2, "b's re-insert evicts again");
}

#[test]
fn mutated_rowidx_misses() {
    let mats = collection(Pattern::Er, 99);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut plan = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .pattern_cache(4)
        .build::<f64>()
        .unwrap();
    let (_, s) = plan.execute_timed(&refs).unwrap();
    assert_eq!(s.pattern, PatternOutcome::Miss);

    // Move one entry of one matrix to a different row: same dims, k, and
    // nnz, but the structure changed — the fingerprint must not collide.
    let mut mutated: Vec<CscMatrix<f64>> = mats.clone();
    let (m, n, colptr, mut rows, vals) = mutated.remove(2).into_parts();
    rows[0] = (rows[0] + 1) % M as u32;
    let mut changed = CscMatrix::try_new(m, n, colptr, rows, vals).unwrap();
    changed.sort_columns();
    mutated.insert(2, changed);
    let mutated_refs: Vec<&CscMatrix<f64>> = mutated.iter().collect();

    let (out, s) = plan.execute_timed(&mutated_refs).unwrap();
    assert_eq!(
        s.pattern,
        PatternOutcome::Miss,
        "mutated structure must miss"
    );
    let mut cold = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .build()
        .unwrap();
    assert_eq!(out, cold.execute(&mutated_refs).unwrap());
}

#[test]
fn filtering_monoid_bypasses_with_identical_results() {
    let mats = collection(Pattern::Rmat, 5);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let monoid = ThresholdedPlus::new(1.5);
    const { assert!(<ThresholdedPlus as Monoid>::MAY_FILTER) };

    let mut cached = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .pattern_cache(4)
        .build_with_monoid::<f64, _>(monoid)
        .unwrap();
    let mut plain = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .build_with_monoid::<f64, _>(monoid)
        .unwrap();

    for _ in 0..3 {
        let (out, stats) = cached.execute_timed(&refs).unwrap();
        assert_eq!(
            stats.pattern,
            PatternOutcome::Bypassed,
            "value-dependent structure must never be cached"
        );
        assert!(!stats.symbolic_skipped);
        assert_eq!(out, plain.execute(&refs).unwrap());
    }
    let stats = cached.pattern_stats().unwrap();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
}

#[test]
fn plans_without_a_cache_report_disabled() {
    let mats = collection(Pattern::Er, 21);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut plan = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .build::<f64>()
        .unwrap();
    let (_, stats) = plan.execute_timed(&refs).unwrap();
    assert_eq!(stats.pattern, PatternOutcome::Disabled);
    assert!(plan.pattern_stats().is_none());
}

#[test]
fn unsorted_output_mode_caches_too() {
    // Unsorted hash emission is first-touch order — deterministic in the
    // input structure — so the cached row order reproduces exactly.
    let mats = collection(Pattern::Er, 17);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut plan = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .sorted_output(false)
        .pattern_cache(2)
        .build::<f64>()
        .unwrap();
    let first = plan.execute(&refs).unwrap();
    let (warm, stats) = plan.execute_timed(&refs).unwrap();
    assert_eq!(stats.pattern, PatternOutcome::Hit);
    assert_eq!(warm, first);
}

#[test]
fn streaming_accumulator_threads_the_cache_through() {
    use spkadd::{FlushPolicy, Options, StreamingAccumulator};
    let mut opts = Options::default();
    opts.pattern_cache = 2;
    let mut acc = StreamingAccumulator::<f64>::with_policy(
        M,
        N,
        FlushPolicy::Matrices(K),
        Algorithm::Hash,
        opts,
    );
    assert!(acc.pattern_stats().is_none(), "no plan before first flush");
    let mats = collection(Pattern::Er, 31);
    for round in 0..4 {
        for m in &mats {
            let mut m = m.clone();
            m.values_mut().iter_mut().for_each(|v| *v += round as f64);
            acc.push(m).unwrap();
        }
    }
    let stats = acc.pattern_stats().unwrap();
    assert_eq!(
        (stats.hits, stats.misses),
        (3, 1),
        "steady-sparsity stream: cold first flush, warm thereafter"
    );
    acc.finish().unwrap();
}

#[test]
fn zero_column_and_tiny_shapes_are_safe() {
    // Degenerate shapes must not trip the cached driver's prefix logic.
    let a = CscMatrix::<f64>::identity(1);
    let mut plan = SpkAdd::new(1, 1)
        .algorithm(Algorithm::Spa)
        .pattern_cache(1)
        .build::<f64>()
        .unwrap();
    let first = plan.execute(&[&a, &a]).unwrap();
    let (warm, stats) = plan.execute_timed(&[&a, &a]).unwrap();
    assert_eq!(stats.pattern, PatternOutcome::Hit);
    assert_eq!(warm, first);
    assert_eq!(warm.get(0, 0).unwrap(), 2.0);
}

#[test]
fn build_with_zero_capacity_is_disabled_not_an_error() {
    let plan = SpkAdd::new(4, 4).pattern_cache(0).build::<f64>().unwrap();
    assert!(plan.pattern_stats().is_none());
}

#[test]
fn errors_do_not_poison_the_cache() {
    let mats = collection(Pattern::Er, 55);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut plan = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .pattern_cache(2)
        .build::<f64>()
        .unwrap();
    plan.execute(&refs).unwrap();
    let wrong = CscMatrix::<f64>::zeros(M + 1, N);
    assert!(matches!(
        plan.execute(&[&wrong]),
        Err(SpkaddError::Sparse(_))
    ));
    let (_, stats) = plan.execute_timed(&refs).unwrap();
    assert_eq!(stats.pattern, PatternOutcome::Hit, "cache survives errors");
}
