//! Observability integration: the plan's phase spans and kernel events
//! line up with `ExecuteStats`, the pattern-cache counters move on the
//! global registry, and the disabled path stays allocation-free at
//! steady state.
//!
//! Tracing state is process-global, so the tests serialize on one lock
//! and filter drained spans per test where needed.

use spk_gen::{generate_collection, Pattern};
use spk_sparse::CscMatrix;
use spkadd::{Algorithm, PatternOutcome, SpkAdd};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

const ROWS: usize = 1 << 10;
const COLS: usize = 24;

fn collection() -> Vec<CscMatrix<f64>> {
    let mut mats = generate_collection(Pattern::Rmat, ROWS, COLS, 6, 6, 11);
    for m in &mut mats {
        m.sort_columns();
    }
    mats
}

fn names(spans: &[spk_obs::SpanRecord]) -> Vec<&'static str> {
    spans.iter().map(|s| s.name).collect()
}

#[test]
fn execute_emits_phase_spans_and_kernel_events() {
    let _g = lock();
    let mats = collection();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut plan = SpkAdd::new(ROWS, COLS)
        .algorithm(Algorithm::Hash)
        .threads(1)
        .build::<f64>()
        .unwrap();
    spk_obs::set_tracing(true);
    spk_obs::take_spans();
    let stats = plan.execute_timed(&refs).map(|(_, s)| s).unwrap();
    spk_obs::set_tracing(false);
    let spans: Vec<_> = spk_obs::take_spans()
        .into_iter()
        .filter(|s| s.name.starts_with("spkadd.") || s.name.starts_with("kway."))
        .collect();
    let n = names(&spans);
    assert!(n.contains(&"spkadd.execute"), "got {n:?}");
    assert!(n.contains(&"spkadd.symbolic"), "got {n:?}");
    assert!(n.contains(&"spkadd.numeric"), "got {n:?}");
    assert!(
        n.iter().any(|s| s.starts_with("kway.dispatch.")),
        "kernel dispatch events missing: {n:?}"
    );
    // The trace and ExecuteStats are the same measurement, not two
    // clocks: the numeric span IS stats.numeric.
    let numeric = spans.iter().find(|s| s.name == "spkadd.numeric").unwrap();
    assert_eq!(numeric.dur_ns, (stats.numeric * 1e9).round() as u64);
    let symbolic = spans.iter().find(|s| s.name == "spkadd.symbolic").unwrap();
    assert_eq!(symbolic.dur_ns, (stats.symbolic * 1e9).round() as u64);
    // Phases nest under the execute root.
    let execute = spans.iter().find(|s| s.name == "spkadd.execute").unwrap();
    assert_eq!(execute.depth, 0);
    assert_eq!(numeric.depth, 1);
}

#[test]
fn pattern_hit_skips_the_symbolic_span() {
    let _g = lock();
    let mats = collection();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut plan = SpkAdd::new(ROWS, COLS)
        .algorithm(Algorithm::Hash)
        .threads(1)
        .pattern_cache(2)
        .build::<f64>()
        .unwrap();
    // Cold execute inserts the pattern (untraced).
    let stats = plan.execute_timed(&refs).map(|(_, s)| s).unwrap();
    assert_eq!(stats.pattern, PatternOutcome::Miss);

    spk_obs::set_tracing(true);
    spk_obs::take_spans();
    let stats = plan.execute_timed(&refs).map(|(_, s)| s).unwrap();
    spk_obs::set_tracing(false);
    assert_eq!(stats.pattern, PatternOutcome::Hit);
    assert!(stats.symbolic_skipped);
    let spans: Vec<_> = spk_obs::take_spans()
        .into_iter()
        .filter(|s| s.name.starts_with("spkadd."))
        .collect();
    let n = names(&spans);
    assert!(n.contains(&"spkadd.execute"));
    assert!(n.contains(&"spkadd.fingerprint"));
    assert!(n.contains(&"spkadd.numeric"));
    assert!(
        !n.contains(&"spkadd.symbolic"),
        "a cache hit must skip the symbolic phase entirely: {n:?}"
    );
    assert!(
        !n.contains(&"spkadd.pattern_insert"),
        "a hit inserts nothing: {n:?}"
    );
}

#[test]
fn pattern_counters_move_on_the_global_registry() {
    let _g = lock();
    let mats = collection();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let read = |name: &str| {
        spk_obs::global()
            .snapshot()
            .counter(name)
            .unwrap_or_default()
    };
    let hits0 = read("spkadd.pattern.hits");
    let misses0 = read("spkadd.pattern.misses");
    let inserts0 = read("spkadd.pattern.insertions");

    let mut plan = SpkAdd::new(ROWS, COLS)
        .algorithm(Algorithm::Spa)
        .threads(1)
        .pattern_cache(2)
        .build::<f64>()
        .unwrap();
    plan.execute(&refs).unwrap(); // miss + insert
    plan.execute(&refs).unwrap(); // hit
    plan.execute(&refs).unwrap(); // hit

    assert_eq!(read("spkadd.pattern.misses"), misses0 + 1);
    assert_eq!(read("spkadd.pattern.insertions"), inserts0 + 1);
    assert_eq!(read("spkadd.pattern.hits"), hits0 + 2);
}

#[test]
fn disabled_tracing_stays_allocation_free_at_steady_state() {
    let _g = lock();
    spk_obs::set_tracing(false);
    let mats = collection();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut plan = SpkAdd::new(ROWS, COLS)
        .algorithm(Algorithm::Hash)
        .threads(1)
        .pattern_cache(2)
        .build::<f64>()
        .unwrap();
    // First execute builds workspaces and inserts the pattern.
    let first = plan.execute(&refs).unwrap();
    let workspace = plan.workspace_allocations();
    let obs = spk_obs::allocations();
    let mut sink = first.clone();
    for _ in 0..5 {
        plan.execute_into(&refs, &mut sink).unwrap();
        assert_eq!(sink, first);
    }
    assert_eq!(
        plan.workspace_allocations(),
        workspace,
        "steady-state executes must not rebuild workspaces"
    );
    assert_eq!(
        spk_obs::allocations(),
        obs,
        "disabled tracing must add zero obs-layer allocations to the execute path"
    );
}
