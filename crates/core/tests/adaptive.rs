//! Adaptive per-partition kernel selection, end to end.
//!
//! The contract under test: `Algorithm::Auto` with adaptivity enabled
//! re-scores every weight-balanced column chunk and may dispatch a
//! different numeric kernel per chunk, yet the result must be
//! **bit-for-bit identical** to every forced single-kernel execution —
//! all five k-way kernels fold duplicates left-to-right in matrix
//! order, so the chunk-level choice is observable only through
//! [`ExecuteStats::kernel_counts`] and wall time, never through the
//! output. Tree-associated algorithms (2-way/library) reassociate the
//! fold, so the all-nine pins use integer-valued data where every
//! association is exact.

use spk_gen::{generate_collection, Pattern};
use spk_sparse::CscMatrix;
use spkadd::{
    Algorithm, CacheConfig, Min, Monoid, NumericKernel, Or, PatternOutcome, Plus, SaturatingCount,
    SpkAdd, ThresholdedPlus,
};

const M: usize = 256;
const N: usize = 48;
const D: usize = 6;
const K: usize = 7;

const ALL_ALGORITHMS: [Algorithm; 9] = [
    Algorithm::TwoWayIncremental,
    Algorithm::TwoWayTree,
    Algorithm::LibIncremental,
    Algorithm::LibTree,
    Algorithm::Heap,
    Algorithm::Spa,
    Algorithm::Hash,
    Algorithm::SlidingHash,
    Algorithm::SlidingSpa,
];

/// K-way single-fold algorithms — the set whose combine order matches
/// `Auto`'s exactly, float for float.
const KWAY_ALGORITHMS: [Algorithm; 5] = [
    Algorithm::Heap,
    Algorithm::Spa,
    Algorithm::Hash,
    Algorithm::SlidingHash,
    Algorithm::SlidingSpa,
];

fn collection(pattern: Pattern, seed: u64) -> Vec<CscMatrix<f64>> {
    let mut mats = generate_collection(pattern, M, N, D, K, seed);
    for m in &mut mats {
        m.sort_columns();
    }
    mats
}

/// Same structure, small integer values — exact in every association.
fn integer_valued(mats: &[CscMatrix<f64>]) -> Vec<CscMatrix<f64>> {
    mats.iter()
        .map(|m| {
            let (nr, nc, colptr, rows, vals) = m.clone().into_parts();
            let vals = (0..vals.len())
                .map(|i| (i % 7) as f64 - 3.0)
                .collect::<Vec<_>>();
            CscMatrix::from_parts(nr, nc, colptr, rows, vals)
        })
        .collect()
}

/// Same structure, values spanning 12 orders of magnitude: any change
/// in summation order shows up in the low mantissa bits.
fn adversarial_valued(mats: &[CscMatrix<f64>]) -> Vec<CscMatrix<f64>> {
    mats.iter()
        .map(|m| {
            let (nr, nc, colptr, rows, vals) = m.clone().into_parts();
            let vals = (0..vals.len())
                .map(|i| {
                    let mag = 10f64.powi((i % 13) as i32 - 6);
                    (1.0 + (i % 17) as f64) * mag
                })
                .collect::<Vec<_>>();
            CscMatrix::from_parts(nr, nc, colptr, rows, vals)
        })
        .collect()
}

fn convert<T: spk_sparse::Element>(
    mats: &[CscMatrix<f64>],
    f: impl Fn(usize, f64) -> T,
) -> Vec<CscMatrix<T>> {
    mats.iter()
        .map(|m| {
            let (nr, nc, colptr, rows, vals) = m.clone().into_parts();
            let vals = vals.iter().enumerate().map(|(i, &v)| f(i, v)).collect();
            CscMatrix::from_parts(nr, nc, colptr, rows, vals)
        })
        .collect()
}

fn assert_bits_equal(a: &CscMatrix<f64>, b: &CscMatrix<f64>, what: &str) {
    assert_eq!(a.colptr(), b.colptr(), "{what}: colptr");
    assert_eq!(a.rowidx(), b.rowidx(), "{what}: rowidx");
    assert_eq!(a.values().len(), b.values().len(), "{what}: nnz");
    for (i, (x, y)) in a.values().iter().zip(b.values()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: value {i} differs ({x} vs {y})"
        );
    }
}

fn run_monoid<T: spk_sparse::Element, O: Monoid<Value = T> + Copy>(
    mats: &[CscMatrix<T>],
    alg: Algorithm,
    monoid: O,
) -> CscMatrix<T> {
    let refs: Vec<&CscMatrix<T>> = mats.iter().collect();
    SpkAdd::new(M, N)
        .algorithm(alg)
        .threads(3)
        .build_with_monoid::<T, O>(monoid)
        .unwrap()
        .execute(&refs)
        .unwrap()
}

#[test]
fn adaptive_matches_every_algorithm_for_every_monoid_on_exact_data() {
    let base = integer_valued(&collection(Pattern::Rmat, 0xADA));

    // Plus<f64>.
    let auto = run_monoid(&base, Algorithm::Auto, Plus::<f64>::new());
    for alg in ALL_ALGORITHMS {
        let forced = run_monoid(&base, alg, Plus::<f64>::new());
        assert_bits_equal(&auto, &forced, &format!("Plus vs {alg}"));
    }

    // Or over booleans.
    let bools = convert(&base, |_, _| true);
    let auto = run_monoid(&bools, Algorithm::Auto, Or);
    for alg in ALL_ALGORITHMS {
        assert_eq!(auto, run_monoid(&bools, alg, Or), "Or vs {alg}");
    }

    // Tropical min.
    let auto = run_monoid(&base, Algorithm::Auto, Min::<f64>::new());
    for alg in ALL_ALGORITHMS {
        let forced = run_monoid(&base, alg, Min::<f64>::new());
        assert_bits_equal(&auto, &forced, &format!("Min vs {alg}"));
    }

    // Saturating occurrence counts over u32.
    let counts = convert(&base, |i, _| 1 + (i % 3) as u32);
    let auto = run_monoid(&counts, Algorithm::Auto, SaturatingCount);
    for alg in ALL_ALGORITHMS {
        assert_eq!(
            auto,
            run_monoid(&counts, alg, SaturatingCount),
            "SaturatingCount vs {alg}"
        );
    }

    // Filtering monoid: k-way algorithms only — the tree drivers apply
    // `keep` per merge level, a documented, different reduction.
    let monoid = ThresholdedPlus::new(1.5);
    let auto = run_monoid(&base, Algorithm::Auto, monoid);
    for alg in KWAY_ALGORITHMS {
        let forced = run_monoid(&base, alg, monoid);
        assert_bits_equal(&auto, &forced, &format!("ThresholdedPlus vs {alg}"));
    }
}

#[test]
fn adaptive_is_bitwise_equal_to_forced_kway_kernels_on_adversarial_floats() {
    // Rounding-sensitive values: a single out-of-order combine anywhere
    // flips low mantissa bits and fails the pin.
    for pattern in [Pattern::Er, Pattern::Rmat] {
        let mats = adversarial_valued(&collection(pattern, 0xF10A7));
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let auto = SpkAdd::new(M, N)
            .algorithm(Algorithm::Auto)
            .threads(3)
            .build::<f64>()
            .unwrap()
            .execute(&refs)
            .unwrap();
        for alg in KWAY_ALGORITHMS {
            let forced = SpkAdd::new(M, N)
                .algorithm(alg)
                .threads(3)
                .build::<f64>()
                .unwrap()
                .execute(&refs)
                .unwrap();
            assert_bits_equal(&auto, &forced, &format!("{pattern:?} adaptive vs {alg}"));
        }
    }
}

#[test]
fn no_adaptive_escape_hatch_pins_the_collection_level_choice() {
    let mats = collection(Pattern::Rmat, 21);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut pinned = SpkAdd::new(M, N)
        .algorithm(Algorithm::Auto)
        .adaptive(false)
        .threads(3)
        .build::<f64>()
        .unwrap();
    let (out, stats) = pinned.execute_timed(&refs).unwrap();
    assert!(
        stats.kernel_counts.distinct() <= 1,
        "adaptive(false) must run one kernel everywhere, got {}",
        stats.kernel_counts
    );
    // The escape hatch changes dispatch, never the result.
    let auto = SpkAdd::new(M, N)
        .algorithm(Algorithm::Auto)
        .threads(3)
        .build::<f64>()
        .unwrap()
        .execute(&refs)
        .unwrap();
    assert_bits_equal(&out, &auto, "adaptive(false) vs adaptive(true)");
}

/// A deliberately skewed collection: a block of fully dense columns
/// (every row occupied in every matrix) followed by a hypersparse R-MAT
/// tail. Weight-balanced chunking isolates the dense block into its own
/// chunks, whose local density crosses the SPA threshold, while the
/// tail chunks stay on the hash side.
fn skewed_collection(k: usize) -> Vec<CscMatrix<f64>> {
    let rows = 256;
    let dense_cols = 8;
    let tail_cols = 56;
    let mut tail = generate_collection(Pattern::Rmat, rows, tail_cols, 2, k, 0x5EED);
    for t in &mut tail {
        t.sort_columns();
    }
    tail.iter()
        .enumerate()
        .map(|(i, t)| {
            let mut colptr = vec![0usize];
            let mut rowsv = Vec::new();
            let mut vals = Vec::new();
            for j in 0..dense_cols {
                for r in 0..rows {
                    rowsv.push(r as u32);
                    vals.push(((r + i + j) % 5) as f64 - 2.0);
                }
                colptr.push(rowsv.len());
            }
            for j in 0..tail_cols {
                let col = t.col(j);
                rowsv.extend_from_slice(col.rows);
                vals.extend_from_slice(col.vals);
                colptr.push(rowsv.len());
            }
            CscMatrix::try_new(rows, dense_cols + tail_cols, colptr, rowsv, vals).unwrap()
        })
        .collect()
}

#[test]
fn skewed_rmat_collection_mixes_kernels_under_auto() {
    let mats = skewed_collection(6);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let (rows, cols) = refs[0].shape();
    let mut plan = SpkAdd::new(rows, cols)
        .algorithm(Algorithm::Auto)
        .threads(4)
        // Pin the machine model so the decision surface is deterministic
        // regardless of the host's detected caches.
        .cache(CacheConfig {
            llc_bytes: 32 << 20,
            l1_bytes: 32 << 10,
        })
        .build::<f64>()
        .unwrap();
    let (out, stats) = plan.execute_timed(&refs).unwrap();
    assert!(
        stats.kernel_counts.distinct() >= 2,
        "skew must split the decision surface, got {}",
        stats.kernel_counts
    );
    assert!(
        stats.kernel_counts.get(NumericKernel::Spa) > 0,
        "the dense block must go to the SPA family, got {}",
        stats.kernel_counts
    );
    assert!(
        stats.kernel_counts.get(NumericKernel::Hash) > 0,
        "the hypersparse tail must stay on hash, got {}",
        stats.kernel_counts
    );
    // Mixing must still be invisible in the output.
    for alg in KWAY_ALGORITHMS {
        let forced = SpkAdd::new(rows, cols)
            .algorithm(alg)
            .threads(4)
            .build::<f64>()
            .unwrap()
            .execute(&refs)
            .unwrap();
        assert_bits_equal(&out, &forced, &format!("skewed adaptive vs {alg}"));
    }
}

#[test]
fn filtering_monoid_bypasses_the_cache_but_not_adaptivity() {
    let mats = skewed_collection(6);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let (rows, cols) = refs[0].shape();
    let monoid = ThresholdedPlus::new(1.5);
    const { assert!(<ThresholdedPlus as Monoid>::MAY_FILTER) };
    let mut plan = SpkAdd::new(rows, cols)
        .algorithm(Algorithm::Auto)
        .threads(4)
        .cache(CacheConfig {
            llc_bytes: 32 << 20,
            l1_bytes: 32 << 10,
        })
        .pattern_cache(4)
        .build_with_monoid::<f64, _>(monoid)
        .unwrap();
    for round in 0..2 {
        let (_, stats) = plan.execute_timed(&refs).unwrap();
        assert_eq!(
            stats.pattern,
            PatternOutcome::Bypassed,
            "round {round}: value-dependent structure must never be cached"
        );
        assert!(
            stats.kernel_counts.distinct() >= 2,
            "round {round}: the cache bypass must not disable per-chunk \
             scoring, got {}",
            stats.kernel_counts
        );
    }
    let cache = plan.pattern_stats().unwrap();
    assert_eq!((cache.hits, cache.misses), (0, 0));
}

#[test]
fn warm_pattern_hits_replay_memoized_decisions() {
    let mats = skewed_collection(6);
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let (rows, cols) = refs[0].shape();
    let mut plan = SpkAdd::new(rows, cols)
        .algorithm(Algorithm::Auto)
        .threads(4)
        .cache(CacheConfig {
            llc_bytes: 32 << 20,
            l1_bytes: 32 << 10,
        })
        .pattern_cache(2)
        .build::<f64>()
        .unwrap();
    let (cold, s1) = plan.execute_timed(&refs).unwrap();
    assert_eq!(s1.pattern, PatternOutcome::Miss);
    let (warm, s2) = plan.execute_timed(&refs).unwrap();
    assert_eq!(s2.pattern, PatternOutcome::Hit);
    assert_bits_equal(&cold, &warm, "warm replay");
    assert_eq!(
        s1.kernel_counts, s2.kernel_counts,
        "the memoized decision vector must reproduce the cold histogram"
    );
    assert!(s2.kernel_counts.distinct() >= 2);
}

#[test]
fn identity_fast_path_skips_rehash_until_invalidated() {
    // Matrix 0 starts with one column deliberately out of order; the
    // hash algorithm accepts it, and `sort_columns` later permutes that
    // column **in place** — same buffers, same nnz, different structure:
    // exactly the mutation the pointer-identity memo cannot see.
    let mut mats = collection(Pattern::Er, 0x1D);
    {
        let (nr, nc, colptr, mut rows, vals) = mats.remove(0).into_parts();
        let c0 = colptr[1] - colptr[0];
        assert!(c0 >= 2, "need two entries in column 0 to swap");
        rows.swap(0, 1);
        mats.insert(0, CscMatrix::try_new(nr, nc, colptr, rows, vals).unwrap());
    }
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let mut plan = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .pattern_cache(4)
        .build::<f64>()
        .unwrap();
    let (_, s) = plan.execute_timed(&refs).unwrap();
    assert_eq!(s.pattern, PatternOutcome::Miss);
    let (_, s) = plan.execute_timed(&refs).unwrap();
    assert_eq!(s.pattern, PatternOutcome::Hit);
    assert_eq!(
        plan.pattern_stats().unwrap().identity_hits,
        1,
        "same buffers twice in a row skip the re-hash"
    );
    drop(refs);

    // In-place structural mutation: the buffer pointers and nnz are
    // unchanged, so the caller must invalidate the identity memo.
    mats[0].sort_columns();
    plan.invalidate_pattern_identity();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let (out, s) = plan.execute_timed(&refs).unwrap();
    assert_eq!(
        s.pattern,
        PatternOutcome::Miss,
        "after invalidate, the changed structure must re-fingerprint and miss"
    );
    assert_eq!(
        plan.pattern_stats().unwrap().identity_hits,
        1,
        "the invalidated memo must not claim another hit"
    );
    let cold = SpkAdd::new(M, N)
        .algorithm(Algorithm::Hash)
        .build::<f64>()
        .unwrap()
        .execute(&refs)
        .unwrap();
    assert_bits_equal(&out, &cold, "post-mutation result");
}

#[test]
fn streaming_accumulator_aggregates_kernel_histograms() {
    use spkadd::{FlushPolicy, Options, StreamingAccumulator};
    let mats = skewed_collection(6);
    let (rows, cols) = mats[0].shape();
    let mut opts = Options::default().with_threads(4);
    opts.cache = CacheConfig {
        llc_bytes: 32 << 20,
        l1_bytes: 32 << 10,
    };
    let mut acc = StreamingAccumulator::<f64>::with_policy(
        rows,
        cols,
        FlushPolicy::Matrices(3),
        Algorithm::Auto,
        opts,
    );
    assert!(acc.kernel_counts().is_empty(), "nothing flushed yet");
    for round in 0..3 {
        for m in &mats {
            let mut m = m.clone();
            m.values_mut().iter_mut().for_each(|v| *v += round as f64);
            acc.push(m).unwrap();
        }
    }
    let counts = acc.kernel_counts();
    assert!(counts.total() > 0, "flushes must contribute chunks");
    assert!(
        counts.distinct() >= 2,
        "the skewed stream must mix kernels across flushes, got {counts}"
    );
    acc.finish().unwrap();
}
