//! Plan-reuse contract: one `SpkAddPlan` executed over many random
//! collections must match a fresh one-shot `spkadd_with` **bit for bit**
//! for every algorithm (plus `Auto`), and the steady-state path must
//! perform zero workspace allocations after the first execution.

use spk_gen::{generate_collection, Pattern};
use spk_sparse::CscMatrix;
use spkadd::{spkadd_with, Algorithm, Options, SpkAdd, SpkaddError};

const ROWS: usize = 48;
const COLS: usize = 12;

/// Deterministic "random" collection for case `i`: k, density, pattern,
/// and sortedness all vary with the case number.
fn collection(i: u64) -> (Vec<CscMatrix<f64>>, bool) {
    let k = 1 + (i % 6) as usize;
    let d = 1 + ((i * 7) % 11) as usize;
    let pattern = if i.is_multiple_of(2) {
        Pattern::Er
    } else {
        Pattern::Rmat
    };
    let mut mats = generate_collection(pattern, ROWS, COLS, d, k, 1000 + i);
    let scramble = i.is_multiple_of(3);
    if scramble {
        // Reverse every column's entries: unsorted wherever a column has
        // more than one entry.
        for m in &mut mats {
            let (rows, cols, colptr, mut ridx, mut vals) =
                std::mem::replace(m, CscMatrix::zeros(ROWS, COLS)).into_parts();
            for j in 0..cols {
                ridx[colptr[j]..colptr[j + 1]].reverse();
                vals[colptr[j]..colptr[j + 1]].reverse();
            }
            *m = CscMatrix::try_new(rows, cols, colptr, ridx, vals).unwrap();
        }
    }
    (mats, scramble)
}

#[test]
fn one_plan_matches_fresh_oneshot_over_50_random_collections() {
    let opts = Options::default();
    for alg in Algorithm::ALL
        .into_iter()
        .chain(Algorithm::EXTENSIONS)
        .chain([Algorithm::Auto])
    {
        let mut plan = SpkAdd::new(ROWS, COLS)
            .algorithm(alg)
            .build::<f64>()
            .unwrap();
        for case in 0..50u64 {
            let (mats, _) = collection(case);
            let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
            let planned = plan.execute(&refs);
            let oneshot = spkadd_with(&refs, alg, &opts);
            match (planned, oneshot) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{alg} case {case}: plan != one-shot (bit-for-bit)")
                }
                (Err(a), Err(b)) => assert_eq!(
                    a.to_string(),
                    b.to_string(),
                    "{alg} case {case}: error mismatch"
                ),
                (a, b) => panic!(
                    "{alg} case {case}: plan and one-shot disagree on success: \
                     plan={a:?} oneshot={b:?}"
                ),
            }
        }
        assert_eq!(plan.executions() + count_rejected(alg), 50);
    }
}

/// Executions that error (unsorted inputs for the sorted-only
/// algorithms) don't count as completed plan executions.
fn count_rejected(alg: Algorithm) -> u64 {
    if !alg.needs_sorted_inputs() {
        return 0;
    }
    (0..50u64)
        .filter(|&case| {
            let (mats, _) = collection(case);
            mats.iter().any(|m| !m.is_sorted())
        })
        .count() as u64
}

#[test]
fn sorted_only_algorithms_reject_then_keep_working() {
    // A plan that errors on an unsorted collection stays usable.
    let mut plan = SpkAdd::new(ROWS, COLS)
        .algorithm(Algorithm::Heap)
        .build::<f64>()
        .unwrap();
    let (unsorted, scrambled) = collection(0); // case 0 is scrambled
    assert!(scrambled);
    let refs: Vec<&CscMatrix<f64>> = unsorted.iter().collect();
    assert!(matches!(
        plan.execute(&refs),
        Err(SpkaddError::UnsortedInput { .. })
    ));
    let (sorted, scrambled) = collection(1);
    assert!(!scrambled);
    let refs: Vec<&CscMatrix<f64>> = sorted.iter().collect();
    let out = plan.execute(&refs).unwrap();
    assert_eq!(
        out,
        spkadd_with(&refs, Algorithm::Heap, &Options::default()).unwrap()
    );
}

#[test]
fn steady_state_executes_with_zero_workspace_allocations() {
    // Small forced budget so the sliding kernels genuinely panel (and
    // exercise their scratch), single worker so the count is exact.
    for (alg, forced) in [
        (Algorithm::Hash, None),
        (Algorithm::SlidingHash, Some(8)),
        (Algorithm::Spa, None),
        (Algorithm::SlidingSpa, Some(8)),
        (Algorithm::Heap, None),
        (Algorithm::TwoWayTree, None),
    ] {
        let mats = generate_collection(Pattern::Er, ROWS, COLS, 6, 4, 7);
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let mut builder = SpkAdd::new(ROWS, COLS).algorithm(alg).threads(1);
        if let Some(entries) = forced {
            builder = builder.table_entries(entries);
        }
        let mut plan = builder.build::<f64>().unwrap();
        let first = plan.execute(&refs).unwrap();
        let after_first = plan.workspace_allocations();
        let mut sink = first.clone();
        for _ in 0..5 {
            plan.execute_into(&refs, &mut sink).unwrap();
            assert_eq!(sink, first, "{alg}: repeat execution differs");
        }
        assert_eq!(
            plan.workspace_allocations(),
            after_first,
            "{alg}: steady-state executions must not allocate workspaces"
        );
        assert_eq!(plan.executions(), 6);
    }
}

#[test]
fn auto_plan_adapts_across_collection_shapes() {
    let mut plan = SpkAdd::new(ROWS, COLS).build::<f64>().unwrap();
    // k = 2 (pairwise regime) and k = 6 (k-way regime) through one plan.
    for k in [2usize, 6, 2, 6] {
        let mats = generate_collection(Pattern::Er, ROWS, COLS, 4, k, 99 + k as u64);
        let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
        let out = plan.execute(&refs).unwrap();
        let expect = spkadd_with(&refs, Algorithm::Auto, &Options::default()).unwrap();
        assert_eq!(out, expect);
    }
}
