//! End-to-end monoid equivalence over the full driver stack.
//!
//! Two families of pins:
//!
//! 1. **`Plus<f64>` is the scalar path, bit for bit.** The monoid front
//!    door (`spkadd_with_monoid(.., Plus, ..)`) must produce *exactly*
//!    the matrix of the historical `spkadd_with` for every algorithm —
//!    the Scalar entry points are thin wrappers over the same
//!    monomorphized code, so even float rounding must agree.
//! 2. **Non-`+` monoids match independent dense reference folds.** OR
//!    union, tropical min, and the thresholded (filtering) plus are
//!    each checked against a model built with plain loops.
//!
//! Filtering monoids are exercised through the k-way algorithms only:
//! the 2-way/library tree drivers apply `keep` at every merge level,
//! which is a semantically different (documented) reduction.

use spk_gen::{generate_collection, Pattern};
use spk_sparse::CscMatrix;
use spkadd::{spkadd_with, spkadd_with_monoid, Algorithm, Min, Options, Or, Plus, ThresholdedPlus};

const ALL_ALGORITHMS: [Algorithm; 10] = [
    Algorithm::TwoWayIncremental,
    Algorithm::TwoWayTree,
    Algorithm::LibIncremental,
    Algorithm::LibTree,
    Algorithm::Heap,
    Algorithm::Spa,
    Algorithm::Hash,
    Algorithm::SlidingHash,
    Algorithm::SlidingSpa,
    Algorithm::Auto,
];

/// K-way single-fold algorithms — safe for filtering monoids.
const KWAY_ALGORITHMS: [Algorithm; 5] = [
    Algorithm::Heap,
    Algorithm::Spa,
    Algorithm::Hash,
    Algorithm::SlidingHash,
    Algorithm::SlidingSpa,
];

fn collection() -> Vec<CscMatrix<f64>> {
    generate_collection(Pattern::Rmat, 64, 32, 4, 6, 0xA11CE)
}

/// Same structure, small integer values — exact fp arithmetic, so dense
/// reference folds are order-independent.
fn integer_valued(mats: &[CscMatrix<f64>]) -> Vec<CscMatrix<f64>> {
    mats.iter()
        .map(|m| {
            let (nr, nc, colptr, rows, vals) = m.clone().into_parts();
            let vals = (0..vals.len())
                .map(|i| (i % 7) as f64 - 3.0)
                .collect::<Vec<_>>();
            CscMatrix::from_parts(nr, nc, colptr, rows, vals)
        })
        .collect()
}

/// Same structure, all-`true` boolean snapshots.
fn boolean_valued(mats: &[CscMatrix<f64>]) -> Vec<CscMatrix<bool>> {
    mats.iter()
        .map(|m| {
            let (nr, nc, colptr, rows, vals) = m.clone().into_parts();
            CscMatrix::from_parts(nr, nc, colptr, rows, vec![true; vals.len()])
        })
        .collect()
}

#[test]
fn plus_is_bitwise_identical_to_scalar_path_for_every_algorithm() {
    let mats = collection();
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let opts = Options::default();
    for alg in ALL_ALGORITHMS {
        let scalar = spkadd_with(&refs, alg, &opts).unwrap();
        let monoid = spkadd_with_monoid(&refs, Plus::new(), alg, &opts).unwrap();
        assert_eq!(monoid, scalar, "{alg:?}: Plus must be the scalar path");
    }
}

#[test]
fn or_union_matches_dense_reference_for_every_algorithm() {
    let mats = boolean_valued(&collection());
    let refs: Vec<&CscMatrix<bool>> = mats.iter().collect();
    let (m, n) = refs[0].shape();
    let mut dense = vec![false; m * n];
    for mat in &refs {
        for (r, c, v) in mat.iter() {
            dense[c as usize * m + r as usize] |= v;
        }
    }
    let opts = Options::default();
    for alg in ALL_ALGORITHMS {
        let union = spkadd_with_monoid(&refs, Or, alg, &opts).unwrap();
        for j in 0..n {
            let col = union.col(j);
            let expect: Vec<u32> = (0..m as u32)
                .filter(|&r| dense[j * m + r as usize])
                .collect();
            assert_eq!(col.rows, expect.as_slice(), "{alg:?}: column {j} union");
            assert!(col.vals.iter().all(|&v| v), "{alg:?}: union is all true");
        }
    }
}

#[test]
fn tropical_min_matches_dense_reference() {
    let mats = integer_valued(&collection());
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let (m, n) = refs[0].shape();
    // Dense reference: min over *structurally present* entries.
    let mut best = vec![f64::INFINITY; m * n];
    let mut present = vec![false; m * n];
    for mat in &refs {
        for (r, c, v) in mat.iter() {
            let idx = c as usize * m + r as usize;
            best[idx] = best[idx].min(v);
            present[idx] = true;
        }
    }
    let opts = Options::default();
    for alg in ALL_ALGORITHMS {
        let out = spkadd_with_monoid(&refs, Min::<f64>::new(), alg, &opts).unwrap();
        for j in 0..n {
            let col = out.col(j);
            let expect: Vec<(u32, f64)> = (0..m as u32)
                .filter(|&r| present[j * m + r as usize])
                .map(|r| (r, best[j * m + r as usize]))
                .collect();
            let got: Vec<(u32, f64)> = col.iter().collect();
            assert_eq!(got, expect, "{alg:?}: column {j} tropical min");
        }
    }
}

#[test]
fn thresholded_plus_matches_filtered_dense_reference() {
    let mats = integer_valued(&collection());
    let refs: Vec<&CscMatrix<f64>> = mats.iter().collect();
    let (m, n) = refs[0].shape();
    let eps = 1.5f64;
    // Dense reference: exact integer sums, then one global |sum| >= eps
    // filter — the single-fold semantics the k-way algorithms implement.
    let mut sums = vec![0.0f64; m * n];
    let mut present = vec![false; m * n];
    for mat in &refs {
        for (r, c, v) in mat.iter() {
            let idx = c as usize * m + r as usize;
            sums[idx] += v;
            present[idx] = true;
        }
    }
    let monoid = ThresholdedPlus { eps };
    let opts = Options::default();
    for alg in KWAY_ALGORITHMS {
        let out = spkadd_with_monoid(&refs, monoid, alg, &opts).unwrap();
        for j in 0..n {
            let col = out.col(j);
            let expect: Vec<(u32, f64)> = (0..m as u32)
                .filter(|&r| {
                    let idx = j * m + r as usize;
                    present[idx] && sums[idx].abs() >= eps
                })
                .map(|r| (r, sums[j * m + r as usize]))
                .collect();
            let got: Vec<(u32, f64)> = col.iter().collect();
            assert_eq!(got, expect, "{alg:?}: column {j} thresholded sum");
        }
        assert!(
            out.nnz() < refs.iter().map(|r| r.nnz()).sum::<usize>(),
            "{alg:?}: the threshold must actually drop entries"
        );
    }
}

#[test]
fn thresholded_plus_drops_cancelling_entries() {
    // Two matrices whose overlapping entries cancel exactly: the sum at
    // (0,0) is 0.0, which |.| >= eps drops; the non-overlapping entries
    // survive. Exercises the count→upper-bound→compaction route.
    let a = CscMatrix::try_new(4, 2, vec![0, 2, 3], vec![0, 2, 1], vec![5.0, 1.0, 2.0]).unwrap();
    let b = CscMatrix::try_new(4, 2, vec![0, 1, 2], vec![0, 3], vec![-5.0, 4.0]).unwrap();
    let monoid = ThresholdedPlus { eps: 0.5 };
    let opts = Options::default();
    for alg in KWAY_ALGORITHMS {
        let out = spkadd_with_monoid(&[&a, &b], monoid, alg, &opts).unwrap();
        assert_eq!(out.nnz(), 3, "{alg:?}: cancelled entry must vanish");
        assert_eq!(out.col(0).rows, &[2], "{alg:?}");
        assert_eq!(out.col(1).rows, &[1, 3], "{alg:?}");
    }
}
