//! Property tests for the SpKAdd data structures against simple oracle
//! models: the hash accumulator vs a BTreeMap, the SPA vs a dense array,
//! the k-way heap vs a sort-based merge, and the partitioners'
//! tiling invariants.

use proptest::prelude::*;
use spk_sparse::ColView;
use spkadd::hashtab::{HashAccumulator, SymbolicHashTable};
use spkadd::heap::KwayHeap;
use spkadd::mem::NullModel;
use spkadd::parallel::{equal_ranges, exclusive_prefix_sum, weighted_ranges};
use spkadd::spa::Spa;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// HashAccumulator behaves exactly like a BTreeMap<row, sum>.
    #[test]
    fn hash_accumulator_matches_btreemap(
        entries in proptest::collection::vec((0u32..64, -8i32..8), 0..80)
    ) {
        let mut ht = HashAccumulator::<f64>::with_capacity(entries.len());
        let mut oracle: BTreeMap<u32, f64> = BTreeMap::new();
        let mut mem = NullModel;
        for &(r, v) in &entries {
            ht.insert_add(r, v as f64, &mut mem);
            *oracle.entry(r).or_insert(0.0) += v as f64;
        }
        prop_assert_eq!(ht.len(), oracle.len());
        let mut rows = vec![0u32; oracle.len()];
        let mut vals = vec![0.0f64; oracle.len()];
        let n = ht.drain_into(&mut rows, &mut vals, true, &mut mem);
        prop_assert_eq!(n, oracle.len());
        for (i, (&r, &v)) in oracle.iter().enumerate() {
            prop_assert_eq!(rows[i], r);
            prop_assert_eq!(vals[i], v);
        }
    }

    /// The symbolic table counts exactly the distinct keys.
    #[test]
    fn symbolic_table_counts_distinct(
        keys in proptest::collection::vec(0u32..256, 0..200)
    ) {
        let mut ht = SymbolicHashTable::with_capacity(keys.len());
        let mut mem = NullModel;
        let mut fresh = 0usize;
        for &k in &keys {
            if ht.insert(k, &mut mem) {
                fresh += 1;
            }
        }
        let mut unique = keys.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(fresh, unique.len());
        prop_assert_eq!(ht.len(), unique.len());
    }

    /// The SPA matches a dense accumulation array.
    #[test]
    fn spa_matches_dense_array(
        entries in proptest::collection::vec((0u32..48, -8i32..8), 0..100)
    ) {
        let m = 48usize;
        let mut spa = Spa::<f64>::new(m);
        let mut dense = vec![0.0f64; m];
        let mut touched = vec![false; m];
        let mut mem = NullModel;
        for &(r, v) in &entries {
            spa.scatter(r, v as f64, &mut mem);
            dense[r as usize] += v as f64;
            touched[r as usize] = true;
        }
        let count = touched.iter().filter(|&&t| t).count();
        let mut rows = vec![0u32; count];
        let mut vals = vec![0.0f64; count];
        let n = spa.drain_into(&mut rows, &mut vals, true, &mut mem);
        prop_assert_eq!(n, count);
        for (r, v) in rows.iter().zip(&vals) {
            prop_assert_eq!(*v, dense[*r as usize]);
        }
    }

    /// The k-way heap merge equals a sort-and-sum over the same entries.
    #[test]
    fn heap_merge_matches_sort_based_merge(
        cols in proptest::collection::vec(
            proptest::collection::btree_map(0u32..64, -8i32..8, 0..16),
            1..6
        )
    ) {
        let data: Vec<(Vec<u32>, Vec<f64>)> = cols
            .iter()
            .map(|m| {
                let rows: Vec<u32> = m.keys().copied().collect();
                let vals: Vec<f64> = m.values().map(|&v| v as f64).collect();
                (rows, vals)
            })
            .collect();
        let views: Vec<ColView<'_, f64>> = data
            .iter()
            .map(|(r, v)| ColView { rows: r, vals: v })
            .collect();
        let mut oracle: BTreeMap<u32, f64> = BTreeMap::new();
        for (rows, vals) in &data {
            for (r, v) in rows.iter().zip(vals) {
                *oracle.entry(*r).or_insert(0.0) += v;
            }
        }
        let cap: usize = data.iter().map(|(r, _)| r.len()).sum();
        let mut out_rows = vec![0u32; cap.max(1)];
        let mut out_vals = vec![0.0f64; cap.max(1)];
        let mut heap = KwayHeap::<f64>::new(views.len());
        let n = heap.add_column(&views, &mut out_rows, &mut out_vals, &mut NullModel);
        prop_assert_eq!(n, oracle.len());
        for (i, (&r, &v)) in oracle.iter().enumerate() {
            prop_assert_eq!(out_rows[i], r);
            prop_assert_eq!(out_vals[i], v);
        }
        // Symbolic agrees.
        prop_assert_eq!(heap.count_column(&views, &mut NullModel), oracle.len());
    }

    /// Range planners tile [0, n) contiguously with no gaps or overlaps.
    #[test]
    fn partitioners_tile_exactly(
        weights in proptest::collection::vec(0usize..100, 1..64),
        parts in 1usize..12
    ) {
        for ranges in [
            weighted_ranges(&weights, parts),
            equal_ranges(weights.len(), parts),
        ] {
            prop_assert_eq!(ranges.first().unwrap().start, 0);
            prop_assert_eq!(ranges.last().unwrap().end, weights.len());
            for w in ranges.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start);
            }
            prop_assert!(ranges.len() <= parts.max(1));
        }
    }

    /// Weighted ranges achieve ≤ 2× the ideal max-range weight whenever
    /// no single element exceeds the ideal (the greedy-cut guarantee).
    #[test]
    fn weighted_ranges_are_balanced(
        weights in proptest::collection::vec(1usize..50, 4..64),
    ) {
        let parts = 4usize;
        let total: usize = weights.iter().sum();
        let ideal = total.div_ceil(parts);
        let max_single = *weights.iter().max().unwrap();
        let ranges = weighted_ranges(&weights, parts);
        let heaviest = ranges
            .iter()
            .map(|r| weights[r.clone()].iter().sum::<usize>())
            .max()
            .unwrap();
        prop_assert!(
            heaviest <= 2 * ideal + max_single,
            "heaviest range {} vs ideal {} (max single {})",
            heaviest, ideal, max_single
        );
    }

    /// Prefix sums are monotone and end at the total.
    #[test]
    fn prefix_sum_invariants(counts in proptest::collection::vec(0usize..1000, 0..64)) {
        let p = exclusive_prefix_sum(&counts);
        prop_assert_eq!(p.len(), counts.len() + 1);
        prop_assert_eq!(p[0], 0);
        prop_assert_eq!(*p.last().unwrap(), counts.iter().sum::<usize>());
        for (i, c) in counts.iter().enumerate() {
            prop_assert_eq!(p[i + 1] - p[i], *c);
        }
    }
}
