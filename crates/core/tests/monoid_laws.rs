//! Algebraic-law property tests for every shipped [`Monoid`].
//!
//! The SpKAdd kernels are only interchangeable (heap vs hash vs SPA vs
//! 2-way trees) when the combine they fold with is associative and
//! commutative with an absorbing identity — different algorithms visit
//! the same entries in different orders and groupings. These tests pin
//! those laws for every monoid the crate ships, folding random value
//! sequences under random permutations and random split points.

use proptest::prelude::*;
use spkadd::{MaxPlus, Min, Monoid, Or, Plus, SaturatingCount, ThresholdedPlus};

/// Left fold from the identity — how every kernel accumulates a run.
fn fold<O: Monoid>(monoid: O, vals: &[O::Value]) -> O::Value {
    let mut acc = O::IDENTITY;
    for &v in vals {
        monoid.combine(&mut acc, v);
    }
    acc
}

/// Deterministic Fisher–Yates shuffle keyed by `seed`.
fn shuffled<T: Copy>(vals: &[T], seed: u64) -> Vec<T> {
    let mut out = vals.to_vec();
    let mut s = seed | 1;
    for i in (1..out.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        out.swap(i, (s % (i as u64 + 1)) as usize);
    }
    out
}

/// The three laws every kernel relies on, checked on one value sequence:
/// identity (`fold([v]) == v`), order-independence (commutativity +
/// associativity under an arbitrary permutation), and the fold
/// homomorphism `fold(xs ++ ys) == fold(xs) ⊕ fold(ys)` (how tree
/// drivers regroup the reduction). The identity must also be a no-op
/// when folded in anywhere, matching kernels that pre-fill with it.
fn check_laws<O: Monoid>(monoid: O, vals: &[O::Value], seed: u64, split: usize) {
    for &v in vals {
        assert_eq!(fold(monoid, &[v]), v, "identity must absorb");
    }
    let reference = fold(monoid, vals);
    assert_eq!(
        fold(monoid, &shuffled(vals, seed)),
        reference,
        "fold must be order-independent"
    );
    let (xs, ys) = vals.split_at(split.min(vals.len()));
    let mut grouped = fold(monoid, xs);
    monoid.combine(&mut grouped, fold(monoid, ys));
    assert_eq!(grouped, reference, "fold must be regroupable");
    let mut padded = O::IDENTITY;
    monoid.combine(&mut padded, reference);
    monoid.combine(&mut padded, O::IDENTITY);
    assert_eq!(padded, reference, "identity must be a two-sided no-op");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `Plus<f64>` on integer-valued draws (exact fp addition).
    #[test]
    fn plus_laws(
        vals in proptest::collection::vec(-64i32..64, 0..24),
        seed in 0u64..u64::MAX,
        split in 0usize..24,
    ) {
        let vals: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
        check_laws(Plus::<f64>::new(), &vals, seed, split);
    }

    /// `Plus<i64>` — the integer instantiation is exact everywhere.
    #[test]
    fn plus_i64_laws(
        vals in proptest::collection::vec(-1000i64..1000, 0..24),
        seed in 0u64..u64::MAX,
        split in 0usize..24,
    ) {
        check_laws(Plus::<i64>::new(), &vals, seed, split);
    }

    /// Boolean OR.
    #[test]
    fn or_laws(
        vals in proptest::collection::vec(0i32..2, 0..24),
        seed in 0u64..u64::MAX,
        split in 0usize..24,
    ) {
        let vals: Vec<bool> = vals.iter().map(|&v| v != 0).collect();
        check_laws(Or, &vals, seed, split);
    }

    /// Tropical min (identity `+∞`).
    #[test]
    fn min_laws(
        vals in proptest::collection::vec(-1000i64..1000, 0..24),
        seed in 0u64..u64::MAX,
        split in 0usize..24,
    ) {
        check_laws(Min::<i64>::new(), &vals, seed, split);
    }

    /// Tropical max (identity `-∞`), float instantiation.
    #[test]
    fn max_plus_laws(
        vals in proptest::collection::vec(-64i32..64, 0..24),
        seed in 0u64..u64::MAX,
        split in 0usize..24,
    ) {
        let vals: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
        check_laws(MaxPlus::<f64>::new(), &vals, seed, split);
    }

    /// Saturating occurrence counting — saturating_add is associative
    /// and commutative on unsigned values.
    #[test]
    fn saturating_count_laws(
        vals in proptest::collection::vec(0u32..u32::MAX, 0..24),
        seed in 0u64..u64::MAX,
        split in 0usize..24,
    ) {
        check_laws(SaturatingCount, &vals, seed, split);
    }

    /// `ThresholdedPlus` combines exactly like `Plus` (the filter lives
    /// in `keep`, not `combine`, so the monoid laws are untouched), and
    /// `keep` is the pure predicate `|v| >= eps`.
    #[test]
    fn thresholded_plus_laws(
        vals in proptest::collection::vec(-64i32..64, 0..24),
        seed in 0u64..u64::MAX,
        split in 0usize..24,
        eps in 0.0f64..8.0,
    ) {
        let monoid = ThresholdedPlus { eps };
        let vals: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
        check_laws(monoid, &vals, seed, split);
        for &v in &vals {
            prop_assert_eq!(monoid.keep(&v), v.abs() >= eps);
        }
        prop_assert_eq!(fold(monoid, &vals), fold(Plus::new(), &vals));
    }
}
