//! A race-tracked `UnsafeCell`.
//!
//! Inside a model execution, every access is a scheduling point and is
//! checked against the happens-before relation: an access that is not
//! ordered after all earlier conflicting accesses is reported as a
//! data race — even when the serialized execution happens to read the
//! "right" value. Outside a model execution the closures run directly
//! on the raw pointer with zero tracking.
//!
//! The closure-based API (`with` / `with_mut`) mirrors loom: it brackets
//! the access so the checker knows its extent. The caller's safety
//! obligations are exactly those of `std::cell::UnsafeCell` — this type
//! only *detects* violations under the model, it does not make raw
//! access safe.

use crate::rt;

/// Dual-mode counterpart of `std::cell::UnsafeCell`; see the module
/// docs.
#[derive(Debug, Default)]
pub struct UnsafeCell<T> {
    inner: std::cell::UnsafeCell<T>,
    id: rt::ObjId,
}

// SAFETY: cross-thread sharing is this type's purpose — the model
// checker exists to *detect* unsynchronized concurrent access, so the
// type must be shareable for racy protocols to be expressible at all.
// All actual data access goes through `with`/`with_mut`, which only
// hand out raw pointers; dereferencing those requires `unsafe` at the
// call site, where the caller carries exactly `std::cell::UnsafeCell`'s
// obligations. (Same stance as loom's `cell::UnsafeCell`.)
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for UnsafeCell<T> {}

// SAFETY: as for `Send` above — shared references only expose raw
// pointers; the soundness burden sits on the `unsafe` dereference at
// the call site, and the checker reports conflicting access.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub const fn new(v: T) -> Self {
        UnsafeCell {
            inner: std::cell::UnsafeCell::new(v),
            id: rt::ObjId::unset(),
        }
    }

    /// Immutable (read) access. A model-mode race with any concurrent
    /// write fails the execution.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        if let Some(ctx) = rt::current() {
            rt::cell_read(&ctx, self.id.get());
        }
        f(self.inner.get())
    }

    /// Mutable (write) access. A model-mode race with any concurrent
    /// read or write fails the execution.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        if let Some(ctx) = rt::current() {
            rt::cell_write(&ctx, self.id.get());
        }
        f(self.inner.get())
    }

    /// Raw pointer escape hatch — untracked, like std. Prefer
    /// [`Self::with`] / [`Self::with_mut`] so the checker sees the
    /// access.
    pub fn get(&self) -> *mut T {
        self.inner.get()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}
