//! Exit-coded repo-invariant lint pass (see `spk_check::lint` for the
//! rule catalogue). Usage: `spk-lint [workspace-root]` — defaults to
//! the current directory. Exit 0 when clean, 1 on violations, 2 on
//! I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args_os()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    if !root.join("Cargo.toml").is_file() {
        eprintln!(
            "spk-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }
    match spk_check::lint::run(&root) {
        Ok(report) => {
            if report.clean() {
                println!(
                    "spk-lint: clean ({} files scanned, rules: {})",
                    report.files_scanned,
                    spk_check::lint::RULES.join(", ")
                );
                ExitCode::SUCCESS
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                println!(
                    "spk-lint: {} violation(s) in {} files scanned",
                    report.violations.len(),
                    report.files_scanned
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("spk-lint: I/O error: {e}");
            ExitCode::from(2)
        }
    }
}
