//! Dual-mode threads: `spawn`/`join` that participate in the model
//! scheduler inside an execution and delegate to `std::thread` outside
//! one.

use std::sync::Arc;

use crate::rt;

enum HandleImpl<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        tid: usize,
        state: Arc<rt::ModelJoinState<T>>,
        os: std::thread::JoinHandle<()>,
    },
}

/// Dual-mode counterpart of `std::thread::JoinHandle`.
pub struct JoinHandle<T>(HandleImpl<T>);

/// Spawns a thread. Inside a model execution the child becomes a model
/// thread: it runs only when scheduled, the spawn edge orders it after
/// the spawner, and deadlocks involving it are detected.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle(HandleImpl::Std(std::thread::spawn(f))),
        Some(ctx) => {
            let (tid, state, os) = rt::spawn_model(&ctx, f);
            JoinHandle(HandleImpl::Model { tid, state, os })
        }
    }
}

/// Spawn with a thread name (mirrors `std::thread::Builder` just far
/// enough for the workspace's named worker threads).
pub fn spawn_named<T, F>(name: String, f: F) -> std::io::Result<JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => std::thread::Builder::new()
            .name(name)
            .spawn(f)
            .map(|h| JoinHandle(HandleImpl::Std(h))),
        Some(ctx) => {
            // Model thread names are fixed by the runtime (t0, t1, …).
            let _ = name;
            let (tid, state, os) = rt::spawn_model(&ctx, f);
            Ok(JoinHandle(HandleImpl::Model { tid, state, os }))
        }
    }
}

impl<T> JoinHandle<T> {
    /// Joins the thread. In model mode this blocks at the scheduler
    /// level (so a join cycle is a detected deadlock, not a hang) and
    /// establishes the join happens-before edge. `Err` carries no
    /// payload in model mode — a panicked model thread already failed
    /// the whole execution.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            HandleImpl::Std(h) => h.join(),
            HandleImpl::Model { tid, state, os } => {
                let ctx = rt::current().expect("model JoinHandle joined outside the execution");
                rt::join_model(&ctx, tid);
                let _ = os.join();
                let v = state
                    .result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take();
                v.ok_or_else(|| -> Box<dyn std::any::Any + Send> {
                    Box::new("model thread panicked".to_string())
                })
            }
        }
    }
}

/// A voluntary scheduling point in model mode; delegates to
/// `std::thread::yield_now` otherwise.
pub fn yield_now() {
    match rt::current() {
        None => std::thread::yield_now(),
        Some(ctx) => rt::yield_point(&ctx),
    }
}
