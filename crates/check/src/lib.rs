//! Correctness tooling for the SpKAdd workspace.
//!
//! Two halves, both std-only (the build environment has no loom, no
//! sanitizers, no syn):
//!
//! * [`model`] / [`Builder`] — a loom-style deterministic-scheduling
//!   model checker. Write a closure over [`thread`], [`sync`], and
//!   [`cell`] primitives; the checker runs it under every interleaving
//!   (bounded DFS with branch replay, or a seeded random walk) and
//!   reports deadlocks, lost condvar notifications, data races on
//!   [`cell::UnsafeCell`] state, and panics, together with the
//!   schedule trace that produced them. The scheduling model and
//!   happens-before machinery are documented in the private `rt`
//!   module's docs (see `src/rt.rs`).
//!
//! * [`lint`] and the `spk-lint` binary — a repo-invariant lint pass
//!   enforcing rules clippy can't express (SAFETY comments, timing
//!   discipline, shim parity, bench schema tags). See [`lint`] for the
//!   rule catalogue.
//!
//! # Dual-mode primitives
//!
//! Every primitive in [`sync`] / [`cell`] / [`thread`] checks at run
//! time whether the current OS thread belongs to a live model
//! execution. Outside one they delegate straight to `std`, so crates
//! compiled with `--cfg spk_model` (which swaps their sync imports
//! onto this crate) still run normally in ordinary tests and binaries;
//! only code reached from inside [`model`]'s closure is scheduled and
//! checked.
//!
//! # Example
//!
//! ```
//! use spk_check::{model, sync, thread};
//! use std::sync::atomic::Ordering;
//!
//! model(|| {
//!     let n = sync::Arc::new(sync::atomic::AtomicU64::new(0));
//!     let n2 = sync::Arc::clone(&n);
//!     let t = thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! ```

// Almost-std-only-safe: the single pair of `unsafe impl`s lives in
// `cell` (Send/Sync for the tracked UnsafeCell, mirroring loom).
#![deny(unsafe_code)]

pub mod cell;
pub mod lint;
mod rt;
pub mod sync;
pub mod thread;

use std::sync::Arc;

/// What kind of failure an execution hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// No thread runnable while some were still blocked. Lost condvar
    /// notifications surface here (the waiter never wakes).
    Deadlock,
    /// Conflicting [`cell::UnsafeCell`] accesses with no
    /// happens-before edge between them.
    DataRace,
    /// A model thread panicked (assertion failure or otherwise).
    Panic,
    /// Schedule replay diverged — the model body made different
    /// choices visible across runs (e.g. it consulted wall-clock time
    /// or OS randomness), which the checker cannot explore soundly.
    Nondeterminism,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::Deadlock => "deadlock",
            FailureKind::DataRace => "data race",
            FailureKind::Panic => "panic",
            FailureKind::Nondeterminism => "nondeterminism",
        };
        f.write_str(s)
    }
}

/// One failing execution: what went wrong and the schedule that got
/// there.
#[derive(Clone, Debug)]
pub struct Failure {
    pub kind: FailureKind,
    pub message: String,
    /// Per-scheduling-point trace lines (`"t2 mutex.lock"`, …),
    /// truncated past a few thousand entries.
    pub trace: Vec<String>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}: {}", self.kind, self.message)?;
        writeln!(f, "schedule trace ({} points):", self.trace.len())?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Exploration mode.
#[derive(Clone, Copy, Debug)]
pub enum Mode {
    /// Exhaustive DFS with branch replay (bounded by the preemption
    /// budget and the iteration cap).
    Dfs,
    /// Seeded random walk: each iteration draws every scheduling
    /// choice from a deterministic stream, so `seed` reproduces the
    /// exact schedules.
    Random { seed: u64 },
}

/// Outcome of a [`Builder::check`] run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions (interleavings) actually run.
    pub iterations: u64,
    /// `true` if the iteration cap stopped exploration before the
    /// schedule space was exhausted (DFS) or the requested walk length
    /// completed (random).
    pub truncated: bool,
    /// The first failing execution, if any.
    pub failure: Option<Failure>,
    /// FNV digest of every schedule explored, in order — equal digests
    /// mean identical schedule sequences (the determinism contract).
    pub schedule_digest: u64,
}

/// Configures and runs a model-checking session.
///
/// Defaults: exhaustive DFS, unlimited preemptions, 100 000 iteration
/// cap. The `SPK_CHECK_MAX_ITERS` environment variable lowers the cap
/// (CI uses it to bound wall-clock on the 1-core runner); it never
/// raises a cap set explicitly via [`Builder::max_iterations`].
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum preemptive context switches per execution (DFS mode).
    /// `usize::MAX` means unbounded, i.e. fully exhaustive.
    pub max_preemptions: usize,
    /// Maximum executions to run before giving up.
    pub max_iterations: u64,
    pub mode: Mode,
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

impl Builder {
    pub fn new() -> Self {
        Builder {
            max_preemptions: usize::MAX,
            max_iterations: 100_000,
            mode: Mode::Dfs,
        }
    }

    pub fn max_preemptions(mut self, p: usize) -> Self {
        self.max_preemptions = p;
        self
    }

    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n;
        self
    }

    pub fn mode(mut self, m: Mode) -> Self {
        self.mode = m;
        self
    }

    fn effective_cap(&self) -> u64 {
        match std::env::var("SPK_CHECK_MAX_ITERS") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(n) => self.max_iterations.min(n.max(1)),
                Err(_) => self.max_iterations,
            },
            Err(_) => self.max_iterations,
        }
    }

    /// Explores `f` and returns the report. Stops at the first failing
    /// execution, at space exhaustion (DFS), or at the iteration cap.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let cap = self.effective_cap();
        let mut iterations = 0u64;
        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        let mut truncated = false;
        let mut failure = None;
        match self.mode {
            Mode::Dfs => {
                let mut explorer = rt::Explorer::new(self.max_preemptions);
                loop {
                    if iterations >= cap {
                        truncated = true;
                        break;
                    }
                    let (fail, frames) =
                        rt::run_execution(Arc::clone(&f), explorer.prefix.clone(), None);
                    iterations += 1;
                    digest = rt::fold_digest(digest, &frames);
                    if fail.is_some() {
                        failure = fail;
                        break;
                    }
                    if !explorer.advance(&frames) {
                        break;
                    }
                }
            }
            Mode::Random { seed } => {
                for i in 0..cap {
                    // Per-iteration stream: splitmix64 over (seed, i) so
                    // iteration i is reproducible in isolation.
                    let mut z = seed.wrapping_add(i).wrapping_add(0x9e37_79b9_7f4a_7c15);
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    let rng = (z ^ (z >> 31)) | 1;
                    let (fail, frames) = rt::run_execution(Arc::clone(&f), Vec::new(), Some(rng));
                    iterations += 1;
                    digest = rt::fold_digest(digest, &frames);
                    if fail.is_some() {
                        failure = fail;
                        break;
                    }
                }
            }
        }
        Report {
            iterations,
            truncated,
            failure,
            schedule_digest: digest,
        }
    }
}

/// Loom-style entry point: exhaustively explores `f` with the default
/// [`Builder`] and panics with the failure report (kind, message, and
/// schedule trace) if any interleaving fails.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Builder::new().check(f);
    if let Some(failure) = report.failure {
        panic!(
            "model checking failed after {} interleaving(s)\n{failure}",
            report.iterations
        );
    }
    assert!(
        !report.truncated,
        "model checking truncated at {} interleavings without exhausting the schedule \
         space; raise max_iterations or add a preemption bound",
        report.iterations
    );
}
