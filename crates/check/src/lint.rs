//! `spk_lint`: repo-invariant lints that clippy cannot express,
//! implemented as a hand-rolled line scanner (no syn — the offline
//! build has no proc-macro dependencies to lean on).
//!
//! # Rule catalogue
//!
//! | rule | invariant |
//! |------|-----------|
//! | `safety-comment` | every `unsafe` block / `unsafe impl` is preceded (≤ 10 lines, skipping blanks/attributes/sibling impls) or trailed on the same line by a `// SAFETY:` comment |
//! | `instant-now` | no `Instant::now()` outside `crates/obs` (timing flows through `spk_obs` spans / `spk_obs::now`); `crates/shims`, `crates/bench`, tests and benches are exempt |
//! | `no-unwrap` | no `.unwrap()` / `.expect(` in `crates/server/src` outside `#[cfg(test)]` modules — request paths must degrade, not abort |
//! | `shim-parity` | every `rand::` / `rayon::` / `proptest::` / `criterion::` item referenced in the workspace exists in the matching `crates/shims` crate (the Standing-constraints footgun, caught with a readable message before rustc's) |
//! | `bench-schema` | every checked-in `BENCH_*.json` carries the `spk_obs.run_report.v1` schema tag |
//!
//! A violation can be waived with a `spk-lint: allow(<rule>)` comment
//! on the same line or the line above — waivers are themselves
//! greppable, which is the point.
//!
//! The scanner strips comments and blanks string contents before
//! matching (so `".unwrap()"` inside a string literal never fires),
//! handling nested block comments, raw strings, and the char-literal /
//! lifetime ambiguity.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (see the module docs).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Outcome of a lint run.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
}

impl LintReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Names of all rules, for diagnostics/docs.
pub const RULES: [&str; 5] = [
    "safety-comment",
    "instant-now",
    "no-unwrap",
    "shim-parity",
    "bench-schema",
];

// ---------------------------------------------------------------------
// Source model: one scanned line = code text (strings blanked) +
// comment text.
// ---------------------------------------------------------------------

#[derive(Clone, Debug, Default)]
struct ScanLine {
    /// Code with comments removed and string/char contents blanked
    /// (delimiters kept, so token shapes survive).
    code: String,
    /// Concatenated comment text on the line (line + block pieces).
    comment: String,
}

#[derive(Clone, Copy, PartialEq)]
enum ScanState {
    Normal,
    LineComment,
    Block(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Splits Rust source into per-line code/comment channels. This is a
/// lexer-lite: enough fidelity that the substring rules below cannot
/// be fooled by comments or string contents.
fn scan_source(src: &str) -> Vec<ScanLine> {
    let mut lines = Vec::new();
    let mut cur = ScanLine::default();
    let mut state = ScanState::Normal;
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if state == ScanState::LineComment {
                state = ScanState::Normal;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            ScanState::Normal => match c {
                '/' if next == Some('/') => {
                    state = ScanState::LineComment;
                    i += 2;
                }
                '/' if next == Some('*') => {
                    state = ScanState::Block(1);
                    i += 2;
                }
                '"' => {
                    cur.code.push('"');
                    state = ScanState::Str;
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    // r"..." / r#"..."# / br#"..."# — count hashes.
                    let mut j = i + 1;
                    if chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    cur.code.push('"');
                    state = ScanState::RawStr(hashes);
                    i = j + 1;
                }
                '\'' => {
                    // Lifetime ('a) vs char literal ('x'): a lifetime
                    // is a quote + ident NOT closed by another quote.
                    let is_lifetime = next.is_some_and(|n| n.is_alphanumeric() || n == '_')
                        && chars.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        cur.code.push('\'');
                        i += 1;
                    } else {
                        cur.code.push('\'');
                        state = ScanState::Char;
                        i += 1;
                    }
                }
                _ => {
                    cur.code.push(c);
                    i += 1;
                }
            },
            ScanState::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            ScanState::Block(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        ScanState::Normal
                    } else {
                        ScanState::Block(depth - 1)
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = ScanState::Block(depth + 1);
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            ScanState::Str => match c {
                '\\' => {
                    i += 2;
                }
                '"' => {
                    cur.code.push('"');
                    state = ScanState::Normal;
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            },
            ScanState::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if chars.get(i + 1 + h as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        cur.code.push('"');
                        state = ScanState::Normal;
                        i += 1 + hashes as usize;
                        continue;
                    }
                }
                i += 1;
            }
            ScanState::Char => match c {
                '\\' => {
                    i += 2;
                }
                '\'' => {
                    cur.code.push('\'');
                    state = ScanState::Normal;
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            },
        }
    }
    lines.push(cur);
    lines
}

/// `r"`, `r#`, `b"`, `br"`, `br#` at position `i` (and not part of an
/// identifier like `for` or `barrier`).
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'r') {
            j += 1;
        } else {
            return chars.get(j) == Some(&'"');
        }
    } else if chars[j] == 'r' {
        j += 1;
    } else {
        return false;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Is line `idx` (0-based) waived for `rule`? Checks the line's own
/// comment and the full previous line.
fn waived(lines: &[ScanLine], idx: usize, rule: &str) -> bool {
    let needle = format!("spk-lint: allow({rule})");
    if lines[idx].comment.contains(&needle) {
        return true;
    }
    idx > 0 && lines[idx - 1].comment.contains(&needle)
}

// ---------------------------------------------------------------------
// Directory walk
// ---------------------------------------------------------------------

fn walk_rs_files(root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

fn word_at(code: &str, pos: usize, word: &str) -> bool {
    let bytes = code.as_bytes();
    let end = pos + word.len();
    if pos > 0 {
        let prev = bytes[pos - 1] as char;
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    if let Some(&after) = bytes.get(end) {
        let after = after as char;
        if after.is_alphanumeric() || after == '_' {
            return false;
        }
    }
    true
}

/// Finds standalone occurrences of `word` in `code` (token-boundary
/// checked both sides).
fn find_word(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(off) = code[from..].find(word) {
        let pos = from + off;
        if word_at(code, pos, word) {
            return Some(pos);
        }
        from = pos + word.len();
    }
    None
}

/// `safety-comment`: every `unsafe` block or `unsafe impl` must carry
/// a `SAFETY:` comment — same line, or within the 10 preceding lines
/// (blank lines, attributes, and sibling `unsafe impl` lines don't
/// break the association, so one comment can cover a Send+Sync pair
/// only when it sits directly above both; per-impl comments are the
/// convention this rule pushes toward).
fn rule_safety_comment(file: &str, lines: &[ScanLine], out: &mut Vec<Violation>) {
    for (idx, line) in lines.iter().enumerate() {
        let Some(pos) = find_word(&line.code, "unsafe") else {
            continue;
        };
        let after = line.code[pos + "unsafe".len()..].trim_start();
        // `unsafe fn` declarations document their contract in rustdoc
        // (`# Safety`); the block-level rule targets *uses*.
        if after.starts_with("fn") {
            continue;
        }
        let what = if after.starts_with("impl") {
            "unsafe impl"
        } else {
            "unsafe block"
        };
        if line.comment.contains("SAFETY:") {
            continue;
        }
        let mut found = false;
        for back in (0..idx).rev().take(10) {
            let prev = &lines[back];
            let code = prev.code.trim();
            if prev.comment.contains("SAFETY:") {
                found = true;
                break;
            }
            let skippable = code.is_empty()
                || code.starts_with("#[")
                || code.starts_with("#![")
                || (!prev.comment.is_empty() && code.is_empty())
                || find_word(code, "unsafe").is_some();
            if !skippable {
                break;
            }
        }
        if !found && !waived(lines, idx, "safety-comment") {
            out.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: "safety-comment",
                message: format!("{what} without a preceding `// SAFETY:` comment justifying it"),
            });
        }
    }
}

/// `instant-now`: timing flows through `crates/obs` (spans or
/// `spk_obs::now()`); everything else calling `Instant::now()`
/// directly bypasses the observability layer's single clock.
fn rule_instant_now(file: &str, lines: &[ScanLine], out: &mut Vec<Violation>) {
    let exempt = file.starts_with("crates/obs/")
        || file.starts_with("crates/shims/")
        || file.starts_with("crates/bench/")
        || file.contains("/tests/")
        || file.contains("/benches/");
    if exempt {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if line.code.contains("Instant::now") && !waived(lines, idx, "instant-now") {
            out.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: "instant-now",
                message: "Instant::now() outside crates/obs — use spk_obs::now() or a span \
                          so timing stays on the observability clock"
                    .to_string(),
            });
        }
    }
}

/// `no-unwrap`: `spk_server` request paths must not abort. Test
/// modules (`#[cfg(test)] mod …`) are skipped by brace tracking.
fn rule_no_unwrap(file: &str, lines: &[ScanLine], out: &mut Vec<Violation>) {
    if !file.starts_with("crates/server/src/") {
        return;
    }
    let mut in_test_mod = false;
    let mut pending_cfg_test = false;
    let mut depth: i64 = 0;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if !in_test_mod {
            if code.contains("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test {
                if find_word(code, "mod").is_some() {
                    in_test_mod = true;
                    pending_cfg_test = false;
                    depth = 0;
                } else if !code.trim().is_empty() {
                    pending_cfg_test = false;
                }
            }
        }
        if in_test_mod {
            depth += code.matches('{').count() as i64;
            depth -= code.matches('}').count() as i64;
            if depth <= 0 && code.contains('}') {
                in_test_mod = false;
            }
            continue;
        }
        for pat in [".unwrap()", ".expect("] {
            if code.contains(pat) && !waived(lines, idx, "no-unwrap") {
                out.push(Violation {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: "no-unwrap",
                    message: format!(
                        "`{pat}` in a spk_server non-test path — request handling must \
                         degrade (return an error / count a metric), not abort the worker"
                    ),
                });
            }
        }
    }
}

// ---- shim parity ----------------------------------------------------

const SHIM_CRATES: [&str; 4] = ["rand", "rayon", "proptest", "criterion"];

/// Collects the public surface of one shim crate: item names, macro
/// names, re-exports, and module file stems.
fn shim_surface(shim_src: &Path) -> io::Result<BTreeSet<String>> {
    let mut names = BTreeSet::new();
    let mut files = Vec::new();
    walk_rs_files(shim_src, &mut files)?;
    for path in &files {
        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
            if stem != "lib" && stem != "main" {
                names.insert(stem.to_string());
            }
        }
        let src = fs::read_to_string(path)?;
        for line in scan_source(&src) {
            let code = line.code.trim();
            for prefix in [
                "pub fn ",
                "pub struct ",
                "pub enum ",
                "pub trait ",
                "pub mod ",
                "pub type ",
                "pub const ",
                "pub static ",
                "macro_rules! ",
                "pub(crate) fn ",
            ] {
                if let Some(rest) = code.strip_prefix(prefix) {
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        names.insert(name);
                    }
                }
            }
            if let Some(rest) = code.strip_prefix("pub use ") {
                // `pub use path::{A, B as C, D};` — every exposed name.
                let rest = rest.trim_end_matches(';');
                let items: &str = match rest.rfind('{') {
                    Some(open) => rest[open + 1..].trim_end_matches('}'),
                    None => rest.rsplit("::").next().unwrap_or(rest),
                };
                for item in items.split(',') {
                    let item = item.trim();
                    let exposed = match item.rsplit(" as ").next() {
                        Some(alias) => alias,
                        None => item,
                    };
                    let name: String = exposed
                        .trim()
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() && name != "self" {
                        names.insert(name);
                    }
                }
            }
        }
    }
    Ok(names)
}

/// Extracts the first path segment(s) referenced after `crate_name::`
/// in a line of code, expanding one level of `{...}` groups.
fn referenced_items(code: &str, crate_name: &str) -> Vec<String> {
    let needle = format!("{crate_name}::");
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(off) = code[from..].find(&needle) {
        let pos = from + off;
        if !word_at(code, pos, crate_name) {
            from = pos + needle.len();
            continue;
        }
        let rest = &code[pos + needle.len()..];
        if let Some(stripped) = rest.strip_prefix('{') {
            for item in stripped.split(['}', ';']).next().unwrap_or("").split(',') {
                let seg: String = item
                    .trim()
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !seg.is_empty() && seg != "self" {
                    out.push(seg);
                }
            }
        } else {
            let seg: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !seg.is_empty() {
                out.push(seg);
            }
        }
        from = pos + needle.len();
    }
    out
}

/// `shim-parity`: references to shim crates must resolve against the
/// shim's actual surface — with a message pointing at the Standing
/// constraint, instead of rustc's "unresolved import" an hour later.
fn rule_shim_parity(
    root: &Path,
    files: &[(String, Vec<ScanLine>)],
    out: &mut Vec<Violation>,
) -> io::Result<()> {
    for crate_name in SHIM_CRATES {
        let shim_src = root.join("crates/shims").join(crate_name).join("src");
        if !shim_src.is_dir() {
            continue;
        }
        let surface = shim_surface(&shim_src)?;
        for (file, lines) in files {
            if file.starts_with("crates/shims/") {
                continue;
            }
            for (idx, line) in lines.iter().enumerate() {
                for item in referenced_items(&line.code, crate_name) {
                    if !surface.contains(&item) && !waived(lines, idx, "shim-parity") {
                        out.push(Violation {
                            file: file.clone(),
                            line: idx + 1,
                            rule: "shim-parity",
                            message: format!(
                                "`{crate_name}::{item}` is not provided by \
                                 crates/shims/{crate_name} — the offline shims only carry \
                                 the subset the workspace uses (see Standing constraints \
                                 in ROADMAP.md); extend the shim first"
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// `bench-schema`: checked-in bench baselines must be v1 run reports
/// (obs-check validates structure in CI; this catches hand-edited or
/// legacy files before that).
fn rule_bench_schema(root: &Path, out: &mut Vec<Violation>) -> io::Result<()> {
    for entry in fs::read_dir(root)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            let body = fs::read_to_string(entry.path())?;
            if !body.contains("spk_obs.run_report.v1") {
                out.push(Violation {
                    file: name.clone(),
                    line: 1,
                    rule: "bench-schema",
                    message: "checked-in bench baseline lacks the `spk_obs.run_report.v1` \
                              schema tag — regenerate it with the bench's JSON writer"
                        .to_string(),
                });
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// Runs every rule over the workspace rooted at `root` (the directory
/// containing the workspace `Cargo.toml`).
pub fn run(root: &Path) -> io::Result<LintReport> {
    let mut paths = Vec::new();
    walk_rs_files(root, &mut paths)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let src = fs::read_to_string(path)?;
        files.push((rel(root, path), scan_source(&src)));
    }
    let mut violations = Vec::new();
    for (file, lines) in &files {
        rule_safety_comment(file, lines, &mut violations);
        rule_instant_now(file, lines, &mut violations);
        rule_no_unwrap(file, lines, &mut violations);
    }
    rule_shim_parity(root, &files, &mut violations)?;
    rule_bench_schema(root, &mut violations)?;
    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintReport {
        violations,
        files_scanned: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Vec<ScanLine> {
        scan_source(src)
    }

    #[test]
    fn scanner_strips_comments_and_strings() {
        let src = "let x = \"// not a comment .unwrap()\"; // real comment\n";
        let scanned = lines(src);
        assert!(!scanned[0].code.contains("unwrap"));
        assert!(scanned[0].comment.contains("real comment"));
    }

    #[test]
    fn scanner_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(s: &'a str) -> &'a str { s }\nlet r = r#\"unsafe { }\"#;\n";
        let scanned = lines(src);
        assert!(scanned[0].code.contains("'a"));
        assert!(!scanned[1].code.contains("unsafe"));
    }

    #[test]
    fn scanner_handles_nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let y = 1;\n";
        let scanned = lines(src);
        assert!(scanned[0].code.contains("let y"));
        assert!(!scanned[0].code.contains("outer"));
    }

    #[test]
    fn safety_rule_fires_and_respects_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        let mut v = Vec::new();
        rule_safety_comment("x.rs", &lines(bad), &mut v);
        assert_eq!(v.len(), 1, "{v:?}");

        let good = "// SAFETY: g has no invariants here\nfn f() { unsafe { g() } }\n";
        let mut v = Vec::new();
        rule_safety_comment("x.rs", &lines(good), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn safety_rule_skips_unsafe_fn_decl() {
        let src = "unsafe fn alloc(&self) {}\n";
        let mut v = Vec::new();
        rule_safety_comment("x.rs", &lines(src), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn no_unwrap_skips_test_mod_and_unwrap_or() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n\
                   #[cfg(test)]\nmod tests {\n  fn g() { None::<u32>.unwrap(); }\n}\n";
        let mut v = Vec::new();
        rule_no_unwrap("crates/server/src/service.rs", &lines(src), &mut v);
        assert!(v.is_empty(), "{v:?}");

        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let mut v = Vec::new();
        rule_no_unwrap("crates/server/src/service.rs", &lines(bad), &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn waiver_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // spk-lint: allow(no-unwrap)\n  x.unwrap()\n}\n";
        let mut v = Vec::new();
        rule_no_unwrap("crates/server/src/service.rs", &lines(src), &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn referenced_items_expands_groups() {
        let items = referenced_items("use rand::{Rng, SeedableRng};", "rand");
        assert_eq!(items, vec!["Rng".to_string(), "SeedableRng".to_string()]);
        let items = referenced_items("let r = rand::rngs::StdRng::seed_from_u64(1);", "rand");
        assert_eq!(items, vec!["rngs".to_string()]);
    }
}
