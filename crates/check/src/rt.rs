//! The model-checking runtime: a cooperative scheduler that serializes
//! model threads onto one baton, records every scheduling decision, and
//! re-runs the body under different decision sequences.
//!
//! # How an execution runs
//!
//! Every model thread is a real OS thread, but at most one ever runs at
//! a time: a thread may only execute between two *scheduling points*
//! (every operation on a [`crate::sync`] / [`crate::cell`] primitive)
//! while it holds the baton ([`ExecState::active`]). At each scheduling
//! point the scheduler picks the next runner among the runnable threads
//! and records the choice as a [`Frame`]; the sequence of frames is the
//! *schedule* of the execution. Code between scheduling points is one
//! atomic step — the classical coarse-interleaving reduction: only
//! synchronization operations are visible, so reordering the invisible
//! instructions around them cannot change the reachable states.
//!
//! # How the schedule space is explored
//!
//! *DFS with branch replay*: the first execution takes the default
//! choice everywhere (keep running the current thread). After each
//! execution the [`Explorer`] finds the deepest frame with an untried
//! alternative whose preemption cost fits the budget, and the next
//! execution replays the prefix of recorded choices before it, then
//! takes that alternative. Preemptions — switching away from a thread
//! that could have kept running — are the only thing bounded, so with an
//! unlimited budget the DFS is exhaustive, and with budget `p` it covers
//! every schedule with at most `p` preemptions (the CHESS result: most
//! concurrency bugs need very few).
//!
//! *Seeded random walk*: for state spaces too deep to enumerate, every
//! choice is drawn from a per-iteration xorshift stream derived from the
//! seed, so a run is reproducible choice-for-choice from `(seed, i)`.
//!
//! # What it detects
//!
//! * **Deadlock** — no thread is runnable but some are still blocked
//!   (includes lost condvar notifications: the waiter sleeps forever and
//!   the report says how many notifies found no waiter).
//! * **Data races** — every thread carries a vector clock; release
//!   stores/unlocks/sends publish it, acquire loads/locks/recvs join
//!   it, and a [`crate::cell::UnsafeCell`] access that is not ordered
//!   after every earlier conflicting access by happens-before is
//!   reported even if the serialized execution happened to produce the
//!   right value.
//! * **Assertion failures / panics** — a panic in any model thread
//!   aborts the execution and is reported with the schedule trace.

use std::collections::{HashMap, VecDeque};
use std::panic;
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::{Failure, FailureKind};

/// Sentinel panic payload used to unwind model threads when an
/// execution aborts (failure found, or exploration is shutting down).
/// The panic hook installed by the runner keeps it silent.
pub(crate) struct ModelAbort;

/// Global monotonically increasing object-id source. Ids are assigned
/// lazily on first use, so sync objects can be built in `const`
/// contexts (statics) and still get a stable identity.
static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(0);

/// Lazily-assigned identity of one sync object (mutex, atomic, cell,
/// channel, condvar). `0` means "not assigned yet".
#[derive(Debug)]
pub(crate) struct ObjId(AtomicU64);

impl Default for ObjId {
    fn default() -> Self {
        ObjId::unset()
    }
}

impl ObjId {
    pub(crate) const fn unset() -> Self {
        ObjId(AtomicU64::new(0))
    }

    pub(crate) fn get(&self) -> u64 {
        let v = self.0.load(StdOrdering::Relaxed);
        if v != 0 {
            return v;
        }
        let fresh = NEXT_OBJECT_ID.fetch_add(1, StdOrdering::Relaxed) + 1;
        match self
            .0
            .compare_exchange(0, fresh, StdOrdering::Relaxed, StdOrdering::Relaxed)
        {
            Ok(_) => fresh,
            Err(current) => current,
        }
    }
}

pub(crate) fn fresh_object_id() -> u64 {
    NEXT_OBJECT_ID.fetch_add(1, StdOrdering::Relaxed) + 1
}

// ---------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------

/// A vector clock: component `t` is the last operation of thread `t`
/// known to happen-before the clock's owner.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn set(&mut self, t: usize, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    fn tick(&mut self, t: usize) {
        let v = self.get(t);
        self.set(t, v + 1);
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// `self ≤ other`: every event in `self` happens-before `other`.
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(t, &v)| v <= other.get(t))
    }

    fn clear(&mut self) {
        self.0.clear();
    }
}

// ---------------------------------------------------------------------
// Per-execution object state
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum BlockKind {
    Mutex(u64),
    Condvar(u64),
    ChanSend(u64),
    ChanRecv(u64),
    Join(usize),
}

impl BlockKind {
    fn describe(&self) -> String {
        match self {
            BlockKind::Mutex(id) => format!("Mutex#{id}"),
            BlockKind::Condvar(id) => format!("Condvar#{id}"),
            BlockKind::ChanSend(id) => format!("channel#{id} send (full)"),
            BlockKind::ChanRecv(id) => format!("channel#{id} recv (empty)"),
            BlockKind::Join(t) => format!("join on thread t{t}"),
        }
    }
}

#[derive(Clone, Debug)]
enum Status {
    Runnable,
    Blocked(BlockKind),
    Finished,
}

struct ThreadRec {
    status: Status,
    clock: VClock,
}

#[derive(Default)]
struct MutexObj {
    locked_by: Option<usize>,
    clock: VClock,
}

#[derive(Default)]
struct CondvarObj {
    waiters: Vec<usize>,
    lost_notifies: u64,
}

struct ChannelObj {
    cap: usize,
    len: usize,
    /// Sender clock captured at each enqueued message, FIFO.
    clocks: VecDeque<VClock>,
    senders: usize,
    receiver_alive: bool,
}

#[derive(Default)]
struct AtomicObj {
    /// The clock published by the head of the current release sequence
    /// (empty after a relaxed store broke the sequence).
    clock: VClock,
}

#[derive(Default)]
struct CellObj {
    write: VClock,
    last_writer: Option<usize>,
    /// Per-thread latest-read times since the last write.
    reads: VClock,
}

// ---------------------------------------------------------------------
// Frames and execution state
// ---------------------------------------------------------------------

/// One scheduling decision: who could run, who was picked.
#[derive(Clone, Debug)]
pub(crate) struct Frame {
    /// Candidate threads in decision order: the yielder first when it is
    /// still runnable (the non-preemptive default), then the other
    /// runnable threads in ascending id order.
    pub(crate) cands: Vec<usize>,
    /// Index into `cands` that was taken.
    pub(crate) chosen: usize,
    /// The thread that reached the scheduling point.
    pub(crate) yielder: usize,
    /// Whether the yielder could have kept running (if so, picking any
    /// other candidate is a preemption).
    pub(crate) yielder_runnable: bool,
    /// Preemptions spent before this frame (for budget accounting).
    pub(crate) preemptions_before: usize,
}

const TRACE_CAP: usize = 4000;

struct ExecState {
    threads: Vec<ThreadRec>,
    active: usize,
    /// Forced choice indices for the replay prefix (DFS mode).
    prefix: Vec<usize>,
    frames: Vec<Frame>,
    preemptions: usize,
    /// Random-walk state; `None` in DFS mode.
    rng: Option<u64>,
    mutexes: HashMap<u64, MutexObj>,
    condvars: HashMap<u64, CondvarObj>,
    channels: HashMap<u64, ChannelObj>,
    atomics: HashMap<u64, AtomicObj>,
    cells: HashMap<u64, CellObj>,
    failure: Option<Failure>,
    abort: bool,
    trace: Vec<String>,
}

impl ExecState {
    fn push_trace(&mut self, tid: usize, desc: &str) {
        if self.trace.len() < TRACE_CAP {
            self.trace.push(format!("t{tid} {desc}"));
        } else if self.trace.len() == TRACE_CAP {
            self.trace.push("… trace truncated …".to_string());
        }
    }

    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.status, Status::Runnable))
            .map(|(i, _)| i)
            .collect()
    }

    fn all_finished(&self) -> bool {
        self.threads
            .iter()
            .all(|t| matches!(t.status, Status::Finished))
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

// ---------------------------------------------------------------------
// The execution
// ---------------------------------------------------------------------

pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

/// Per-OS-thread handle back to the execution it belongs to.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
}

/// The current model context, if this OS thread is a model thread of a
/// live execution. All `spk_check::sync` primitives consult this and
/// fall back to plain `std` behavior when it is `None` — which is what
/// lets `--cfg spk_model` builds of the real crates run normally
/// outside `model()`.
pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

impl Execution {
    fn new(prefix: Vec<usize>, rng: Option<u64>) -> Self {
        Execution {
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                active: 0,
                prefix,
                frames: Vec::new(),
                preemptions: 0,
                rng,
                mutexes: HashMap::new(),
                condvars: HashMap::new(),
                channels: HashMap::new(),
                atomics: HashMap::new(),
                cells: HashMap::new(),
                failure: None,
                abort: false,
                trace: Vec::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    /// Locks the state, tolerating poison (threads panic out via the
    /// [`ModelAbort`] sentinel while holding the lock by design).
    fn lock_state(&self) -> StdMutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn abort_now(&self) -> ! {
        self.cv.notify_all();
        panic::panic_any(ModelAbort);
    }

    /// Records a failure, aborts the execution, and unwinds.
    fn fail(&self, st: &mut ExecState, kind: FailureKind, message: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(Failure {
                kind,
                message,
                trace: st.trace.clone(),
            });
        }
        st.abort = true;
        self.abort_now();
    }

    /// The scheduling decision: picks the next runner among the
    /// runnable threads, records the frame, and hands over the baton.
    /// Detects deadlock (nobody runnable, somebody blocked) and
    /// completion (everybody finished).
    fn pick_next(&self, st: &mut ExecState, yielder: usize) {
        let runnable = st.runnable();
        if runnable.is_empty() {
            if st.all_finished() {
                // Completion: wake the coordinator.
                self.cv.notify_all();
                return;
            }
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match &t.status {
                    Status::Blocked(k) => Some(format!("t{i} blocked on {}", k.describe())),
                    _ => None,
                })
                .collect();
            let lost: u64 = st.condvars.values().map(|c| c.lost_notifies).sum();
            let mut msg = format!("deadlock: no runnable threads ({})", blocked.join(", "));
            if lost > 0 {
                msg.push_str(&format!(
                    "; {lost} condvar notification(s) were lost (notify with no waiter)"
                ));
            }
            self.fail(st, FailureKind::Deadlock, msg);
        }
        let yielder_runnable = matches!(st.threads[yielder].status, Status::Runnable);
        let mut cands = Vec::with_capacity(runnable.len());
        if yielder_runnable {
            cands.push(yielder);
        }
        cands.extend(runnable.iter().copied().filter(|&t| t != yielder));
        let step = st.frames.len();
        let chosen_idx = if let Some(&forced) = st.prefix.get(step) {
            if forced >= cands.len() {
                self.fail(
                    st,
                    FailureKind::Nondeterminism,
                    format!(
                        "schedule replay diverged at step {step}: forced choice {forced} \
                         but only {} candidates — the model body must be deterministic \
                         apart from scheduling",
                        cands.len()
                    ),
                );
            }
            forced
        } else if let Some(rng) = st.rng.as_mut() {
            (xorshift(rng) % cands.len() as u64) as usize
        } else {
            0
        };
        let chosen = cands[chosen_idx];
        st.frames.push(Frame {
            cands: cands.clone(),
            chosen: chosen_idx,
            yielder,
            yielder_runnable,
            preemptions_before: st.preemptions,
        });
        if yielder_runnable && chosen != yielder {
            st.preemptions += 1;
        }
        st.active = chosen;
        self.cv.notify_all();
    }

    /// Blocks until this thread holds the baton (or the execution
    /// aborted, in which case it unwinds).
    fn wait_for_baton(&self, mut st: StdMutexGuard<'_, ExecState>, tid: usize) {
        loop {
            if st.abort {
                drop(st);
                self.abort_now();
            }
            if st.active == tid {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A scheduling point: trace the op, tick the clock, let the
    /// scheduler decide who runs next, and wait until it is this
    /// thread again.
    pub(crate) fn schedule_point(&self, tid: usize, desc: &str) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            self.abort_now();
        }
        st.push_trace(tid, desc);
        st.threads[tid].clock.tick(tid);
        self.pick_next(&mut st, tid);
        self.wait_for_baton(st, tid);
    }

    /// Blocks the calling thread on `kind` and hands the baton over.
    /// Returns when some other thread has made it runnable again and
    /// the scheduler picked it.
    fn block_self(&self, mut st: StdMutexGuard<'_, ExecState>, tid: usize, kind: BlockKind) {
        st.push_trace(tid, &format!("blocks on {}", kind.describe()));
        st.threads[tid].status = Status::Blocked(kind);
        self.pick_next(&mut st, tid);
        self.wait_for_baton(st, tid);
    }

    /// Marks every thread blocked on `pred` runnable again.
    fn wake_where(st: &mut ExecState, pred: impl Fn(&BlockKind) -> bool) {
        for t in st.threads.iter_mut() {
            if let Status::Blocked(k) = &t.status {
                if pred(k) {
                    t.status = Status::Runnable;
                }
            }
        }
    }

    /// Called by a model thread's wrapper when its body returned or
    /// panicked. Non-sentinel panics become the execution's failure.
    fn thread_exit(&self, tid: usize, panic_payload: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.lock_state();
        st.threads[tid].status = Status::Finished;
        match panic_payload {
            Some(p) if p.is::<ModelAbort>() => {
                self.cv.notify_all();
            }
            Some(p) => {
                let msg = if let Some(s) = p.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = p.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                if st.failure.is_none() {
                    st.failure = Some(Failure {
                        kind: FailureKind::Panic,
                        message: format!("thread t{tid} panicked: {msg}"),
                        trace: st.trace.clone(),
                    });
                }
                st.abort = true;
                self.cv.notify_all();
            }
            None => {
                st.push_trace(tid, "exits");
                st.threads[tid].clock.tick(tid);
                Self::wake_where(&mut st, |k| matches!(k, BlockKind::Join(t) if *t == tid));
                self.pick_next(&mut st, tid);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner (one execution)
// ---------------------------------------------------------------------

/// Installs (once) a panic hook that keeps [`ModelAbort`] unwinds and
/// model-thread panics quiet — failures are captured in the report, so
/// the default "thread panicked" noise would only drown exploration.
fn install_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ModelAbort>() || current().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

/// Runs one execution of `f` under the given replay prefix / rng and
/// returns `(failure, frames)`.
pub(crate) fn run_execution(
    f: Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
    rng: Option<u64>,
) -> (Option<Failure>, Vec<Frame>) {
    install_panic_hook();
    let exec = Arc::new(Execution::new(prefix, rng));
    {
        let mut st = exec.lock_state();
        let mut clock = VClock::default();
        clock.tick(0);
        st.threads.push(ThreadRec {
            status: Status::Runnable,
            clock,
        });
        st.active = 0;
    }
    let root_exec = Arc::clone(&exec);
    let root = std::thread::Builder::new()
        .name("spk-check-root".to_string())
        .spawn(move || {
            set_ctx(Some(Ctx {
                exec: Arc::clone(&root_exec),
                tid: 0,
            }));
            let out = panic::catch_unwind(panic::AssertUnwindSafe(|| {
                let st = root_exec.lock_state();
                root_exec.wait_for_baton(st, 0);
                f();
            }));
            root_exec.thread_exit(0, out.err());
            set_ctx(None);
        })
        .expect("failed to spawn model root thread");

    // Coordinator: wait until every model thread finished or the
    // execution aborted.
    let (failure, frames) = {
        let mut st = exec.lock_state();
        while !(st.abort || st.all_finished()) {
            st = exec.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        (st.failure.take(), std::mem::take(&mut st.frames))
    };
    let _ = root.join();
    (failure, frames)
}

// ---------------------------------------------------------------------
// Explorer (DFS with branch replay, preemption-bounded)
// ---------------------------------------------------------------------

pub(crate) struct Explorer {
    pub(crate) prefix: Vec<usize>,
    max_preemptions: usize,
}

impl Explorer {
    pub(crate) fn new(max_preemptions: usize) -> Self {
        Explorer {
            prefix: Vec::new(),
            max_preemptions,
        }
    }

    /// Advances to the next unexplored schedule: the deepest frame with
    /// an untried alternative whose preemption cost fits the budget.
    /// Returns `false` when the (budget-bounded) space is exhausted.
    pub(crate) fn advance(&mut self, frames: &[Frame]) -> bool {
        for i in (0..frames.len()).rev() {
            let f = &frames[i];
            for j in (f.chosen + 1)..f.cands.len() {
                let preemptive = f.yielder_runnable && f.cands[j] != f.yielder;
                if preemptive && f.preemptions_before >= self.max_preemptions {
                    continue;
                }
                self.prefix = frames[..i].iter().map(|g| g.chosen).collect();
                self.prefix.push(j);
                return true;
            }
        }
        false
    }
}

/// FNV-1a fold of one execution's schedule into a running digest —
/// lets tests assert "same seed ⇒ same schedules" cheaply.
pub(crate) fn fold_digest(mut digest: u64, frames: &[Frame]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut eat = |v: u64| {
        digest ^= v;
        digest = digest.wrapping_mul(PRIME);
    };
    eat(0x5eed);
    for f in frames {
        eat(f.cands[f.chosen] as u64);
        eat(f.cands.len() as u64);
    }
    digest
}

// ---------------------------------------------------------------------
// Operations used by the sync/cell/thread wrappers
// ---------------------------------------------------------------------

const ACQ: [std::sync::atomic::Ordering; 3] = [
    std::sync::atomic::Ordering::Acquire,
    std::sync::atomic::Ordering::AcqRel,
    std::sync::atomic::Ordering::SeqCst,
];
const REL: [std::sync::atomic::Ordering; 3] = [
    std::sync::atomic::Ordering::Release,
    std::sync::atomic::Ordering::AcqRel,
    std::sync::atomic::Ordering::SeqCst,
];

/// Atomic load: acquire orderings join the release clock of the atomic
/// into the loader. (SeqCst is approximated as AcqRel; serialized
/// execution means values are always the latest in modification order,
/// which over-synchronizes values but never hides a cell race.)
pub(crate) fn atomic_load(ctx: &Ctx, id: u64, order: std::sync::atomic::Ordering) {
    ctx.exec.schedule_point(ctx.tid, "atomic.load");
    let mut st = ctx.exec.lock_state();
    if ACQ.contains(&order) {
        let clock = st.atomics.entry(id).or_default().clock.clone();
        st.threads[ctx.tid].clock.join(&clock);
    }
}

/// Atomic store: a release store publishes the storer's clock as the
/// head of a new release sequence; a relaxed store breaks the sequence
/// (clears the clock), so later acquire loads no longer synchronize.
pub(crate) fn atomic_store(ctx: &Ctx, id: u64, order: std::sync::atomic::Ordering) {
    ctx.exec.schedule_point(ctx.tid, "atomic.store");
    let mut st = ctx.exec.lock_state();
    let clock = st.threads[ctx.tid].clock.clone();
    let obj = st.atomics.entry(id).or_default();
    if REL.contains(&order) {
        obj.clock = clock;
    } else {
        obj.clock.clear();
    }
}

/// Atomic read-modify-write: joins on the acquire side, contributes on
/// the release side, and — unlike a plain store — never breaks an
/// existing release sequence (C++17 §32.4: RMWs continue it).
pub(crate) fn atomic_rmw(ctx: &Ctx, id: u64, order: std::sync::atomic::Ordering) {
    ctx.exec.schedule_point(ctx.tid, "atomic.rmw");
    let mut st = ctx.exec.lock_state();
    if ACQ.contains(&order) {
        let clock = st.atomics.entry(id).or_default().clock.clone();
        st.threads[ctx.tid].clock.join(&clock);
    }
    if REL.contains(&order) {
        let clock = st.threads[ctx.tid].clock.clone();
        st.atomics.entry(id).or_default().clock.join(&clock);
    }
}

/// Tracked `UnsafeCell` read: a race unless the last write
/// happened-before this thread's current clock.
pub(crate) fn cell_read(ctx: &Ctx, id: u64) {
    ctx.exec.schedule_point(ctx.tid, "cell.read");
    let mut st = ctx.exec.lock_state();
    let me = st.threads[ctx.tid].clock.clone();
    let cell = st.cells.entry(id).or_default();
    if !cell.write.le(&me) {
        let writer = cell
            .last_writer
            .map(|t| format!("t{t}"))
            .unwrap_or_default();
        let msg = format!(
            "data race on UnsafeCell#{id}: read by t{} is concurrent with the write by {writer} \
             (no happens-before edge orders them)",
            ctx.tid
        );
        ctx.exec.fail(&mut st, FailureKind::DataRace, msg);
    }
    let time = me.get(ctx.tid);
    cell.reads.set(ctx.tid, time);
}

/// Tracked `UnsafeCell` write: a race unless every earlier read and the
/// last write happened-before this thread's current clock.
pub(crate) fn cell_write(ctx: &Ctx, id: u64) {
    ctx.exec.schedule_point(ctx.tid, "cell.write");
    let mut st = ctx.exec.lock_state();
    let me = st.threads[ctx.tid].clock.clone();
    let cell = st.cells.entry(id).or_default();
    if !cell.write.le(&me) || !cell.reads.le(&me) {
        let kind = if cell.write.le(&me) { "read" } else { "write" };
        let msg = format!(
            "data race on UnsafeCell#{id}: write by t{} is concurrent with an earlier {kind} \
             (no happens-before edge orders them)",
            ctx.tid
        );
        ctx.exec.fail(&mut st, FailureKind::DataRace, msg);
    }
    cell.write = me;
    cell.last_writer = Some(ctx.tid);
    cell.reads.clear();
}

// ---- mutex ----------------------------------------------------------

/// Model-level mutex acquisition; blocks (scheduler-level) until held.
pub(crate) fn mutex_lock(ctx: &Ctx, id: u64) {
    loop {
        ctx.exec.schedule_point(ctx.tid, "mutex.lock");
        let mut st = ctx.exec.lock_state();
        let obj = st.mutexes.entry(id).or_default();
        if obj.locked_by.is_none() {
            obj.locked_by = Some(ctx.tid);
            let clock = obj.clock.clone();
            st.threads[ctx.tid].clock.join(&clock);
            return;
        }
        ctx.exec.block_self(st, ctx.tid, BlockKind::Mutex(id));
    }
}

/// Model-level mutex release. Called from guard drop — must not panic,
/// so it performs no scheduling point (the next visible op yields).
pub(crate) fn mutex_unlock(ctx: &Ctx, id: u64) {
    let mut st = ctx.exec.lock_state();
    st.threads[ctx.tid].clock.tick(ctx.tid);
    let clock = st.threads[ctx.tid].clock.clone();
    let obj = st.mutexes.entry(id).or_default();
    obj.locked_by = None;
    obj.clock = clock;
    Execution::wake_where(&mut st, |k| matches!(k, BlockKind::Mutex(m) if *m == id));
}

// ---- condvar --------------------------------------------------------

/// Condvar wait: atomically (under the scheduler lock) registers as a
/// waiter and releases the mutex, then sleeps until notified and
/// scheduled. The caller re-acquires the mutex afterwards.
pub(crate) fn condvar_wait(ctx: &Ctx, cv_id: u64, mutex_id: u64) {
    ctx.exec.schedule_point(ctx.tid, "condvar.wait");
    let mut st = ctx.exec.lock_state();
    st.condvars.entry(cv_id).or_default().waiters.push(ctx.tid);
    // Release the mutex exactly like an unlock, without giving up the
    // scheduler lock in between — that gap is where real lost wakeups
    // live, and std's wait is atomic against it.
    st.threads[ctx.tid].clock.tick(ctx.tid);
    let clock = st.threads[ctx.tid].clock.clone();
    let obj = st.mutexes.entry(mutex_id).or_default();
    obj.locked_by = None;
    obj.clock = clock;
    Execution::wake_where(
        &mut st,
        |k| matches!(k, BlockKind::Mutex(m) if *m == mutex_id),
    );
    ctx.exec.block_self(st, ctx.tid, BlockKind::Condvar(cv_id));
}

/// Condvar notify: wakes the first waiter (FIFO), or counts a lost
/// notification when nobody is waiting — that count is surfaced in
/// deadlock reports, where lost wakeups end up.
pub(crate) fn condvar_notify(ctx: &Ctx, cv_id: u64, all: bool) {
    ctx.exec.schedule_point(
        ctx.tid,
        if all {
            "condvar.notify_all"
        } else {
            "condvar.notify_one"
        },
    );
    let mut st = ctx.exec.lock_state();
    let cv = st.condvars.entry(cv_id).or_default();
    if cv.waiters.is_empty() {
        cv.lost_notifies += 1;
        return;
    }
    let woken: Vec<usize> = if all {
        std::mem::take(&mut cv.waiters)
    } else {
        vec![cv.waiters.remove(0)]
    };
    for t in woken {
        st.threads[t].status = Status::Runnable;
    }
}

// ---- channels -------------------------------------------------------

/// Registers a bounded channel object with the current execution and
/// returns its id. `cap == 0` (rendezvous) is not modeled.
pub(crate) fn channel_register(ctx: &Ctx, cap: usize) -> u64 {
    assert!(
        cap > 0,
        "spk_check::sync::mpsc does not model capacity-0 rendezvous channels; use cap >= 1"
    );
    let id = fresh_object_id();
    let mut st = ctx.exec.lock_state();
    st.channels.insert(
        id,
        ChannelObj {
            cap,
            len: 0,
            clocks: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        },
    );
    id
}

/// Outcome of a model channel send attempt (the typed queue push is the
/// caller's job once `Ok` comes back).
pub(crate) enum SendOutcome {
    Sent,
    Disconnected,
}

/// Blocks (scheduler-level) until there is room, then reserves a slot
/// and records the sender's clock. Returns `Disconnected` if the
/// receiver is gone.
pub(crate) fn channel_send(ctx: &Ctx, id: u64) -> SendOutcome {
    loop {
        ctx.exec.schedule_point(ctx.tid, "mpsc.send");
        let mut st = ctx.exec.lock_state();
        let me = st.threads[ctx.tid].clock.clone();
        let ch = st.channels.get_mut(&id).expect("channel object");
        if !ch.receiver_alive {
            return SendOutcome::Disconnected;
        }
        if ch.len < ch.cap {
            ch.len += 1;
            ch.clocks.push_back(me);
            Execution::wake_where(&mut st, |k| matches!(k, BlockKind::ChanRecv(c) if *c == id));
            return SendOutcome::Sent;
        }
        ctx.exec.block_self(st, ctx.tid, BlockKind::ChanSend(id));
    }
}

/// Outcome of a model channel receive attempt.
pub(crate) enum RecvOutcome {
    /// A message slot was consumed; pop the typed queue.
    Received,
    Disconnected,
}

/// Blocks (scheduler-level) until a message is available; joins the
/// sender's clock (the channel happens-before edge). Returns
/// `Disconnected` when the queue is empty and every sender is gone.
pub(crate) fn channel_recv(ctx: &Ctx, id: u64) -> RecvOutcome {
    loop {
        ctx.exec.schedule_point(ctx.tid, "mpsc.recv");
        let mut st = ctx.exec.lock_state();
        let ch = st.channels.get_mut(&id).expect("channel object");
        if ch.len > 0 {
            ch.len -= 1;
            let clock = ch.clocks.pop_front().expect("clock per message");
            st.threads[ctx.tid].clock.join(&clock);
            Execution::wake_where(&mut st, |k| matches!(k, BlockKind::ChanSend(c) if *c == id));
            return RecvOutcome::Received;
        }
        if ch.senders == 0 {
            return RecvOutcome::Disconnected;
        }
        ctx.exec.block_self(st, ctx.tid, BlockKind::ChanRecv(id));
    }
}

/// Sender clone/drop bookkeeping. Drops run during unwind, so these
/// never take a scheduling point and never panic.
pub(crate) fn channel_sender_cloned(ctx: &Ctx, id: u64) {
    let mut st = ctx.exec.lock_state();
    if let Some(ch) = st.channels.get_mut(&id) {
        ch.senders += 1;
    }
}

pub(crate) fn channel_sender_dropped(ctx: &Ctx, id: u64) {
    let mut st = ctx.exec.lock_state();
    if let Some(ch) = st.channels.get_mut(&id) {
        ch.senders = ch.senders.saturating_sub(1);
        if ch.senders == 0 {
            Execution::wake_where(&mut st, |k| matches!(k, BlockKind::ChanRecv(c) if *c == id));
        }
    }
}

pub(crate) fn channel_receiver_dropped(ctx: &Ctx, id: u64) {
    let mut st = ctx.exec.lock_state();
    if let Some(ch) = st.channels.get_mut(&id) {
        ch.receiver_alive = false;
        Execution::wake_where(&mut st, |k| matches!(k, BlockKind::ChanSend(c) if *c == id));
    }
}

// ---- threads --------------------------------------------------------

pub(crate) struct ModelJoinState<T> {
    pub(crate) result: StdMutex<Option<T>>,
}

/// Spawns a model thread: registers it with the execution (inheriting
/// the spawner's clock — the spawn happens-before edge) and starts an
/// OS thread that waits for its first scheduling slot before running.
pub(crate) fn spawn_model<T: Send + 'static>(
    ctx: &Ctx,
    f: impl FnOnce() -> T + Send + 'static,
) -> (usize, Arc<ModelJoinState<T>>, std::thread::JoinHandle<()>) {
    ctx.exec.schedule_point(ctx.tid, "thread.spawn");
    let child;
    {
        let mut st = ctx.exec.lock_state();
        child = st.threads.len();
        let mut clock = st.threads[ctx.tid].clock.clone();
        clock.tick(child);
        st.threads.push(ThreadRec {
            status: Status::Runnable,
            clock,
        });
    }
    let join_state = Arc::new(ModelJoinState {
        result: StdMutex::new(None),
    });
    let thread_state = Arc::clone(&join_state);
    let exec = Arc::clone(&ctx.exec);
    let os = std::thread::Builder::new()
        .name(format!("spk-check-t{child}"))
        .spawn(move || {
            set_ctx(Some(Ctx {
                exec: Arc::clone(&exec),
                tid: child,
            }));
            let out = panic::catch_unwind(panic::AssertUnwindSafe(|| {
                let st = exec.lock_state();
                exec.wait_for_baton(st, child);
                f()
            }));
            match out {
                Ok(v) => {
                    *thread_state
                        .result
                        .lock()
                        .unwrap_or_else(|e| e.into_inner()) = Some(v);
                    exec.thread_exit(child, None);
                }
                Err(p) => exec.thread_exit(child, Some(p)),
            }
            set_ctx(None);
        })
        .expect("failed to spawn model thread");
    (child, join_state, os)
}

/// Join on a model thread: blocks (scheduler-level) until it finished,
/// then joins its final clock (the join happens-before edge).
pub(crate) fn join_model(ctx: &Ctx, target: usize) {
    loop {
        ctx.exec.schedule_point(ctx.tid, "thread.join");
        let mut st = ctx.exec.lock_state();
        if matches!(st.threads[target].status, Status::Finished) {
            let clock = st.threads[target].clock.clone();
            st.threads[ctx.tid].clock.join(&clock);
            return;
        }
        ctx.exec.block_self(st, ctx.tid, BlockKind::Join(target));
    }
}

/// A voluntary scheduling point (`thread::yield_now`, `hint::spin_loop`).
pub(crate) fn yield_point(ctx: &Ctx) {
    ctx.exec.schedule_point(ctx.tid, "yield");
}
