//! Dual-mode sync primitives: drop-in stand-ins for the `std::sync`
//! subset the workspace uses (`Arc`, `Mutex`, `Condvar`, the numeric
//! atomics, and `mpsc` channels).
//!
//! Inside a [`crate::model`] execution every operation is a scheduling
//! point and feeds the happens-before machinery; outside one, each
//! call delegates to the real `std` primitive with no extra blocking,
//! so `--cfg spk_model` builds of the production crates behave
//! normally in ordinary tests and binaries.
//!
//! API-subset limitations (deliberate): no `try_lock`/`try_send`/
//! `try_recv`/timeouts, and `mpsc::sync_channel(0)` (rendezvous)
//! panics — the workspace only uses capacities ≥ 1.

pub use std::sync::Arc;

use crate::rt;

pub mod atomic {
    //! Model-aware numeric atomics plus `AtomicBool`.
    pub use std::sync::atomic::Ordering;

    use crate::rt;

    macro_rules! int_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// Model-aware counterpart of the std atomic of the same
            /// name; see the module docs for the dual-mode contract.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
                id: rt::ObjId,
            }

            impl $name {
                pub const fn new(v: $int) -> Self {
                    Self {
                        inner: <$std>::new(v),
                        id: rt::ObjId::unset(),
                    }
                }

                pub fn load(&self, order: Ordering) -> $int {
                    if let Some(ctx) = rt::current() {
                        rt::atomic_load(&ctx, self.id.get(), order);
                    }
                    self.inner.load(order)
                }

                pub fn store(&self, v: $int, order: Ordering) {
                    if let Some(ctx) = rt::current() {
                        rt::atomic_store(&ctx, self.id.get(), order);
                    }
                    self.inner.store(v, order);
                }

                pub fn swap(&self, v: $int, order: Ordering) -> $int {
                    if let Some(ctx) = rt::current() {
                        rt::atomic_rmw(&ctx, self.id.get(), order);
                    }
                    self.inner.swap(v, order)
                }

                pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                    if let Some(ctx) = rt::current() {
                        rt::atomic_rmw(&ctx, self.id.get(), order);
                    }
                    self.inner.fetch_add(v, order)
                }

                pub fn fetch_sub(&self, v: $int, order: Ordering) -> $int {
                    if let Some(ctx) = rt::current() {
                        rt::atomic_rmw(&ctx, self.id.get(), order);
                    }
                    self.inner.fetch_sub(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    if let Some(ctx) = rt::current() {
                        rt::atomic_rmw(&ctx, self.id.get(), success);
                    }
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn into_inner(self) -> $int {
                    self.inner.into_inner()
                }
            }
        };
    }

    int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    int_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64);

    /// Model-aware `AtomicBool` (no arithmetic RMWs; `swap` and
    /// `compare_exchange` cover the workspace's uses).
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
        id: rt::ObjId,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
                id: rt::ObjId::unset(),
            }
        }

        pub fn load(&self, order: Ordering) -> bool {
            if let Some(ctx) = rt::current() {
                rt::atomic_load(&ctx, self.id.get(), order);
            }
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            if let Some(ctx) = rt::current() {
                rt::atomic_store(&ctx, self.id.get(), order);
            }
            self.inner.store(v, order);
        }

        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            if let Some(ctx) = rt::current() {
                rt::atomic_rmw(&ctx, self.id.get(), order);
            }
            self.inner.swap(v, order)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            if let Some(ctx) = rt::current() {
                rt::atomic_rmw(&ctx, self.id.get(), success);
            }
            self.inner.compare_exchange(current, new, success, failure)
        }
    }
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Model-aware mutex. Lock-ordering deadlocks between model threads
/// are detected by the scheduler rather than hanging the test.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
    id: rt::ObjId,
}

/// Guard for [`Mutex`]; releases both the model-level and the real
/// lock on drop.
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar::wait` can take the std guard out and hand
    // it to `std::sync::Condvar::wait` without running our Drop.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
    model: Option<rt::Ctx>,
}

/// Mirror of `std::sync::PoisonError`-style results, minus poisoning:
/// the model checker treats panics as failures outright, and the
/// delegate path unwraps poison into the inner guard (a panicked
/// model run is already reported; ordinary code in this workspace
/// never relies on poisoning).
pub type LockResult<G> = Result<G, std::convert::Infallible>;

impl<T> Mutex<T> {
    pub const fn new(v: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(v),
            id: rt::ObjId::unset(),
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = rt::current();
        if let Some(ctx) = &model {
            rt::mutex_lock(ctx, self.id.get());
        }
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Ok(MutexGuard {
            inner: Some(inner),
            mutex: self,
            model,
        })
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.inner.into_inner().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.inner.get_mut().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then the model-level one — the
        // model release wakes waiters, and they must be able to take
        // the std lock immediately when scheduled.
        drop(self.inner.take());
        if let Some(ctx) = &self.model {
            rt::mutex_unlock(ctx, self.mutex.id.get());
        }
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Model-aware condition variable. In model mode, waiter registration
/// and mutex release are atomic under the scheduler lock (matching
/// std's guarantee), and notifications that find no waiter are counted
/// and reported with any subsequent deadlock — which is how lost
/// wakeups surface.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    id: rt::ObjId,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
            id: rt::ObjId::unset(),
        }
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            None => {
                let std_guard = guard.inner.take().expect("guard taken");
                let mutex = guard.mutex;
                // `guard` now owns nothing; its Drop is a no-op.
                let std_guard = self
                    .inner
                    .wait(std_guard)
                    .unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    inner: Some(std_guard),
                    mutex,
                    model: None,
                })
            }
            Some(ctx) => {
                let mutex = guard.mutex;
                // Drop the real lock before registering: a model
                // notifier scheduled next must be able to take it.
                drop(guard.inner.take());
                rt::condvar_wait(&ctx, self.id.get(), mutex.id.get());
                // Woken and scheduled: re-acquire like a fresh lock()
                // (std also re-locks on wakeup, and spurious wakeups /
                // stolen predicates are exactly re-lock races).
                rt::mutex_lock(&ctx, mutex.id.get());
                let inner = mutex.inner.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard {
                    inner: Some(inner),
                    mutex,
                    model: Some(ctx),
                })
            }
        }
    }

    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard)?;
        }
        Ok(guard)
    }

    pub fn notify_one(&self) {
        if let Some(ctx) = rt::current() {
            rt::condvar_notify(&ctx, self.id.get(), false);
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some(ctx) = rt::current() {
            rt::condvar_notify(&ctx, self.id.get(), true);
        }
        self.inner.notify_all();
    }
}

// ---------------------------------------------------------------------
// mpsc
// ---------------------------------------------------------------------

pub mod mpsc {
    //! Model-aware `std::sync::mpsc` subset: `sync_channel` (bounded,
    //! capacity ≥ 1) and `channel` (unbounded), blocking `send`/`recv`
    //! only.
    pub use std::sync::mpsc::{RecvError, SendError};

    use std::collections::VecDeque;
    use std::sync::Arc;

    use crate::rt;

    /// Shared state of one model channel: the typed queue lives here,
    /// the lengths/clocks/blocking live in the execution state keyed
    /// by `id`.
    struct Core<T> {
        queue: std::sync::Mutex<VecDeque<T>>,
        id: u64,
    }

    enum SenderImpl<T> {
        Std(std::sync::mpsc::SyncSender<T>),
        Model(Arc<Core<T>>),
    }

    /// Bounded sender, model-aware.
    pub struct SyncSender<T>(SenderImpl<T>);

    enum UnboundedImpl<T> {
        Std(std::sync::mpsc::Sender<T>),
        Model(Arc<Core<T>>),
    }

    /// Unbounded sender, model-aware.
    pub struct Sender<T>(UnboundedImpl<T>);

    enum ReceiverImpl<T> {
        Std(std::sync::mpsc::Receiver<T>),
        Model(Arc<Core<T>>),
    }

    /// Receiver, model-aware.
    pub struct Receiver<T>(ReceiverImpl<T>);

    /// Bounded channel. In model mode `bound` must be ≥ 1 (rendezvous
    /// channels are not modeled).
    pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
        match rt::current() {
            None => {
                let (tx, rx) = std::sync::mpsc::sync_channel(bound);
                (
                    SyncSender(SenderImpl::Std(tx)),
                    Receiver(ReceiverImpl::Std(rx)),
                )
            }
            Some(ctx) => {
                let id = rt::channel_register(&ctx, bound);
                let core = Arc::new(Core {
                    queue: std::sync::Mutex::new(VecDeque::new()),
                    id,
                });
                (
                    SyncSender(SenderImpl::Model(Arc::clone(&core))),
                    Receiver(ReceiverImpl::Model(core)),
                )
            }
        }
    }

    /// Unbounded channel (modeled as capacity `usize::MAX`).
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        match rt::current() {
            None => {
                let (tx, rx) = std::sync::mpsc::channel();
                (
                    Sender(UnboundedImpl::Std(tx)),
                    Receiver(ReceiverImpl::Std(rx)),
                )
            }
            Some(ctx) => {
                let id = rt::channel_register(&ctx, usize::MAX);
                let core = Arc::new(Core {
                    queue: std::sync::Mutex::new(VecDeque::new()),
                    id,
                });
                (
                    Sender(UnboundedImpl::Model(Arc::clone(&core))),
                    Receiver(ReceiverImpl::Model(core)),
                )
            }
        }
    }

    fn model_send<T>(core: &Core<T>, value: T) -> Result<(), SendError<T>> {
        let ctx = rt::current().expect("model channel used outside a model execution");
        match rt::channel_send(&ctx, core.id) {
            rt::SendOutcome::Sent => {
                core.queue
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(value);
                Ok(())
            }
            rt::SendOutcome::Disconnected => Err(SendError(value)),
        }
    }

    fn model_recv<T>(core: &Core<T>) -> Result<T, RecvError> {
        let ctx = rt::current().expect("model channel used outside a model execution");
        match rt::channel_recv(&ctx, core.id) {
            rt::RecvOutcome::Received => Ok(core
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
                .expect("queue slot reserved by the scheduler")),
            rt::RecvOutcome::Disconnected => Err(RecvError),
        }
    }

    impl<T> SyncSender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderImpl::Std(tx) => tx.send(value),
                SenderImpl::Model(core) => model_send(core, value),
            }
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                SenderImpl::Std(tx) => SyncSender(SenderImpl::Std(tx.clone())),
                SenderImpl::Model(core) => {
                    if let Some(ctx) = rt::current() {
                        rt::channel_sender_cloned(&ctx, core.id);
                    }
                    SyncSender(SenderImpl::Model(Arc::clone(core)))
                }
            }
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            if let SenderImpl::Model(core) = &self.0 {
                if let Some(ctx) = rt::current() {
                    rt::channel_sender_dropped(&ctx, core.id);
                }
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                UnboundedImpl::Std(tx) => tx.send(value),
                UnboundedImpl::Model(core) => model_send(core, value),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                UnboundedImpl::Std(tx) => Sender(UnboundedImpl::Std(tx.clone())),
                UnboundedImpl::Model(core) => {
                    if let Some(ctx) = rt::current() {
                        rt::channel_sender_cloned(&ctx, core.id);
                    }
                    Sender(UnboundedImpl::Model(Arc::clone(core)))
                }
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if let UnboundedImpl::Model(core) = &self.0 {
                if let Some(ctx) = rt::current() {
                    rt::channel_sender_dropped(&ctx, core.id);
                }
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            match &self.0 {
                ReceiverImpl::Std(rx) => rx.recv(),
                ReceiverImpl::Model(core) => model_recv(core),
            }
        }

        /// Drains until disconnect (used by collect loops).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Blocking iterator over received messages, ending at disconnect.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let ReceiverImpl::Model(core) = &self.0 {
                if let Some(ctx) = rt::current() {
                    rt::channel_receiver_dropped(&ctx, core.id);
                }
            }
        }
    }
}
