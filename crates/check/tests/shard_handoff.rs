//! Model-checks the shard submit→flush→finalize→collect handoff: a
//! miniature replica of `spk_server::service`'s per-shard worker loop
//! (bounded slab queue, FIFO message processing, two-round finalize
//! over per-round reply channels, relaxed metric counters), small
//! enough for exhaustive DFS.
//!
//! The load-bearing ordering facts these tests pin down:
//!
//! 1. The slab queue is FIFO and `Finalize` travels on the *same*
//!    queue, so every slab sent before a finalize is folded before the
//!    counts reply is computed.
//! 2. The relaxed metric counters are only finalize-visible *through*
//!    the reply-channel happens-before edge — a weakened variant that
//!    reads them before the reply is caught as a failing interleaving
//!    (the regression test for the submit/flush/metrics ordering).

use std::sync::atomic::Ordering;

use spk_check::sync::{
    atomic::AtomicU64,
    mpsc::{channel, sync_channel, Receiver, Sender, SyncSender},
    Arc,
};
use spk_check::{thread, Builder, FailureKind};

/// Mirror of `spk_server::service::Msg`, value payloads instead of
/// matrices.
enum Msg {
    Slab(u64),
    /// Round 1: flush pending slabs into the partial, stash it, answer
    /// how many slabs were folded.
    Finalize {
        reply: Sender<u64>,
    },
    /// Round 2: hand over (and forget) the stashed partial.
    Collect {
        reply: Sender<u64>,
    },
    Shutdown,
}

/// Mirror of `ShardInstruments`: relaxed counters shared with the
/// submitting thread, exactly like the registry-backed `Counter`s.
struct Instruments {
    slices: AtomicU64,
    queue_depth: AtomicU64,
}

/// The extracted worker loop: batch up to `batch` pending slabs, flush
/// into a running partial, stash on finalize.
fn shard_worker(rx: Receiver<Msg>, ins: Arc<Instruments>, batch: usize) {
    let mut pending: Vec<u64> = Vec::new();
    let mut partial: u64 = 0;
    let mut folded: u64 = 0;
    let mut stashed: Option<(u64, u64)> = None;
    loop {
        let msg = match rx.recv() {
            Ok(m) => m,
            Err(_) => break,
        };
        match msg {
            Msg::Slab(v) => {
                ins.queue_depth.fetch_sub(1, Ordering::Relaxed);
                ins.slices.fetch_add(1, Ordering::Relaxed);
                pending.push(v);
                if pending.len() >= batch {
                    partial += pending.drain(..).sum::<u64>();
                }
            }
            Msg::Finalize { reply } => {
                partial += pending.drain(..).sum::<u64>();
                folded = ins.slices.load(Ordering::Relaxed);
                stashed = Some((partial, folded));
                partial = 0;
                let _ = reply.send(folded);
            }
            Msg::Collect { reply } => {
                let (value, _) = stashed.take().expect("collect without finalize");
                let _ = reply.send(value);
            }
            Msg::Shutdown => break,
        }
    }
    let _ = (folded, partial);
}

struct MiniShard {
    tx: SyncSender<Msg>,
    ins: Arc<Instruments>,
    handle: spk_check::thread::JoinHandle<()>,
}

fn spawn_shard(queue_cap: usize, batch: usize) -> MiniShard {
    let (tx, rx) = sync_channel(queue_cap);
    let ins = Arc::new(Instruments {
        slices: AtomicU64::new(0),
        queue_depth: AtomicU64::new(0),
    });
    let worker_ins = Arc::clone(&ins);
    let handle = thread::spawn(move || shard_worker(rx, worker_ins, batch));
    MiniShard { tx, ins, handle }
}

impl MiniShard {
    fn submit(&self, v: u64) {
        self.tx.send(Msg::Slab(v)).unwrap();
        self.ins.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Round 1 — returns the number of slabs the flush folded.
    fn finalize(&self) -> u64 {
        let (reply_tx, reply_rx) = channel();
        self.tx.send(Msg::Finalize { reply: reply_tx }).unwrap();
        reply_rx.recv().unwrap()
    }

    /// Round 2 — returns the stashed partial.
    fn collect(&self) -> u64 {
        let (reply_tx, reply_rx) = channel();
        self.tx.send(Msg::Collect { reply: reply_tx }).unwrap();
        reply_rx.recv().unwrap()
    }

    fn shutdown(self) {
        let _ = self.tx.send(Msg::Shutdown);
        drop(self.tx);
        self.handle.join().unwrap();
    }
}

/// The full pipeline against one shard with a capacity-1 queue (real
/// backpressure: the producer blocks while the worker folds): every
/// interleaving folds every slab before the counts reply, finalize
/// leaves the queue drained, and collect returns the exact partial.
/// DFS is preemption-bounded (CHESS-style) — unbounded exploration of
/// this chain tops 100k schedules; two preemptions is the published
/// bound that finds almost all real bugs.
#[test]
fn handoff_pipeline_is_sound_under_every_interleaving() {
    let report = Builder::new().max_preemptions(2).check(|| {
        let shard = spawn_shard(1, 2);
        shard.submit(5);
        shard.submit(7);
        shard.submit(11);
        let folded = shard.finalize();
        // FIFO queue ordering: Finalize was enqueued after all three
        // slabs, so the flush saw all of them — in EVERY interleaving.
        assert_eq!(folded, 3, "finalize must fold every earlier slab");
        // The reply recv is the happens-before edge that makes the
        // relaxed counters trustworthy from this thread.
        assert_eq!(shard.ins.slices.load(Ordering::Relaxed), 3);
        assert_eq!(shard.ins.queue_depth.load(Ordering::Relaxed), 0);
        assert_eq!(shard.collect(), 5 + 7 + 11);
        shard.shutdown();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        !report.truncated,
        "bounded DFS must complete within the cap"
    );
    eprintln!(
        "shard handoff: preemption-bounded DFS over {} interleavings, clean",
        report.iterations
    );
    assert!(
        report.iterations > 1,
        "backpressure must create real choices"
    );
}

/// Regression test for the metrics-visibility ordering: reading the
/// relaxed `slices` counter WITHOUT the reply edge (right after the
/// sends) is wrong in some interleavings — the worker may not have
/// dequeued yet. The checker must find that failing interleaving,
/// proving the reply-edge ordering in the sound test above is
/// load-bearing rather than incidental.
#[test]
fn metrics_read_without_the_reply_edge_has_a_failing_interleaving() {
    let report = Builder::new().max_iterations(10_000).check(|| {
        let shard = spawn_shard(2, 2);
        shard.submit(5);
        shard.submit(7);
        // BUG under test: no happens-before edge between the worker's
        // fetch_adds and this load.
        assert_eq!(
            shard.ins.slices.load(Ordering::Relaxed),
            2,
            "premature metrics read"
        );
        shard.shutdown();
    });
    let failure = report
        .failure
        .expect("premature metrics read must fail in some interleaving");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("premature metrics read"));
    eprintln!(
        "premature metrics read: failing interleaving found after {} iteration(s)",
        report.iterations
    );
}

/// Two shards, finalize broadcast-then-drain exactly like
/// `AggregatorService::finalize` round 1 (send to every shard before
/// receiving any reply): sound in every interleaving, and the global
/// sum assembled from the collected partials is exact.
#[test]
fn two_shard_broadcast_then_drain_finalize_is_sound() {
    let report = Builder::new().max_preemptions(2).check(|| {
        let shards = [spawn_shard(1, 1), spawn_shard(1, 1)];
        // submit() routes one slab to every shard, like row_split.
        for shard in &shards {
            shard.submit(3);
        }
        // Round 1: broadcast every Finalize before draining any reply.
        let replies: Vec<Receiver<u64>> = shards
            .iter()
            .map(|shard| {
                let (reply_tx, reply_rx) = channel();
                shard.tx.send(Msg::Finalize { reply: reply_tx }).unwrap();
                reply_rx
            })
            .collect();
        for rx in &replies {
            assert_eq!(rx.recv().unwrap(), 1);
        }
        // Round 2: collect shard by shard, in shard order.
        let total: u64 = shards.iter().map(|shard| shard.collect()).sum();
        assert_eq!(total, 2 * 3);
        for shard in shards {
            shard.shutdown();
        }
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
    eprintln!(
        "two-shard finalize: preemption-bounded DFS over {} interleavings, clean",
        report.iterations
    );
}

/// Dropping the service (sender side) instead of sending `Shutdown`
/// still terminates the worker — no interleaving leaks a blocked
/// worker or deadlocks the join.
#[test]
fn sender_drop_terminates_the_worker_in_every_interleaving() {
    let report = Builder::new().check(|| {
        let shard = spawn_shard(1, 1);
        shard.submit(9);
        let MiniShard { tx, ins, handle } = shard;
        drop(tx); // hang-up instead of Shutdown
        handle.join().unwrap();
        assert_eq!(ins.slices.load(Ordering::Relaxed), 1);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
}
