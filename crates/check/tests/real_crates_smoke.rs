//! Smoke tests for the cfg-gated sync aliases: the REAL `spk_server`
//! and `spk_obs` (not extracted replicas) must behave identically
//! whether their primitives are `std::sync` (default build) or
//! `spk_check::sync` in std-delegate mode (`--cfg spk_model` build,
//! outside `model()`). CI runs this file in both configurations; a
//! shim that diverges from std semantics fails here before it can
//! corrupt a model-checking run.

use spk_server::{AggregatorService, ServiceConfig};
use spk_sparse::CscMatrix;

/// Full service round-trip through the aliased channels, worker
/// threads, and atomics: submit across real shard workers, finalize
/// with the two-round protocol, verify the exact sum and the metrics
/// counters the relaxed atomics carry.
#[test]
fn aggregator_round_trip_is_exact_under_both_sync_backends() {
    let svc = AggregatorService::<f64>::new(8, 8, ServiceConfig::with_shards(3));
    for _ in 0..4 {
        svc.submit("smoke", &CscMatrix::identity(8)).unwrap();
    }
    let sum = svc.finalize("smoke").unwrap();
    for i in 0..8 {
        assert_eq!(sum.get(i, i).unwrap(), 4.0);
    }
    let metrics = svc.metrics();
    assert_eq!(metrics.submitted, 4);
    assert_eq!(metrics.slices_routed(), 12, "4 matrices x 3 shards");
    assert!(
        metrics.shards.iter().all(|s| s.queue_depth == 0),
        "finalize must drain every queue"
    );
}

/// Span recording through the aliased obs ring (`SlotCell` backed by
/// `spk_check::cell::UnsafeCell` under `--cfg spk_model`): the
/// write-once claim protocol still publishes every record.
#[test]
fn obs_spans_record_and_drain_under_both_sync_backends() {
    spk_obs::set_tracing(true);
    for _ in 0..16 {
        let _span = spk_obs::span!("smoke.ring.span");
    }
    spk_obs::set_tracing(false);
    let spans = spk_obs::take_spans();
    let mine = spans.iter().filter(|s| s.name == "smoke.ring.span").count();
    assert!(mine >= 16, "all published slots must drain, saw {mine}");
}
