//! Functional coverage of the model checker itself: primitives behave,
//! exhaustive DFS terminates, deadlocks are caught, and schedules are
//! deterministic.

use std::sync::atomic::Ordering;

use spk_check::sync::{self, atomic::AtomicU64, Arc, Condvar, Mutex};
use spk_check::{model, thread, Builder, FailureKind, Mode};

#[test]
fn mutex_counter_is_exclusive() {
    let report = Builder::new().check(|| {
        let n = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n = Arc::clone(&n);
            handles.push(thread::spawn(move || {
                let mut g = n.lock().unwrap();
                let v = *g;
                *g = v + 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
    assert!(
        report.iterations >= 2,
        "two contending threads must yield multiple interleavings, got {}",
        report.iterations
    );
}

#[test]
fn atomic_counter_never_loses_updates() {
    model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
        });
        n.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn channel_delivers_in_order_and_blocks_when_full() {
    let report = Builder::new().check(|| {
        let (tx, rx) = sync::mpsc::sync_channel::<u32>(1);
        let t = thread::spawn(move || {
            // Capacity 1: the second send must block until the main
            // thread drains — exercised under every interleaving.
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert!(rx.recv().is_err(), "sender dropped -> disconnect");
        t.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
}

#[test]
fn ab_ba_lock_order_deadlock_is_detected() {
    let report = Builder::new().check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let failure = report
        .failure
        .expect("AB-BA ordering must deadlock somewhere");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("Mutex"),
        "deadlock report should name the blocking primitive: {}",
        failure.message
    );
    assert!(
        !failure.trace.is_empty(),
        "failure must carry a schedule trace"
    );
}

#[test]
fn join_returns_the_thread_value() {
    model(|| {
        let t = thread::spawn(|| 41 + 1);
        assert_eq!(t.join().unwrap(), 42);
    });
}

#[test]
fn condvar_handoff_completes_everywhere() {
    // Correct usage: predicate + notify under the lock. Must pass
    // under every interleaving (spurious-wakeup-safe by construction).
    let report = Builder::new().check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock().unwrap();
            *ready = true;
            cv.notify_one();
            drop(ready);
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
}

#[test]
fn assertion_failures_are_reported_with_the_schedule() {
    let report = Builder::new().check(|| {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.store(1, Ordering::Relaxed);
        });
        // Wrong: asserts before joining — fails in the interleaving
        // where the child has not run yet.
        assert_eq!(n.load(Ordering::Relaxed), 1, "seeded assertion");
        t.join().unwrap();
    });
    let failure = report.failure.expect("some interleaving sees 0");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("seeded assertion"),
        "{}",
        failure.message
    );
}

#[test]
fn same_seed_same_schedules() {
    fn run(seed: u64) -> u64 {
        Builder::new()
            .mode(Mode::Random { seed })
            .max_iterations(50)
            .check(|| {
                let n = Arc::new(Mutex::new(0u64));
                let mut handles = Vec::new();
                for _ in 0..3 {
                    let n = Arc::clone(&n);
                    handles.push(thread::spawn(move || {
                        *n.lock().unwrap() += 1;
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
            })
            .schedule_digest
    }
    let a = run(0xfeed);
    let b = run(0xfeed);
    let c = run(0xbeef);
    assert_eq!(
        a, b,
        "same seed must replay the exact same schedule sequence"
    );
    assert_ne!(a, c, "different seeds should explore different schedules");
}

#[test]
fn preemption_budget_bounds_the_space() {
    fn iterations(budget: usize) -> u64 {
        Builder::new()
            .max_preemptions(budget)
            .check(|| {
                let n = Arc::new(AtomicU64::new(0));
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let n = Arc::clone(&n);
                    handles.push(thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                        n.fetch_add(1, Ordering::Relaxed);
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
            })
            .iterations
    }
    let p0 = iterations(0);
    let p1 = iterations(1);
    let unbounded = iterations(usize::MAX);
    assert!(
        p0 < p1 && p1 < unbounded,
        "schedule count must grow with the preemption budget: {p0} / {p1} / {unbounded}"
    );
}

#[test]
fn primitives_delegate_to_std_outside_the_model() {
    // The dual-mode contract: the same types work as plain std
    // wrappers when no execution is active (this is what keeps
    // `--cfg spk_model` builds usable outside `model()`).
    let n = Arc::new(Mutex::new(0u64));
    let a = Arc::new(AtomicU64::new(0));
    let (tx, rx) = sync::mpsc::sync_channel::<u32>(4);
    let n2 = Arc::clone(&n);
    let a2 = Arc::clone(&a);
    let t = thread::spawn(move || {
        *n2.lock().unwrap() += 1;
        a2.fetch_add(1, Ordering::SeqCst);
        tx.send(7).unwrap();
    });
    assert_eq!(rx.recv().unwrap(), 7);
    t.join().unwrap();
    assert_eq!(*n.lock().unwrap(), 1);
    assert_eq!(a.load(Ordering::SeqCst), 1);
}
