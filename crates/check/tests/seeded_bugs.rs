//! The two seeded bugs from ISSUE 10: a racy two-thread counter and a
//! lost-wakeup condvar protocol. The checker must catch both in fewer
//! than 10 000 interleavings — these tests pin the budget so a
//! scheduler regression that stops finding them fails loudly.

use std::sync::atomic::Ordering;

use spk_check::cell::UnsafeCell;
use spk_check::sync::{atomic::AtomicBool, Arc, Condvar, Mutex};
use spk_check::{thread, Builder, FailureKind};

const BUDGET: u64 = 10_000;

/// Classic torn counter: two threads do unsynchronized read-modify-
/// write on shared non-atomic state. Under the serialized scheduler
/// the *value* can still come out right, so this must be caught by the
/// happens-before race detector, not by observing a wrong sum.
#[test]
fn racy_counter_is_caught_within_budget() {
    let report = Builder::new().max_iterations(BUDGET).check(|| {
        let counter = Arc::new(UnsafeCell::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                // SAFETY-free on purpose: spk_check's UnsafeCell is a
                // safe wrapper; the race below is the bug under test.
                let v = counter.with(unsafe_read);
                counter.with_mut(|p| unsafe_write(p, v + 1));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
    let failure = report.failure.expect("unsynchronized counter must race");
    assert_eq!(failure.kind, FailureKind::DataRace);
    assert!(
        report.iterations < BUDGET,
        "race must be found within {BUDGET} interleavings, took {}",
        report.iterations
    );
    eprintln!(
        "racy counter: DataRace found after {} interleaving(s): {}",
        report.iterations, failure.message
    );
}

/// The same counter, fixed with a mutex: exhaustive DFS must complete
/// clean, proving the detector distinguishes the fix from the bug.
#[test]
fn mutexed_counter_is_race_free() {
    let report = Builder::new().max_iterations(BUDGET).check(|| {
        let counter = Arc::new(Mutex::new(UnsafeCell::new(0u64)));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                let g = counter.lock().unwrap();
                let v = g.with(unsafe_read);
                g.with_mut(|p| unsafe_write(p, v + 1));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let g = counter.lock().unwrap();
        assert_eq!(g.with(unsafe_read), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
}

/// Lost wakeup: the waiter checks a flag and then waits, but the
/// notifier sets the flag and notifies WITHOUT holding the lock. In
/// the interleaving where the notify lands between the waiter's check
/// and its wait, the notification is lost and the waiter sleeps
/// forever — reported as a deadlock with a lost-notification count.
#[test]
fn lost_wakeup_is_caught_within_budget() {
    let report = Builder::new().max_iterations(BUDGET).check(|| {
        let state = Arc::new((Mutex::new(()), Condvar::new(), AtomicBool::new(false)));
        let state2 = Arc::clone(&state);
        let waiter = thread::spawn(move || {
            let (lock, cv, ready) = &*state2;
            let mut guard = lock.lock().unwrap();
            // BUG: the flag lives outside the mutex, so the notify can
            // fire in the window between this check and the wait.
            while !ready.load(Ordering::Acquire) {
                guard = cv.wait(guard).unwrap();
            }
            drop(guard);
        });
        let (_lock, cv, ready) = &*state;
        ready.store(true, Ordering::Release);
        cv.notify_one(); // BUG: not synchronized with the waiter's check.
        waiter.join().unwrap();
    });
    let failure = report.failure.expect("lost-wakeup interleaving must exist");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("lost"),
        "deadlock report should attribute the lost notification: {}",
        failure.message
    );
    assert!(
        report.iterations < BUDGET,
        "lost wakeup must be found within {BUDGET} interleavings, took {}",
        report.iterations
    );
    eprintln!(
        "lost wakeup: Deadlock found after {} interleaving(s): {}",
        report.iterations, failure.message
    );
}

/// The fixed protocol — flag mutation and notify under the mutex —
/// explores clean.
#[test]
fn guarded_wakeup_is_sound() {
    let report = Builder::new().max_iterations(BUDGET).check(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let state2 = Arc::clone(&state);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*state2;
            let mut ready = lock.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
        });
        let (lock, cv) = &*state;
        let mut ready = lock.lock().unwrap();
        *ready = true;
        cv.notify_one();
        drop(ready);
        waiter.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
}

// Tiny raw-pointer helpers so the racy bodies read naturally. The
// pointers come from `UnsafeCell::with{,_mut}`, which guarantee the
// pointee is alive for the closure.
fn unsafe_read(p: *const u64) -> u64 {
    // SAFETY: callers pass pointers valid for the duration of the call
    // (the `with`/`with_mut` closure scope).
    unsafe { *p }
}

fn unsafe_write(p: *mut u64, v: u64) {
    // SAFETY: as above — pointer valid for the closure scope, and the
    // model checker is what flags genuinely concurrent access.
    unsafe { *p = v }
}
