//! Model-checks the obs-ring claim/publish protocol: a miniature
//! replica of `spk_obs`'s `Ring` (write-once slots + Release-published
//! length + Acquire-loading drainer + overflow drop counter), small
//! enough to explore exhaustively, faithful enough that its
//! happens-before structure is the real one. The `// SAFETY:` comments
//! on the real `Ring` in `crates/obs/src/span.rs` cite this suite.

use std::sync::atomic::Ordering;

use spk_check::cell::UnsafeCell;
use spk_check::sync::{
    atomic::{AtomicU64, AtomicUsize},
    Arc,
};
use spk_check::{thread, Builder, FailureKind};

/// The extracted state machine. `publish_order`/`drain_order` let the
/// buggy variants weaken exactly one ordering edge.
struct MiniRing {
    slots: Vec<UnsafeCell<u64>>,
    len: AtomicUsize,
    dropped: AtomicU64,
    publish_order: Ordering,
    drain_order: Ordering,
}

impl MiniRing {
    fn new(capacity: usize, publish_order: Ordering, drain_order: Ordering) -> Self {
        MiniRing {
            slots: (0..capacity).map(|_| UnsafeCell::new(0)).collect(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            publish_order,
            drain_order,
        }
    }

    /// Owner-thread push: claim slot `len`, write it, publish.
    fn push(&self, v: u64) {
        let len = self.len.load(Ordering::Relaxed);
        if len == self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: slot `len` is unpublished, and only this thread
        // (the single writer) claims slots — mirrored from the real
        // ring; the model checker verifies the claim.
        self.slots[len].with_mut(|p| unsafe { *p = v });
        self.len.store(len + 1, self.publish_order);
    }

    /// Drainer: read every published slot.
    fn drain(&self) -> Vec<u64> {
        let len = self.len.load(self.drain_order);
        self.slots[..len]
            .iter()
            // SAFETY: slots below the published length are write-once
            // (never touched again by the writer) — the protocol under
            // test.
            .map(|slot| slot.with(|p| unsafe { *p }))
            .collect()
    }
}

/// The real protocol (Release publish / Acquire drain) explores
/// exhaustively with no deadlock, race, or torn read — while a
/// concurrent drainer runs against an actively pushing writer.
#[test]
fn release_acquire_ring_is_race_free() {
    let report = Builder::new().check(|| {
        let ring = Arc::new(MiniRing::new(4, Ordering::Release, Ordering::Acquire));
        let writer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                ring.push(10);
                ring.push(20);
            })
        };
        let drained = ring.drain();
        // Prefix integrity: whatever length was observed, the values
        // below it are fully written (no torn/zero slots).
        for (i, v) in drained.iter().enumerate() {
            assert_eq!(*v, (i as u64 + 1) * 10, "published prefix must be complete");
        }
        writer.join().unwrap();
        assert_eq!(
            ring.drain(),
            vec![10, 20],
            "post-join drain sees everything"
        );
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated, "ring state machine must be exhaustible");
    eprintln!(
        "obs-ring claim/publish: exhaustive DFS over {} interleavings, clean",
        report.iterations
    );
    assert!(
        report.iterations > 1,
        "concurrent drain must create real choices"
    );
}

/// Weakening the publish to `Relaxed` breaks the release-sequence edge
/// the `Sync` impl's SAFETY comment relies on — the checker must
/// report the read of the slot as a data race.
#[test]
fn relaxed_publish_is_flagged_as_a_race() {
    let report = Builder::new().max_iterations(10_000).check(|| {
        let ring = Arc::new(MiniRing::new(4, Ordering::Relaxed, Ordering::Acquire));
        let writer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                ring.push(10);
            })
        };
        let _ = ring.drain();
        writer.join().unwrap();
    });
    let failure = report
        .failure
        .expect("relaxed publish must race with the drain");
    assert_eq!(failure.kind, FailureKind::DataRace);
    eprintln!(
        "relaxed-publish ring: DataRace found after {} interleaving(s)",
        report.iterations
    );
}

/// Same weakening on the drain side (`Relaxed` load of `len`): the
/// reader can observe the slot without the publish edge — also a race.
#[test]
fn relaxed_drain_is_flagged_as_a_race() {
    let report = Builder::new().max_iterations(10_000).check(|| {
        let ring = Arc::new(MiniRing::new(4, Ordering::Release, Ordering::Relaxed));
        let writer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                ring.push(10);
            })
        };
        let _ = ring.drain();
        writer.join().unwrap();
    });
    let failure = report
        .failure
        .expect("relaxed drain must race with the publish");
    assert_eq!(failure.kind, FailureKind::DataRace);
}

/// Overflow path: a full ring drops and counts instead of blocking or
/// overwriting — under every interleaving, `len + dropped` equals the
/// number of pushes and no published slot is ever overwritten.
#[test]
fn overflow_drops_and_counts_under_every_interleaving() {
    let report = Builder::new().check(|| {
        let ring = Arc::new(MiniRing::new(1, Ordering::Release, Ordering::Acquire));
        let writer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                ring.push(10);
                ring.push(20); // must drop: capacity 1
                ring.push(30); // must drop
            })
        };
        let observed = ring.drain();
        assert!(observed.is_empty() || observed == vec![10]);
        writer.join().unwrap();
        assert_eq!(ring.len.load(Ordering::Relaxed), 1);
        assert_eq!(ring.dropped.load(Ordering::Relaxed), 2);
        assert_eq!(ring.drain(), vec![10], "slot 0 never overwritten by drops");
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(!report.truncated);
    eprintln!(
        "obs-ring overflow: exhaustive DFS over {} interleavings, clean",
        report.iterations
    );
}
