//! Integration coverage for `spk_lint`: the workspace itself must be
//! clean (the same invariant CI enforces via the `spk-lint` binary),
//! and each rule must fire on a purpose-built fixture tree.

use std::fs;
use std::path::{Path, PathBuf};

use spk_check::lint;

fn workspace_root() -> PathBuf {
    // crates/check -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

/// The invariant CI enforces: every rule passes over the live tree.
/// A violation introduced anywhere in the workspace fails this test
/// with the same file:line diagnostic the binary prints.
#[test]
fn the_workspace_is_lint_clean() {
    let report = lint::run(&workspace_root()).expect("lint walk");
    assert!(
        report.clean(),
        "spk-lint violations in the workspace:\n{}",
        report
            .violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "walk should cover the whole workspace, saw {} files",
        report.files_scanned
    );
}

/// Fixture helper: a throwaway tree under `target/` (ignored by the
/// walker when nested, so each fixture gets its own root).
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = workspace_root()
            .join("target")
            .join("lint-fixtures")
            .join(name);
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("src")).expect("fixture dirs");
        fs::write(root.join("Cargo.toml"), "[package]\nname = \"fixture\"\n").unwrap();
        Fixture { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).unwrap();
        }
        fs::write(path, contents).unwrap();
    }

    fn run(&self) -> lint::LintReport {
        lint::run(&self.root).expect("lint walk")
    }

    fn rules_fired(&self) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = self.run().violations.iter().map(|v| v.rule).collect();
        rules.dedup();
        rules
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn safety_rule_fires_on_fixture() {
    let fx = Fixture::new("safety");
    fx.write(
        "src/lib.rs",
        "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    assert_eq!(fx.rules_fired(), vec!["safety-comment"]);
    let report = fx.run();
    assert_eq!(report.violations[0].line, 2);
}

#[test]
fn instant_now_rule_fires_outside_obs() {
    let fx = Fixture::new("instant");
    fx.write(
        "crates/server/src/lib.rs",
        "pub fn t() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    // The same call under crates/obs/ is the sanctioned home.
    fx.write(
        "crates/obs/src/lib.rs",
        "pub fn t() -> std::time::Instant {\n    std::time::Instant::now()\n}\n",
    );
    let report = fx.run();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, "instant-now");
    assert!(report.violations[0].file.contains("server"));
}

#[test]
fn no_unwrap_rule_fires_in_server_sources_only() {
    let fx = Fixture::new("unwrap");
    let body = "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
    fx.write("crates/server/src/lib.rs", body);
    fx.write("crates/core/src/lib.rs", body); // out of scope
    let report = fx.run();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, "no-unwrap");
}

#[test]
fn bench_schema_rule_fires_on_unversioned_report() {
    let fx = Fixture::new("bench");
    fx.write("BENCH_foo.json", "{\"results\": []}\n");
    assert_eq!(fx.rules_fired(), vec!["bench-schema"]);
    let fx2 = Fixture::new("bench-ok");
    fx2.write(
        "BENCH_foo.json",
        "{\"schema\": \"spk_obs.run_report.v1\", \"results\": []}\n",
    );
    assert!(fx2.run().clean());
}

#[test]
fn shim_parity_rule_fires_on_missing_item() {
    let fx = Fixture::new("shims");
    fx.write(
        "crates/shims/rand/src/lib.rs",
        "pub fn random() -> u64 { 4 }\n",
    );
    fx.write(
        "crates/core/src/lib.rs",
        "pub fn f() -> u64 { rand::random() + rand::thread_rng() }\n",
    );
    let report = fx.run();
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, "shim-parity");
    assert!(report.violations[0].message.contains("thread_rng"));
}

#[test]
fn waivers_silence_a_rule_with_an_audit_trail() {
    let fx = Fixture::new("waiver");
    fx.write(
        "crates/server/src/lib.rs",
        "pub fn f(x: Option<u8>) -> u8 {\n    // spk-lint: allow(no-unwrap)\n    x.unwrap()\n}\n",
    );
    assert!(fx.run().clean());
}
