//! Validate emitted observability JSON against the in-repo schemas
//! (`spk_obs.run_report.v1` / `spk_obs.trace.v1` /
//! `spk_obs.metrics.v1`). CI runs this instead of depending on jq.
//!
//! Usage: `obs-check <file.json> [more.json ...]`; exits non-zero if
//! any file fails.

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: obs-check <file.json> [more.json ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| format!("read failed: {e}"))
            .and_then(|text| spk_obs::schema::validate_str(&text));
        match outcome {
            Ok(kind) => println!("ok: {path} ({kind})"),
            Err(e) => {
                eprintln!("FAIL: {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
