//! `spk_obs` — std-only observability for the SpKAdd workspace: span
//! tracing, a metrics registry, and unified machine-readable run
//! reports. Zero dependencies by design (offline environment — no
//! tokio/tracing/serde).
//!
//! Three pieces:
//!
//! * [`span`](mod@span) — thread-local span stacks over `Instant` recorded into
//!   bounded lock-free per-thread rings; disabled by default with a
//!   zero-allocation, single-atomic-load disabled path (and a crate
//!   feature `off` that folds the layer away at compile time). Enable
//!   with [`set_tracing`]`(true)`, drain with [`take_spans`].
//! * [`metrics`] — named [`Counter`]s/[`Gauge`]s/log-bucketed
//!   [`Histogram`]s behind `Arc` handles; snapshots merge
//!   associatively so shard-local metrics fold into service totals.
//! * [`report`] — [`RunReport`], the one JSON + human-table report
//!   type shared by every bench and demo, and span-trace
//!   serialization ([`trace_json`], [`render_span_tree`]).
//!
//! [`schema`] validates the emitted documents (`obs-check` bin in CI).
//!
//! # Quick start
//!
//! ```
//! spk_obs::set_tracing(true);
//! {
//!     let _span = spk_obs::span!("demo.outer");
//!     let (_, dur) = spk_obs::timed("demo.work", || 2 + 2);
//!     assert!(dur.as_nanos() > 0 || dur.as_nanos() == 0);
//! }
//! let spans = spk_obs::take_spans();
//! assert!(spans.iter().any(|s| s.name == "demo.work"));
//! spk_obs::set_tracing(false);
//! ```

pub mod json;
pub mod metrics;
pub mod report;
pub mod schema;
pub mod span;
pub(crate) mod sync_shim;

/// The workspace's one sanctioned clock read.
///
/// Everything outside this crate that needs a raw timestamp calls
/// `spk_obs::now()` instead of `Instant::now()` (enforced by the
/// `instant-now` rule of `spk-lint`), so timing provenance stays in
/// one place: spans, [`timed`], and ad-hoc durations all read the same
/// clock, and a future virtual/mock clock has a single seam.
#[inline]
pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}

pub use json::Json;
pub use metrics::{
    bucket_bounds, bucket_index, global, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsSnapshot, Registry, HISTOGRAM_BUCKETS, METRICS_SCHEMA,
};
pub use report::{
    render_span_tree, trace_json, Row, RunReport, RUN_REPORT_SCHEMA, SINGLE_CORE_NOTE, TRACE_SCHEMA,
};
pub use span::{
    allocations, dropped_spans, record_explicit, set_tracing, take_spans, timed, tracing_enabled,
    SpanGuard, SpanKind, SpanRecord, RING_CAPACITY,
};
