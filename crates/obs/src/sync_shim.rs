//! cfg-gated sync primitives: the concurrency-bearing pieces of this
//! crate (ring claim/publish, overflow counter, metrics registry) are
//! written against these aliases instead of `std::sync` directly.
//!
//! * Default build: plain re-exports of `std` — zero cost, identical
//!   code to before the aliasing.
//! * `--cfg spk_model` (set via `RUSTFLAGS`, used by
//!   `cargo test -p spk-check`): the same names resolve to
//!   `spk_check::sync` / `spk_check::cell`, whose operations are
//!   scheduling points of the model checker. Outside a `model()`
//!   execution those wrappers delegate straight back to `std`, so a
//!   `spk_model` build still behaves normally in ordinary tests.
//!
//! Keep this module's surface to exactly what the crate uses — it is
//! the contract the model checker exercises.

#[cfg(not(spk_model))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize};
#[cfg(not(spk_model))]
pub(crate) use std::sync::Mutex;

#[cfg(spk_model)]
pub(crate) use spk_check::sync::atomic::{
    AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize,
};
#[cfg(spk_model)]
pub(crate) use spk_check::sync::Mutex;

pub(crate) use std::sync::atomic::Ordering;

/// One write-once ring slot: an `UnsafeCell` whose accesses the model
/// checker can see. The `unsafe fn` contract is identical in both
/// modes — callers uphold the ring's claim/publish protocol; the model
/// build merely *verifies* it (a read racing a write fails the model
/// run instead of being silent UB).
#[derive(Debug)]
pub(crate) struct SlotCell<T>(
    #[cfg(not(spk_model))] std::cell::UnsafeCell<T>,
    #[cfg(spk_model)] spk_check::cell::UnsafeCell<T>,
);

impl<T: Copy> SlotCell<T> {
    pub(crate) const fn new(v: T) -> Self {
        #[cfg(not(spk_model))]
        {
            SlotCell(std::cell::UnsafeCell::new(v))
        }
        #[cfg(spk_model)]
        {
            SlotCell(spk_check::cell::UnsafeCell::new(v))
        }
    }

    /// # Safety
    ///
    /// The caller must guarantee no concurrent access to this slot:
    /// for the span ring, only the owner thread writes, and only to
    /// slots at or above the published length.
    pub(crate) unsafe fn write(&self, v: T) {
        #[cfg(not(spk_model))]
        // SAFETY: forwarded from the caller (exclusive access to the
        // slot) — see this function's `# Safety` contract.
        unsafe {
            *self.0.get() = v;
        }
        #[cfg(spk_model)]
        // SAFETY: as above; under the model the checker additionally
        // verifies the exclusivity claim and fails the run if violated.
        self.0.with_mut(|p| unsafe { *p = v });
    }

    /// # Safety
    ///
    /// The caller must guarantee the slot is not being written
    /// concurrently: for the span ring, only slots below an
    /// `Acquire`-loaded published length are read, and those are never
    /// written again until drained.
    pub(crate) unsafe fn read(&self) -> T {
        #[cfg(not(spk_model))]
        // SAFETY: forwarded from the caller (slot published and
        // immutable) — see this function's `# Safety` contract.
        unsafe {
            *self.0.get()
        }
        #[cfg(spk_model)]
        // SAFETY: as above; the model build re-checks the claim via
        // happens-before tracking.
        self.0.with(|p| unsafe { *p })
    }
}
