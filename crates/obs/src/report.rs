//! `RunReport`: one machine-readable + human-readable report type for
//! every bench and demo in the workspace (SNIPPETS benchmark-report
//! idiom: per-phase timings, throughput, parallel-efficiency %, and
//! the environment the numbers came from).
//!
//! The JSON layout keeps the keys the old ad-hoc writers emitted
//! (`bench`, `config`, `results` rows, `summary`) so existing tooling
//! still parses the files, and adds `schema`, `threads`, `cores`,
//! `parallel_efficiency_pct`, and `notes` on top.

use std::io;
use std::path::Path;

use crate::json::Json;
use crate::span::{SpanKind, SpanRecord};

/// `spk_obs.run_report.v1` — schema id stamped on run reports.
pub const RUN_REPORT_SCHEMA: &str = "spk_obs.run_report.v1";
/// `spk_obs.trace.v1` — schema id stamped on span-trace dumps.
pub const TRACE_SCHEMA: &str = "spk_obs.trace.v1";

/// Note attached automatically when the host exposes a single core.
pub const SINGLE_CORE_NOTE: &str =
    "single-core host: timings are regression signals, not speedup measurements";

/// One result row: an ordered list of `(column, value)` fields.
#[derive(Debug, Clone, Default)]
pub struct Row(pub Vec<(String, Json)>);

impl Row {
    pub fn new() -> Row {
        Row::default()
    }

    /// Append a field (builder style).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Row {
        self.0.push((key.to_string(), value.into()));
        self
    }
}

/// A run report: config + result rows + summary, serializable to
/// schema-tagged JSON ([`RunReport::json_string`]) and an aligned
/// human table ([`RunReport::human_table`]).
#[derive(Debug, Clone)]
pub struct RunReport {
    bench: String,
    threads: usize,
    cores: usize,
    parallel_efficiency_pct: Option<f64>,
    notes: Vec<String>,
    config: Vec<(String, Json)>,
    results: Vec<Row>,
    summary: Vec<(String, Json)>,
}

impl RunReport {
    /// New report for `bench`, detecting `cores` from the host and
    /// attaching [`SINGLE_CORE_NOTE`] when it is 1.
    pub fn new(bench: &str) -> RunReport {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut report = RunReport {
            bench: bench.to_string(),
            threads: 1,
            cores,
            parallel_efficiency_pct: None,
            notes: Vec::new(),
            config: Vec::new(),
            results: Vec::new(),
            summary: Vec::new(),
        };
        if cores == 1 {
            report.notes.push(SINGLE_CORE_NOTE.to_string());
        }
        report
    }

    /// Worker threads the measured code used (reported as `threads`).
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.threads = n.max(1);
        self
    }

    /// Report-level parallel efficiency; defaults to 100 when
    /// `threads == 1` (serial is its own baseline).
    pub fn parallel_efficiency_pct(&mut self, pct: f64) -> &mut Self {
        self.parallel_efficiency_pct = Some(pct);
        self
    }

    /// Parallel efficiency % of `parallel_secs` on `threads` threads
    /// against `serial_secs` on one: `t1 / (p * tp) * 100`.
    pub fn efficiency(serial_secs: f64, parallel_secs: f64, threads: usize) -> f64 {
        if parallel_secs <= 0.0 || threads == 0 {
            return 0.0;
        }
        serial_secs / (threads as f64 * parallel_secs) * 100.0
    }

    pub fn note(&mut self, msg: &str) -> &mut Self {
        self.notes.push(msg.to_string());
        self
    }

    pub fn config(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        self.config.push((key.to_string(), value.into()));
        self
    }

    pub fn result(&mut self, row: Row) -> &mut Self {
        self.results.push(row);
        self
    }

    pub fn summary(&mut self, key: &str, value: impl Into<Json>) -> &mut Self {
        self.summary.push((key.to_string(), value.into()));
        self
    }

    /// `None` only when multi-threaded and unmeasured — a serial run is
    /// its own baseline (100%), but inventing a figure for a parallel
    /// run would misreport it as pathological.
    fn effective_efficiency(&self) -> Option<f64> {
        match self.parallel_efficiency_pct {
            Some(pct) => Some(pct),
            None if self.threads == 1 => Some(100.0),
            None => None,
        }
    }

    /// The report as a [`Json`] value.
    pub fn to_json(&self) -> Json {
        let mut top = vec![
            ("schema".to_string(), Json::from(RUN_REPORT_SCHEMA)),
            ("bench".to_string(), Json::from(self.bench.as_str())),
            ("threads".to_string(), Json::from(self.threads)),
            ("cores".to_string(), Json::from(self.cores)),
            (
                "parallel_efficiency_pct".to_string(),
                match self.effective_efficiency() {
                    Some(pct) => Json::from(pct),
                    None => Json::Null,
                },
            ),
        ];
        if !self.notes.is_empty() {
            top.push((
                "notes".to_string(),
                Json::Arr(self.notes.iter().map(|n| Json::from(n.as_str())).collect()),
            ));
        }
        top.push(("config".to_string(), Json::Obj(self.config.clone())));
        top.push((
            "results".to_string(),
            Json::Arr(
                self.results
                    .iter()
                    .map(|r| Json::Obj(r.0.clone()))
                    .collect(),
            ),
        ));
        if !self.summary.is_empty() {
            top.push(("summary".to_string(), Json::Obj(self.summary.clone())));
        }
        Json::Obj(top)
    }

    /// Pretty-printed JSON document.
    pub fn json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Write the JSON document to `path`.
    pub fn write_json_file(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.json_string())
    }

    /// Aligned text table: header line, config line, one column per
    /// distinct result field (first-seen order), then summary lines.
    pub fn human_table(&self) -> String {
        let mut out = format!(
            "# {} — threads={} cores={}",
            self.bench, self.threads, self.cores
        );
        if let Some(pct) = self.effective_efficiency() {
            out.push_str(&format!(" parallel_efficiency={pct:.1}%"));
        }
        out.push('\n');
        for note in &self.notes {
            out.push_str(&format!("# note: {note}\n"));
        }
        if !self.config.is_empty() {
            out.push_str("# config:");
            for (k, v) in &self.config {
                out.push_str(&format!(" {k}={}", cell(v)));
            }
            out.push('\n');
        }
        // Column set = union of row fields in first-seen order.
        let mut cols: Vec<&str> = Vec::new();
        for row in &self.results {
            for (k, _) in &row.0 {
                if !cols.contains(&k.as_str()) {
                    cols.push(k);
                }
            }
        }
        if !cols.is_empty() {
            let mut table: Vec<Vec<String>> = vec![cols.iter().map(|c| c.to_string()).collect()];
            for row in &self.results {
                table.push(
                    cols.iter()
                        .map(|c| {
                            row.0
                                .iter()
                                .find(|(k, _)| k == c)
                                .map(|(_, v)| cell(v))
                                .unwrap_or_else(|| "-".to_string())
                        })
                        .collect(),
                );
            }
            let widths: Vec<usize> = (0..cols.len())
                .map(|c| table.iter().map(|r| r[c].len()).max().unwrap_or(0))
                .collect();
            for row in &table {
                let line: Vec<String> = row
                    .iter()
                    .zip(&widths)
                    .map(|(cell, w)| format!("{cell:<w$}"))
                    .collect();
                out.push_str(line.join("  ").trim_end());
                out.push('\n');
            }
        }
        for (k, v) in &self.summary {
            out.push_str(&format!("summary.{k} = {}\n", cell(v)));
        }
        out
    }
}

/// Human-table cell formatting: integers plain, fractions to 6 places
/// with trailing zeros trimmed, strings unquoted.
fn cell(v: &Json) -> String {
    match v {
        Json::Num(x) if x.fract() == 0.0 && x.abs() < 9e15 => format!("{}", *x as i64),
        Json::Num(x) => {
            let s = format!("{x:.6}");
            let s = s.trim_end_matches('0').trim_end_matches('.');
            s.to_string()
        }
        Json::Str(s) => s.clone(),
        Json::Bool(b) => b.to_string(),
        Json::Null => "-".to_string(),
        other => other.to_string_compact(),
    }
}

/// `spk_obs.trace.v1` JSON form of a drained span set.
pub fn trace_json(spans: &[SpanRecord], dropped: u64) -> Json {
    let rows: Vec<Json> = spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("name".into(), Json::from(s.name)),
                ("thread".into(), Json::from(s.thread)),
                ("depth".into(), Json::from(u64::from(s.depth))),
                (
                    "kind".into(),
                    Json::from(match s.kind {
                        SpanKind::Span => "span",
                        SpanKind::Event => "event",
                    }),
                ),
                ("start_ns".into(), Json::from(s.start_ns)),
                ("dur_ns".into(), Json::from(s.dur_ns)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::from(TRACE_SCHEMA)),
        ("dropped".into(), Json::from(dropped)),
        ("spans".into(), Json::Arr(rows)),
    ])
}

/// Indented per-thread span tree (spans sorted by start time, nested
/// by recorded depth), durations in ms.
pub fn render_span_tree(spans: &[SpanRecord]) -> String {
    let mut sorted: Vec<&SpanRecord> = spans.iter().collect();
    sorted.sort_by_key(|s| (s.thread, s.start_ns, s.depth));
    let mut out = String::new();
    let mut current_thread = None;
    for s in sorted {
        if current_thread != Some(s.thread) {
            out.push_str(&format!("thread {}:\n", s.thread));
            current_thread = Some(s.thread);
        }
        let indent = "  ".repeat(usize::from(s.depth) + 1);
        match s.kind {
            SpanKind::Span => out.push_str(&format!(
                "{indent}{name} {ms:.3} ms\n",
                name = s.name,
                ms = s.dur_ns as f64 / 1e6
            )),
            SpanKind::Event => out.push_str(&format!("{indent}@{}\n", s.name)),
        }
    }
    out
}
