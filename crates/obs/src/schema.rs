//! In-repo schema checker for the three JSON document kinds this crate
//! emits, used by the `obs-check` bin in CI (no jq dependency).

use crate::json::Json;
use crate::metrics::METRICS_SCHEMA;
use crate::report::{RUN_REPORT_SCHEMA, TRACE_SCHEMA};

/// Which schema a document validated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    RunReport,
    Trace,
    Metrics,
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Kind::RunReport => RUN_REPORT_SCHEMA,
            Kind::Trace => TRACE_SCHEMA,
            Kind::Metrics => METRICS_SCHEMA,
        })
    }
}

/// Parse and validate a JSON document against the schema its `schema`
/// field names.
pub fn validate_str(text: &str) -> Result<Kind, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    validate_json(&doc)
}

/// Validate an already-parsed document.
pub fn validate_json(doc: &Json) -> Result<Kind, String> {
    let schema = str_field(doc, "schema")?;
    match schema {
        RUN_REPORT_SCHEMA => validate_run_report(doc).map(|()| Kind::RunReport),
        TRACE_SCHEMA => validate_trace(doc).map(|()| Kind::Trace),
        METRICS_SCHEMA => validate_metrics(doc).map(|()| Kind::Metrics),
        other => Err(format!("unknown schema '{other}'")),
    }
}

fn field<'a>(doc: &'a Json, name: &str) -> Result<&'a Json, String> {
    doc.get(name)
        .ok_or_else(|| format!("missing field '{name}'"))
}

fn str_field<'a>(doc: &'a Json, name: &str) -> Result<&'a str, String> {
    field(doc, name)?
        .as_str()
        .ok_or_else(|| format!("field '{name}' must be a string"))
}

fn num_field(doc: &Json, name: &str) -> Result<f64, String> {
    field(doc, name)?
        .as_f64()
        .ok_or_else(|| format!("field '{name}' must be a number"))
}

fn obj_field<'a>(doc: &'a Json, name: &str) -> Result<&'a [(String, Json)], String> {
    field(doc, name)?
        .as_obj()
        .ok_or_else(|| format!("field '{name}' must be an object"))
}

fn arr_field<'a>(doc: &'a Json, name: &str) -> Result<&'a [Json], String> {
    field(doc, name)?
        .as_arr()
        .ok_or_else(|| format!("field '{name}' must be an array"))
}

fn validate_run_report(doc: &Json) -> Result<(), String> {
    let bench = str_field(doc, "bench")?;
    if bench.is_empty() {
        return Err("field 'bench' must be non-empty".into());
    }
    let threads = num_field(doc, "threads")?;
    if threads < 1.0 || threads.fract() != 0.0 {
        return Err("field 'threads' must be a positive integer".into());
    }
    let cores = num_field(doc, "cores")?;
    if cores < 1.0 || cores.fract() != 0.0 {
        return Err("field 'cores' must be a positive integer".into());
    }
    // Null is legal: multi-threaded report with no measured baseline.
    match doc.get("parallel_efficiency_pct") {
        Some(Json::Null) => {}
        _ => {
            let eff = num_field(doc, "parallel_efficiency_pct")?;
            if !(0.0..=1000.0).contains(&eff) {
                return Err(format!("parallel_efficiency_pct {eff} out of range"));
            }
        }
    }
    obj_field(doc, "config")?;
    let results = arr_field(doc, "results")?;
    for (i, row) in results.iter().enumerate() {
        let fields = row
            .as_obj()
            .ok_or_else(|| format!("results[{i}] must be an object"))?;
        if fields.is_empty() {
            return Err(format!("results[{i}] must be non-empty"));
        }
    }
    if let Some(notes) = doc.get("notes") {
        let notes = notes.as_arr().ok_or("field 'notes' must be an array")?;
        if notes.iter().any(|n| n.as_str().is_none()) {
            return Err("'notes' entries must be strings".into());
        }
    }
    if let Some(summary) = doc.get("summary") {
        summary
            .as_obj()
            .ok_or("field 'summary' must be an object")?;
    }
    Ok(())
}

fn validate_trace(doc: &Json) -> Result<(), String> {
    let dropped = num_field(doc, "dropped")?;
    if dropped < 0.0 || dropped.fract() != 0.0 {
        return Err("field 'dropped' must be a non-negative integer".into());
    }
    let spans = arr_field(doc, "spans")?;
    for (i, span) in spans.iter().enumerate() {
        let err = |msg: &str| format!("spans[{i}]: {msg}");
        if span.as_obj().is_none() {
            return Err(err("must be an object"));
        }
        let name = str_field(span, "name").map_err(|e| err(&e))?;
        if name.is_empty() {
            return Err(err("'name' must be non-empty"));
        }
        let kind = str_field(span, "kind").map_err(|e| err(&e))?;
        if kind != "span" && kind != "event" {
            return Err(err("'kind' must be 'span' or 'event'"));
        }
        for key in ["thread", "depth", "start_ns", "dur_ns"] {
            let v = num_field(span, key).map_err(|e| err(&e))?;
            if v < 0.0 || v.fract() != 0.0 {
                return Err(err(&format!("'{key}' must be a non-negative integer")));
            }
        }
        if kind == "event" && num_field(span, "dur_ns").unwrap_or(0.0) != 0.0 {
            return Err(err("events must have dur_ns == 0"));
        }
    }
    Ok(())
}

fn validate_metrics(doc: &Json) -> Result<(), String> {
    for (name, v) in obj_field(doc, "counters")? {
        if v.as_u64().is_none() {
            return Err(format!("counter '{name}' must be a non-negative integer"));
        }
    }
    for (name, v) in obj_field(doc, "gauges")? {
        if v.as_f64().map(|x| x.fract() != 0.0).unwrap_or(true) {
            return Err(format!("gauge '{name}' must be an integer"));
        }
    }
    for (name, hist) in obj_field(doc, "histograms")? {
        let err = |msg: &str| format!("histogram '{name}': {msg}");
        let count = num_field(hist, "count").map_err(|e| err(&e))?;
        num_field(hist, "sum").map_err(|e| err(&e))?;
        num_field(hist, "mean").map_err(|e| err(&e))?;
        let buckets = arr_field(hist, "buckets").map_err(|e| err(&e))?;
        let mut total = 0.0;
        for (i, bucket) in buckets.iter().enumerate() {
            let triple = bucket
                .as_arr()
                .filter(|t| t.len() == 3)
                .ok_or_else(|| err(&format!("buckets[{i}] must be [lo, hi, n]")))?;
            let lo = triple[0]
                .as_f64()
                .ok_or_else(|| err("bucket lo not a number"))?;
            let hi = triple[1]
                .as_f64()
                .ok_or_else(|| err("bucket hi not a number"))?;
            let n = triple[2]
                .as_f64()
                .ok_or_else(|| err("bucket n not a number"))?;
            if hi < lo || n < 0.0 {
                return Err(err(&format!("buckets[{i}] malformed")));
            }
            total += n;
        }
        if total != count {
            return Err(err(&format!(
                "bucket counts sum to {total}, 'count' says {count}"
            )));
        }
    }
    Ok(())
}
