//! A minimal JSON value type with an order-preserving object
//! representation, a writer, and a recursive-descent parser.
//!
//! Std-only by design (offline environment — no serde). Objects are
//! `Vec<(String, Json)>` so emitted key order is exactly insertion
//! order; that keeps the bench baselines (`BENCH_*.json`) stable and
//! lets new schema fields append without reshuffling the keys older
//! trajectory tooling greps for.

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (integers up to 2^53 round-trip
/// exactly, which covers every count this workspace emits).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace an object field, preserving position on
    /// replace. Panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) {
        match self {
            Json::Obj(pairs) => match pairs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => pairs.push((key.to_string(), value)),
            },
            _ => panic!("Json::set on a non-object"),
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialize with 2-space indentation and a trailing newline.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out.push('\n');
        out
    }

    /// Serialize with no whitespace.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    write_escaped(out, k);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    v.write(out, indent + 1, pretty);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must be a single value, full input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's float Display never uses exponent notation, so this is
    // always a valid JSON number; whole values print without ".0".
    let _ = write!(out, "{v}");
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Lone surrogates degrade to U+FFFD; pairs
                            // are combined.
                            if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 1; // cursor onto the 'u'
                                    let lo = self.hex4()?;
                                    let c = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    out.push(char::from_u32(c).unwrap_or('\u{FFFD}'));
                                } else {
                                    out.push('\u{FFFD}');
                                }
                            } else {
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            }
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    /// Reads the 4 hex digits after `\u` (cursor on the `u`).
    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| format!("bad \\u escape at byte {start}"))?;
        self.pos = end; // one past the last hex digit
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}
