//! Metrics registry: named counters, gauges, and log-bucketed
//! histograms with mergeable snapshots.
//!
//! Naming convention is dotted `scope.subject[.unit]`, e.g.
//! `spkadd.pattern.hits`, `shard3.queue_depth`,
//! `stream.flush.interval_ns`. Handles ([`Counter`], [`Gauge`],
//! [`Histogram`]) are `Arc`s resolved once at setup time; the hot path
//! is a single relaxed atomic op, so instrumented code pays exactly
//! what a hand-rolled `AtomicU64` field used to cost.
//!
//! Snapshots are plain data and [`MetricsSnapshot::merge`] /
//! [`HistogramSnapshot::merge`] are associative and commutative
//! (element-wise sums keyed by name), so shard-local snapshots fold
//! into service totals in any grouping — the same contract the server
//! crate's delta-synced shard metrics relied on.

use std::sync::{Arc, OnceLock};

use crate::json::Json;
// Hot-path atomics and the registry lock ride the cfg-gated shim so
// `--cfg spk_model` can model-check metric delta sync (sync_shim.rs).
use crate::sync_shim::{AtomicI64, AtomicU64, Mutex, Ordering};

/// `spk_obs.metrics.v1` — schema id stamped on metrics snapshots.
pub const METRICS_SCHEMA: &str = "spk_obs.metrics.v1";

/// Number of histogram buckets: bucket 0 holds zero, bucket `b`
/// (1..=64) holds `[2^(b-1), 2^b - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value (log2 bucketing, see [`HISTOGRAM_BUCKETS`]).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` value range of bucket `b`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    assert!(b < HISTOGRAM_BUCKETS, "bucket index {b} out of range");
    if b == 0 {
        (0, 0)
    } else {
        let lo = 1u64 << (b - 1);
        let hi = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
        (lo, hi)
    }
}

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed up/down gauge (e.g. queue depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log2-bucketed histogram of `u64` samples (latencies in ns, sizes…).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, slot) in buckets.iter_mut().zip(&self.buckets) {
            *b = slot.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Plain-data copy of a [`Histogram`]; merges are associative and
/// commutative (element-wise sums).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`); a pessimistic estimate, exact at bucket edges.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(b).1;
            }
        }
        bucket_bounds(HISTOGRAM_BUCKETS - 1).1
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max_bound(&self) -> u64 {
        for b in (0..HISTOGRAM_BUCKETS).rev() {
            if self.buckets[b] > 0 {
                return bucket_bounds(b).1;
            }
        }
        0
    }

    /// JSON form: `{count, sum, mean, buckets: [[lo, hi, n], ...]}`
    /// listing only non-empty buckets.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| {
                let (lo, hi) = bucket_bounds(b);
                Json::Arr(vec![Json::from(lo), Json::from(hi), Json::from(n)])
            })
            .collect();
        Json::Obj(vec![
            ("count".into(), Json::from(self.count)),
            ("sum".into(), Json::from(self.sum)),
            ("mean".into(), Json::from(self.mean())),
            ("buckets".into(), Json::Arr(buckets)),
        ])
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Named metric registry. Registration order is preserved so snapshots
/// and reports are stable; lookups are setup-path only (handles are
/// cached by the instrumented code).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        extract: impl Fn(&Metric) -> Option<Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Metric),
    ) -> Arc<T> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, m)) = inner.iter().find(|(n, _)| n == name) {
            return extract(m)
                .unwrap_or_else(|| panic!("metric '{name}' already registered as a {}", m.kind()));
        }
        let (handle, metric) = make();
        crate::span::count_alloc(1);
        inner.push((name.to_string(), metric));
        handle
    }

    /// Get or create the counter `name`; panics if `name` is already a
    /// different metric type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::default());
                (Arc::clone(&c), Metric::Counter(c))
            },
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::default());
                (Arc::clone(&g), Metric::Gauge(g))
            },
        )
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::default());
                (Arc::clone(&h), Metric::Histogram(h))
            },
        )
    }

    /// Copy every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, m) in inner.iter() {
            match m {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snap
    }
}

/// The process-wide registry (core-layer instrumentation publishes
/// here; the server builds per-service registries instead).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Plain-data copy of a [`Registry`]; name-keyed merges are
/// associative and commutative.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`: same-named counters/gauges sum,
    /// same-named histograms merge bucket-wise, unseen names append.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// `spk_obs.metrics.v1` JSON form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::from(METRICS_SCHEMA)),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::from(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}
