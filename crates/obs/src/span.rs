//! Span tracing: thread-local span stacks over [`Instant`], recorded
//! into bounded per-thread write-once ring buffers.
//!
//! # Design
//!
//! * **Global switch.** Tracing is off by default. [`set_tracing`]
//!   flips one `AtomicBool`; every entry point does a single `Relaxed`
//!   load and returns immediately when disabled. With the crate's
//!   `off` feature the check is a `cfg!` constant and the whole path
//!   folds to nothing at compile time.
//! * **Zero allocations on the disabled path.** A disabled
//!   `span!`/`event!`/[`timed`] call touches no thread-local, takes
//!   no lock, and allocates nothing — asserted by tests with a
//!   counting global allocator. On the *enabled* path the only
//!   allocations are one-time per thread (the ring buffer and its
//!   registry entry), counted by [`allocations`] the same way the core
//!   crate counts workspace rebuilds with `workspace_allocations()`.
//! * **Lock-free recording.** Each thread owns a bounded ring of
//!   [`SpanRecord`] slots. Only the owner thread writes a slot, then
//!   publishes it with a `Release` store of the length; drainers
//!   (`take_spans`) `Acquire`-load the length and read only published
//!   slots, which are never written again (write-once until drained).
//!   When a ring is full new records are dropped and counted
//!   ([`dropped_spans`]) rather than blocking or reallocating.
//! * **Panic safety.** The [`SpanGuard`] destructor restores the
//!   thread-local depth to the value captured at entry, so a span
//!   dropped during unwind leaves the stack exactly as it found it
//!   even if inner guards were leaked.

use std::cell::{Cell, OnceCell};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// Concurrency-bearing primitives come from the cfg-gated shim: `std`
// by default, `spk_check` under `--cfg spk_model` so the claim/publish
// protocol below is model-checkable (see sync_shim.rs).
use crate::sync_shim::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Mutex, Ordering, SlotCell};

/// Records per thread before the ring drops new spans (~640 KiB).
pub const RING_CAPACITY: usize = 16_384;

static ENABLED: AtomicBool = AtomicBool::new(false);
static OBS_ALLOCS: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

/// Enable or disable span recording process-wide.
///
/// Enabling also pins the trace epoch (the zero point of
/// [`SpanRecord::start_ns`]) if it is not pinned yet.
pub fn set_tracing(enabled: bool) {
    if enabled {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(enabled, Ordering::Release);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn tracing_enabled() -> bool {
    !cfg!(feature = "off") && ENABLED.load(Ordering::Relaxed)
}

/// Number of heap allocations the observability layer itself has
/// performed (ring buffers, registry growth, metric registration).
///
/// Steady-state tracing — and the entire disabled path — performs
/// none, so a flat reading across a workload is the layer's
/// "no hidden allocations" assertion, mirroring the core crate's
/// `workspace_allocations()` counter.
pub fn allocations() -> u64 {
    OBS_ALLOCS.load(Ordering::Relaxed)
}

/// Internal: count obs-layer allocation events (see [`allocations`]).
pub(crate) fn count_alloc(n: u64) {
    OBS_ALLOCS.fetch_add(n, Ordering::Relaxed);
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

#[inline]
fn ns_since_epoch(t: Instant) -> u64 {
    t.saturating_duration_since(epoch()).as_nanos() as u64
}

/// What a ring slot describes: a timed span or an instantaneous event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A scope with a duration (`dur_ns` is the elapsed time).
    Span,
    /// A point-in-time marker (`dur_ns == 0`).
    Event,
}

/// One completed span or event, as drained by [`take_spans`].
#[derive(Debug, Clone, Copy)]
pub struct SpanRecord {
    /// Static span name (taxonomy: `layer.phase`, e.g. `spkadd.symbolic`).
    pub name: &'static str,
    /// Dense per-process thread index (registration order, not OS id).
    pub thread: u32,
    /// Nesting depth at which the span ran (0 = root).
    pub depth: u16,
    /// Span or event.
    pub kind: SpanKind,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for events).
    pub dur_ns: u64,
}

const EMPTY_RECORD: SpanRecord = SpanRecord {
    name: "",
    thread: 0,
    depth: 0,
    kind: SpanKind::Event,
    start_ns: 0,
    dur_ns: 0,
};

struct Ring {
    thread: u32,
    slots: Box<[SlotCell<SpanRecord>]>,
    /// Published record count. Only the owner thread stores (Release);
    /// drainers load (Acquire).
    len: AtomicUsize,
    /// Drained prefix; only mutated under the `RINGS` lock.
    taken: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: (Send) a `Ring` moved to / dropped on another thread is
// sound because the write-once claim protocol never depends on *which*
// thread owns it, only that at most one thread plays the writer role:
// `push` is reached exclusively through the owner's thread-local
// handle, so ownership of the writer role transfers with the
// thread-local, never by `Send`ing the ring itself mid-write.
unsafe impl Send for Ring {}

// SAFETY: (Sync) concurrent `&Ring` access is partitioned by the
// claim/publish protocol. Slot `i` is written exactly once, by the
// owner thread, strictly before `len` is published past `i` with a
// `Release` store; every other thread reads only slots below an
// `Acquire`-loaded `len`. A published slot is never written again
// until after it has been drained (drains are serialized by the
// `RINGS` lock, and `taken ≤ len` always), so no `&Ring` alias can
// observe a slot mid-write. This protocol is model-checked in
// `crates/check/tests/ring_protocol.rs` and, under `--cfg spk_model`,
// on this very type.
unsafe impl Sync for Ring {}

impl Ring {
    fn push(&self, rec: SpanRecord) {
        let len = self.len.load(Ordering::Relaxed);
        if len == self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: only the owner thread calls `push`, and slot `len` is
        // not yet published, so no other thread may be reading it.
        unsafe { self.slots[len].write(rec) };
        self.len.store(len + 1, Ordering::Release);
    }
}

struct ThreadObs {
    ring: OnceCell<Arc<Ring>>,
    depth: Cell<u16>,
}

impl ThreadObs {
    fn ring(&self) -> &Arc<Ring> {
        self.ring.get_or_init(|| {
            let thread = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            let slots: Box<[_]> = (0..RING_CAPACITY)
                .map(|_| SlotCell::new(EMPTY_RECORD))
                .collect();
            let ring = Arc::new(Ring {
                thread,
                slots,
                len: AtomicUsize::new(0),
                taken: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
            });
            // Ring slots + Arc + registry growth: three allocation
            // events, all one-time per thread.
            count_alloc(3);
            RINGS.lock().unwrap().push(Arc::clone(&ring));
            ring
        })
    }

    fn record(&self, name: &'static str, depth: u16, kind: SpanKind, start: Instant, dur: u64) {
        let ring = self.ring();
        ring.push(SpanRecord {
            name,
            thread: ring.thread,
            depth,
            kind,
            start_ns: ns_since_epoch(start),
            dur_ns: dur,
        });
    }
}

thread_local! {
    static THREAD_OBS: ThreadObs = const {
        ThreadObs { ring: OnceCell::new(), depth: Cell::new(0) }
    };
}

/// RAII guard for an open span; records on drop.
///
/// Bind it — `let _span = spk_obs::span!("name");` — a bare `let _ =`
/// drops immediately and records a zero-length span.
pub struct SpanGuard {
    name: &'static str,
    /// `None` means tracing was disabled at entry: drop is a no-op.
    start: Option<Instant>,
    prev_depth: u16,
}

/// Open a span. Prefer the [`span!`](crate::span!) macro.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard {
            name,
            start: None,
            prev_depth: 0,
        };
    }
    let prev_depth = THREAD_OBS
        .try_with(|t| {
            let d = t.depth.get();
            t.depth.set(d.saturating_add(1));
            d
        })
        .unwrap_or(0);
    SpanGuard {
        name,
        start: Some(Instant::now()),
        prev_depth,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let dur = start.elapsed().as_nanos() as u64;
            // `try_with` so a drop racing thread teardown stays silent.
            let _ = THREAD_OBS.try_with(|t| {
                // Restore — not decrement — the depth: even if inner
                // guards were leaked or dropped out of order (unwind),
                // the stack ends up exactly where this span found it.
                t.depth.set(self.prev_depth);
                t.record(self.name, self.prev_depth, SpanKind::Span, start, dur);
            });
        }
    }
}

/// Record an instantaneous event at the current span depth.
/// Prefer the [`event!`](crate::event!) macro.
#[inline]
pub fn event(name: &'static str) {
    if !tracing_enabled() {
        return;
    }
    let now = Instant::now();
    let _ = THREAD_OBS.try_with(|t| {
        t.record(name, t.depth.get(), SpanKind::Event, now, 0);
    });
}

/// Time `f`, recording a span with the *same* measurement that is
/// returned — so stats built from the return value (e.g. the core
/// crate's `ExecuteStats` phases) are bit-identical to the trace.
///
/// When tracing is disabled this is exactly `Instant::now` + `f()` +
/// `elapsed`: no thread-local access, no allocation.
#[inline]
pub fn timed<R>(name: &'static str, f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    let dur = start.elapsed();
    record_explicit(name, start, dur);
    (out, dur)
}

/// Record an already-measured span (used by [`timed`]; public so
/// callers that must own the `Instant` arithmetic can still trace).
#[inline]
pub fn record_explicit(name: &'static str, start: Instant, dur: Duration) {
    if !tracing_enabled() {
        return;
    }
    let _ = THREAD_OBS.try_with(|t| {
        t.record(
            name,
            t.depth.get(),
            SpanKind::Span,
            start,
            dur.as_nanos() as u64,
        );
    });
}

/// Drain every thread's ring: returns all records published since the
/// last drain, ordered by `(thread, start_ns)`.
pub fn take_spans() -> Vec<SpanRecord> {
    let rings = RINGS.lock().unwrap();
    let mut out = Vec::new();
    for ring in rings.iter() {
        let len = ring.len.load(Ordering::Acquire);
        let taken = ring.taken.load(Ordering::Relaxed);
        for slot in &ring.slots[taken..len] {
            // SAFETY: indices below the Acquire-loaded `len` are
            // published and never written again (see `Ring`).
            out.push(unsafe { slot.read() });
        }
        ring.taken.store(len, Ordering::Relaxed);
    }
    out.sort_by_key(|r| (r.thread, r.start_ns, r.depth));
    out
}

/// Total records dropped because a ring was full.
pub fn dropped_spans() -> u64 {
    let rings = RINGS.lock().unwrap();
    rings
        .iter()
        .map(|r| r.dropped.load(Ordering::Relaxed))
        .sum()
}

/// Open a span bound to a guard: `let _span = spk_obs::span!("stream.flush");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
}

/// Record an instantaneous event: `spk_obs::event!("kway.dispatch.hash");`
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::span::event($name)
    };
}
