//! Span stack behavior under nesting, unwinding, and the disabled path.
//!
//! Tracing state and the drain are process-global, so every test takes
//! one shared lock and filters drained records by its own span names.

use spk_obs::{set_tracing, take_spans, SpanKind, SpanRecord};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn drain_named(prefix: &str) -> Vec<SpanRecord> {
    take_spans()
        .into_iter()
        .filter(|s| s.name.starts_with(prefix))
        .collect()
}

#[test]
fn nesting_depths_and_ordering() {
    let _g = lock();
    set_tracing(true);
    take_spans();
    {
        let _a = spk_obs::span!("nest.a");
        {
            let _b = spk_obs::span!("nest.b");
            let _c = spk_obs::span!("nest.c");
        }
    }
    set_tracing(false);
    let spans = drain_named("nest.");
    assert_eq!(spans.len(), 3);
    // Drained order is (thread, start_ns): outermost first.
    assert_eq!(spans[0].name, "nest.a");
    assert_eq!(spans[0].depth, 0);
    assert_eq!(spans[1].name, "nest.b");
    assert_eq!(spans[1].depth, 1);
    assert_eq!(spans[2].name, "nest.c");
    assert_eq!(spans[2].depth, 2);
    for s in &spans {
        assert_eq!(s.kind, SpanKind::Span);
        assert!(s.start_ns >= spans[0].start_ns);
        assert!(s.start_ns + s.dur_ns <= spans[0].start_ns + spans[0].dur_ns);
    }
}

#[test]
fn events_record_at_current_depth_with_zero_duration() {
    let _g = lock();
    set_tracing(true);
    take_spans();
    {
        let _a = spk_obs::span!("evt.scope");
        spk_obs::event!("evt.inner");
    }
    spk_obs::event!("evt.root");
    set_tracing(false);
    let spans = drain_named("evt.");
    let inner = spans.iter().find(|s| s.name == "evt.inner").unwrap();
    assert_eq!(inner.kind, SpanKind::Event);
    assert_eq!(inner.depth, 1);
    assert_eq!(inner.dur_ns, 0);
    let root = spans.iter().find(|s| s.name == "evt.root").unwrap();
    assert_eq!(root.depth, 0);
}

#[test]
fn unwind_restores_depth_and_still_records() {
    let _g = lock();
    set_tracing(true);
    take_spans();
    let result = std::panic::catch_unwind(|| {
        let _outer = spk_obs::span!("panic.outer");
        let _inner = spk_obs::span!("panic.inner");
        panic!("boom");
    });
    assert!(result.is_err());
    // The stack must be back at depth 0: a fresh span records as root.
    {
        let _after = spk_obs::span!("panic.after");
    }
    set_tracing(false);
    let spans = drain_named("panic.");
    let after = spans.iter().find(|s| s.name == "panic.after").unwrap();
    assert_eq!(after.depth, 0, "unwind must restore the span stack");
    // Both unwound spans were still recorded at their true depths.
    assert_eq!(
        spans
            .iter()
            .find(|s| s.name == "panic.outer")
            .unwrap()
            .depth,
        0
    );
    assert_eq!(
        spans
            .iter()
            .find(|s| s.name == "panic.inner")
            .unwrap()
            .depth,
        1
    );
}

#[test]
fn disabled_path_records_nothing() {
    let _g = lock();
    set_tracing(false);
    take_spans();
    {
        let _s = spk_obs::span!("off.span");
        spk_obs::event!("off.event");
        let (v, dur) = spk_obs::timed("off.timed", || 41 + 1);
        assert_eq!(v, 42);
        assert!(dur.as_nanos() < u128::from(u64::MAX));
    }
    assert!(drain_named("off.").is_empty());
}

#[test]
fn timed_span_matches_returned_measurement() {
    let _g = lock();
    set_tracing(true);
    take_spans();
    let (sum, dur) = spk_obs::timed("timed.loop", || (0u64..1000).sum::<u64>());
    set_tracing(false);
    assert_eq!(sum, 499_500);
    let spans = drain_named("timed.");
    assert_eq!(spans.len(), 1);
    assert_eq!(
        spans[0].dur_ns,
        dur.as_nanos() as u64,
        "the trace must carry the same measurement timed() returned"
    );
}

#[test]
fn toggling_mid_span_never_corrupts_the_stack() {
    let _g = lock();
    set_tracing(false);
    take_spans();
    // Guard opened while disabled stays disarmed even if tracing turns
    // on before it drops — it must not record or touch the depth.
    {
        let _disarmed = spk_obs::span!("toggle.disarmed");
        set_tracing(true);
        {
            let _live = spk_obs::span!("toggle.live");
        }
    }
    set_tracing(false);
    let spans = drain_named("toggle.");
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].name, "toggle.live");
    assert_eq!(spans[0].depth, 0);
}
