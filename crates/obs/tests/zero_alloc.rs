//! The disabled tracing path performs literally zero heap allocations,
//! asserted with a counting global allocator; the enabled steady state
//! (ring already created) also records allocation-free.
//!
//! Single test function on purpose: the allocation counter is global,
//! so concurrent tests in this binary would contaminate the deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to the system allocator; only adds a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller obligations forwarded verbatim to `System`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller obligations forwarded verbatim to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller obligations forwarded verbatim to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn tracing_paths_are_allocation_free() {
    // --- disabled path: zero global allocations, zero obs allocations.
    spk_obs::set_tracing(false);
    let obs_before = spk_obs::allocations();
    let before = alloc_calls();
    let mut acc = 0u64;
    for i in 0..10_000u64 {
        let _span = spk_obs::span!("alloc.disabled.span");
        spk_obs::event!("alloc.disabled.event");
        let (v, _dur) = spk_obs::timed("alloc.disabled.timed", || i * 2);
        acc = acc.wrapping_add(v);
    }
    assert_eq!(
        alloc_calls() - before,
        0,
        "disabled tracing must not allocate"
    );
    assert_eq!(
        spk_obs::allocations(),
        obs_before,
        "disabled tracing must not count obs allocations either"
    );
    assert_eq!(acc, 10_000 * 9_999);

    // --- enabled steady state: after the one-time ring creation,
    // recording into the ring is allocation-free too.
    spk_obs::set_tracing(true);
    {
        // Warm-up: creates and registers this thread's ring.
        let _warm = spk_obs::span!("alloc.warmup");
    }
    let ring_allocs = spk_obs::allocations() - obs_before;
    assert!(
        ring_allocs > 0,
        "ring creation is the one-time cost the counter reports"
    );
    let before = alloc_calls();
    for _ in 0..1_000u64 {
        let _span = spk_obs::span!("alloc.enabled.span");
        spk_obs::event!("alloc.enabled.event");
    }
    assert_eq!(
        alloc_calls() - before,
        0,
        "steady-state recording must not allocate"
    );
    assert_eq!(
        spk_obs::allocations() - obs_before,
        ring_allocs,
        "no further obs allocations past ring creation"
    );
    spk_obs::set_tracing(false);

    // Draining allocates (it returns a Vec) — but that is the reader's
    // cost, outside the instrumented hot path.
    let spans = spk_obs::take_spans();
    assert!(spans.iter().any(|s| s.name == "alloc.enabled.span"));
}
