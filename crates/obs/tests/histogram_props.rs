//! Property tests for the log2 histogram: snapshot merge is associative
//! and commutative (the property that makes per-shard histograms safe to
//! fold in any order), bucket edges round-trip through `bucket_index`,
//! and merged quantiles stay within the merged value range.

use proptest::prelude::*;
use spk_obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn bucket_edges_round_trip() {
    // Every bucket's own bounds must map back to that bucket — the
    // covering is exact and gap-free.
    for b in 0..HISTOGRAM_BUCKETS {
        let (lo, hi) = bucket_bounds(b);
        assert_eq!(bucket_index(lo), b, "lo bound of bucket {b}");
        assert_eq!(bucket_index(hi), b, "hi bound of bucket {b}");
        if b + 1 < HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(hi + 1), b + 1, "hi+1 spills into {}", b + 1);
        }
    }
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(a, b) == merge(b, a), field for field.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..1 << 40, 0..60),
        b in proptest::collection::vec(0u64..1 << 40, 0..60),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab.count, ba.count);
        prop_assert_eq!(ab.sum, ba.sum);
        prop_assert_eq!(ab.buckets, ba.buckets);
    }

    /// (a ∪ b) ∪ c == a ∪ (b ∪ c), field for field.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..1 << 40, 0..40),
        b in proptest::collection::vec(0u64..1 << 40, 0..40),
        c in proptest::collection::vec(0u64..1 << 40, 0..40),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left.count, right.count);
        prop_assert_eq!(left.sum, right.sum);
        prop_assert_eq!(left.buckets, right.buckets);
    }

    /// A merged snapshot equals the snapshot of the concatenated stream.
    #[test]
    fn merge_equals_concatenation(
        a in proptest::collection::vec(0u64..1 << 40, 0..60),
        b in proptest::collection::vec(0u64..1 << 40, 0..60),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        let direct = snapshot_of(&concat);
        prop_assert_eq!(merged.count, direct.count);
        prop_assert_eq!(merged.sum, direct.sum);
        prop_assert_eq!(merged.buckets, direct.buckets);
    }

    /// Recorded values land in the bucket whose bounds contain them, the
    /// count totals match, and quantiles return a real bucket bound at
    /// or above the true quantile's bucket.
    #[test]
    fn record_respects_bucket_bounds(
        values in proptest::collection::vec(0u64..1 << 40, 1..80),
    ) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), values.len() as u64);
        for &v in &values {
            let b = bucket_index(v);
            let (lo, hi) = bucket_bounds(b);
            prop_assert!(lo <= v && v <= hi, "{v} outside bucket {b} [{lo}, {hi}]");
            prop_assert!(snap.buckets[b] > 0);
        }
        let max = *values.iter().max().unwrap();
        // p100 is the hi bound of the max value's bucket.
        prop_assert_eq!(snap.quantile(1.0), bucket_bounds(bucket_index(max)).1);
    }
}
