//! # spk-summa — simulated distributed sparse SUMMA SpGEMM
//!
//! An in-memory simulation of the distributed sparse SUMMA algorithm with
//! stationary C (the paper's Fig 5, CombBLAS-style): the input matrices
//! are 2D-block-distributed over a `q × q` process grid; in stage `s`,
//! every process row broadcasts its `A(:, s)` block and every process
//! column its `B(s, :)` block; each process multiplies the received pair
//! locally; after `q` stages each process reduces its `q` intermediate
//! products with one **SpKAdd** — the operation whose cost the paper's
//! Fig 6 attributes an order of magnitude of.
//!
//! "Distributed" here means *faithfully phased*, not networked: each
//! simulated process owns its blocks, stages proceed as in SUMMA,
//! broadcast volume is accounted in bytes, and the two computational
//! phases (local multiply, SpKAdd) are timed separately — which is
//! exactly what Fig 6 reports ("excluding the communication costs").
//! See DESIGN.md, substitution 2.

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

use rayon::prelude::*;
use spk_sparse::{CooMatrix, CscMatrix, SparseError};
use spk_spgemm::{spgemm_hash, SpgemmOptions};
use spkadd::{Algorithm, Options, SpkaddError};

/// Which SpKAdd variant reduces the per-process intermediates, matching
/// the three bars of Fig 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionKind {
    /// Heap SpKAdd over *sorted* intermediates — the CombBLAS incumbent.
    Heap,
    /// Hash SpKAdd over sorted intermediates.
    SortedHash,
    /// Hash SpKAdd over *unsorted* intermediates: the local multiplies
    /// skip their per-column sort (the ~20% multiply saving of Fig 6).
    UnsortedHash,
}

impl ReductionKind {
    /// Display name matching Fig 6's x-axis.
    pub fn name(&self) -> &'static str {
        match self {
            ReductionKind::Heap => "Heap",
            ReductionKind::SortedHash => "Sorted Hash",
            ReductionKind::UnsortedHash => "Unsorted Hash",
        }
    }

    /// Whether the local multiplies must emit sorted columns.
    pub fn multiply_sorted(&self) -> bool {
        !matches!(self, ReductionKind::UnsortedHash)
    }

    /// The SpKAdd algorithm used for the reduction.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            ReductionKind::Heap => Algorithm::Heap,
            _ => Algorithm::Hash,
        }
    }
}

/// Configuration of a simulated SUMMA run.
#[derive(Debug, Clone)]
pub struct SummaConfig {
    /// Process-grid side; the run simulates `grid²` processes and `grid`
    /// broadcast stages, so each process reduces `k = grid` intermediates.
    pub grid: usize,
    /// The reduction variant (Fig 6's compared configurations).
    pub reduction: ReductionKind,
    /// Worker threads for the whole simulation; 0 = ambient pool.
    pub threads: usize,
}

impl Default for SummaConfig {
    fn default() -> Self {
        Self {
            grid: 4,
            reduction: ReductionKind::SortedHash,
            threads: 0,
        }
    }
}

/// Per-process phase timings (seconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProcessTiming {
    /// Total local-multiply time across all stages.
    pub multiply: f64,
    /// SpKAdd reduction time.
    pub spkadd: f64,
}

/// Outcome of a simulated SUMMA run.
#[derive(Debug)]
pub struct SummaReport {
    /// The assembled global product.
    pub result: CscMatrix<f64>,
    /// Per-process timings, indexed `i * grid + j`.
    pub per_process: Vec<ProcessTiming>,
    /// Simulated broadcast volume in bytes (A and B blocks, `q−1`
    /// receivers each).
    pub bytes_broadcast: u64,
    /// Grid side used.
    pub grid: usize,
}

impl SummaReport {
    /// Sum of local-multiply time over all processes (Fig 6's stacked
    /// "Local Multiply" segment).
    pub fn multiply_total(&self) -> f64 {
        self.per_process.iter().map(|t| t.multiply).sum()
    }

    /// Sum of SpKAdd time over all processes (Fig 6's "SpKAdd" segment).
    pub fn spkadd_total(&self) -> f64 {
        self.per_process.iter().map(|t| t.spkadd).sum()
    }

    /// Critical-path (max over processes) multiply time.
    pub fn multiply_max(&self) -> f64 {
        self.per_process
            .iter()
            .map(|t| t.multiply)
            .fold(0.0, f64::max)
    }

    /// Critical-path SpKAdd time.
    pub fn spkadd_max(&self) -> f64 {
        self.per_process
            .iter()
            .map(|t| t.spkadd)
            .fold(0.0, f64::max)
    }
}

/// Errors from the SUMMA simulator.
#[derive(Debug)]
pub enum SummaError {
    /// Structural problem from the sparse substrate.
    Sparse(SparseError),
    /// Reduction failure from the SpKAdd layer.
    Spkadd(SpkaddError),
    /// Invalid configuration (reason in payload).
    Config(String),
}

impl std::fmt::Display for SummaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SummaError::Sparse(e) => write!(f, "{e}"),
            SummaError::Spkadd(e) => write!(f, "{e}"),
            SummaError::Config(msg) => write!(f, "invalid SUMMA config: {msg}"),
        }
    }
}

impl std::error::Error for SummaError {}

impl From<SparseError> for SummaError {
    fn from(e: SparseError) -> Self {
        SummaError::Sparse(e)
    }
}

impl From<SpkaddError> for SummaError {
    fn from(e: SpkaddError) -> Self {
        SummaError::Spkadd(e)
    }
}

/// Approximate wire size of a CSC block: 12 bytes per nonzero (u32 row +
/// f64 value) plus the column pointer array.
pub fn csc_wire_bytes(m: &CscMatrix<f64>) -> u64 {
    (m.nnz() * 12 + (m.ncols() + 1) * 8) as u64
}

/// Block boundary `i` of `parts` over an extent of `len`.
fn bound(i: usize, parts: usize, len: usize) -> usize {
    i * len / parts
}

/// Runs the simulated SUMMA product `C = A·B`.
pub fn run_summa(
    a: &CscMatrix<f64>,
    b: &CscMatrix<f64>,
    cfg: &SummaConfig,
) -> Result<SummaReport, SummaError> {
    if a.ncols() != b.nrows() {
        return Err(SummaError::Sparse(SparseError::ProductMismatch {
            lhs_cols: a.ncols(),
            rhs_rows: b.nrows(),
        }));
    }
    let q = cfg.grid;
    if q == 0 {
        return Err(SummaError::Config("grid side must be ≥ 1".into()));
    }
    if a.nrows() < q || a.ncols() < q || b.ncols() < q {
        return Err(SummaError::Config(format!(
            "matrix dimensions ({}x{} · {}x{}) too small for a {q}x{q} grid",
            a.nrows(),
            a.ncols(),
            b.nrows(),
            b.ncols()
        )));
    }

    let (m, kk) = a.shape();
    let n = b.ncols();

    let run = || -> Result<SummaReport, SummaError> {
        // 2D block distribution.
        let a_blocks: Vec<Vec<CscMatrix<f64>>> = (0..q)
            .into_par_iter()
            .map(|i| {
                let rows = a.slice_rows(bound(i, q, m), bound(i + 1, q, m));
                (0..q)
                    .map(|l| rows.slice_cols(bound(l, q, kk), bound(l + 1, q, kk)))
                    .collect()
            })
            .collect();
        let b_blocks: Vec<Vec<CscMatrix<f64>>> = (0..q)
            .into_par_iter()
            .map(|l| {
                let rows = b.slice_rows(bound(l, q, kk), bound(l + 1, q, kk));
                (0..q)
                    .map(|j| rows.slice_cols(bound(j, q, n), bound(j + 1, q, n)))
                    .collect()
            })
            .collect();

        // Simulated broadcast volume: in stage s, A(i,s) goes to q−1 row
        // peers and B(s,j) to q−1 column peers.
        let mut bytes = 0u64;
        for s in 0..q {
            for row in &a_blocks {
                bytes += csc_wire_bytes(&row[s]) * (q as u64 - 1);
            }
            for blk in &b_blocks[s] {
                bytes += csc_wire_bytes(blk) * (q as u64 - 1);
            }
        }

        let mul_opts = SpgemmOptions {
            sorted_output: cfg.reduction.multiply_sorted(),
            threads: 0,
            scheduling: Default::default(),
        };
        let mut add_opts = Options::default();
        add_opts.sorted_output = true;
        // Sortedness of the intermediates is known by construction.
        add_opts.validate_sorted = false;
        let alg = cfg.reduction.algorithm();
        if alg == Algorithm::Heap && !cfg.reduction.multiply_sorted() {
            return Err(SummaError::Config(
                "heap reduction requires sorted intermediates".into(),
            ));
        }

        // Each process: q local multiplies (one per stage), then SpKAdd.
        let outcomes: Result<Vec<(usize, CscMatrix<f64>, ProcessTiming)>, SummaError> = (0..q * q)
            .into_par_iter()
            .map(|pid| {
                let (i, j) = (pid / q, pid % q);
                let mut timing = ProcessTiming::default();
                let mut partials: Vec<CscMatrix<f64>> = Vec::with_capacity(q);
                for s in 0..q {
                    let t0 = spk_obs::now();
                    let c = spgemm_hash(&a_blocks[i][s], &b_blocks[s][j], &mul_opts)?;
                    timing.multiply += t0.elapsed().as_secs_f64();
                    partials.push(c);
                }
                let refs: Vec<&CscMatrix<f64>> = partials.iter().collect();
                let t0 = spk_obs::now();
                let block = spkadd::spkadd_with(&refs, alg, &add_opts)?;
                timing.spkadd += t0.elapsed().as_secs_f64();
                Ok((pid, block, timing))
            })
            .collect();
        let mut outcomes = outcomes?;
        outcomes.sort_by_key(|(pid, _, _)| *pid);

        // Reassemble the global product.
        let total_nnz: usize = outcomes.iter().map(|(_, b, _)| b.nnz()).sum();
        let mut coo = CooMatrix::with_capacity(m, n, total_nnz);
        let mut per_process = vec![ProcessTiming::default(); q * q];
        for (pid, block, timing) in &outcomes {
            let (i, j) = (pid / q, pid % q);
            let (r_off, c_off) = (bound(i, q, m) as u32, bound(j, q, n) as u32);
            for (r, c, v) in block.iter() {
                coo.push(r + r_off, c + c_off, v);
            }
            per_process[*pid] = *timing;
        }
        let result = coo.to_csc_sum_duplicates();

        Ok(SummaReport {
            result,
            per_process,
            bytes_broadcast: bytes,
            grid: q,
        })
    };
    spkadd::parallel::run_with_threads(cfg.threads, run)
}

/// Outcome of a 3D (communication-avoiding) SUMMA run: the paper's intro
/// notes these algorithms "utilize SpKAdd at two different phases: one
/// within each 2D grid of the overall 3D process grid and another when
/// reducing results across different 2D grids".
#[derive(Debug)]
pub struct Summa3dReport {
    /// The assembled global product.
    pub result: CscMatrix<f64>,
    /// Seconds in local multiplies, summed over all processes and layers.
    pub multiply_total: f64,
    /// Seconds in the *intra-layer* SpKAdd (phase one), summed.
    pub spkadd_intra_total: f64,
    /// Seconds in the *inter-layer* SpKAdd (phase two), summed.
    pub spkadd_inter_total: f64,
    /// Simulated broadcast volume across all layers, bytes.
    pub bytes_broadcast: u64,
}

/// Runs a 3D sparse SUMMA: the inner dimension is split across `layers`
/// replicated 2D grids; each layer runs a `grid × grid` 2D SUMMA over its
/// slab (intra-layer SpKAdd), then corresponding processes across layers
/// reduce their C blocks (inter-layer SpKAdd). With `layers = 1` this
/// degenerates to [`run_summa`].
pub fn run_summa_3d(
    a: &CscMatrix<f64>,
    b: &CscMatrix<f64>,
    cfg: &SummaConfig,
    layers: usize,
) -> Result<Summa3dReport, SummaError> {
    if layers == 0 {
        return Err(SummaError::Config("layer count must be ≥ 1".into()));
    }
    let kk = a.ncols();
    if kk != b.nrows() {
        return Err(SummaError::Sparse(SparseError::ProductMismatch {
            lhs_cols: a.ncols(),
            rhs_rows: b.nrows(),
        }));
    }
    if kk < layers * cfg.grid.max(1) {
        return Err(SummaError::Config(format!(
            "inner dimension {kk} too small for {layers} layers of a {}x{} grid",
            cfg.grid, cfg.grid
        )));
    }
    // Phase 1: each layer multiplies its inner slab with a 2D SUMMA.
    let mut layer_reports = Vec::with_capacity(layers);
    for l in 0..layers {
        let k1 = bound(l, layers, kk);
        let k2 = bound(l + 1, layers, kk);
        let a_slab = a.slice_cols(k1, k2);
        let b_slab = b.slice_rows(k1, k2);
        layer_reports.push(run_summa(&a_slab, &b_slab, cfg)?);
    }
    let multiply_total = layer_reports.iter().map(|r| r.multiply_total()).sum();
    let spkadd_intra_total = layer_reports.iter().map(|r| r.spkadd_total()).sum();
    let bytes_broadcast = layer_reports.iter().map(|r| r.bytes_broadcast).sum();

    // Phase 2: reduce the c layer products (the cross-grid SpKAdd). In a
    // real machine this happens blockwise per process; numerically the
    // blockwise reduction is exactly the SpKAdd of the layer products.
    let partials: Vec<CscMatrix<f64>> = layer_reports.into_iter().map(|r| r.result).collect();
    let refs: Vec<&CscMatrix<f64>> = partials.iter().collect();
    let mut add_opts = Options::default();
    add_opts.validate_sorted = false;
    add_opts.threads = cfg.threads;
    let t0 = spk_obs::now();
    let result = spkadd::spkadd_with(&refs, cfg.reduction.algorithm(), &add_opts)?;
    let spkadd_inter_total = t0.elapsed().as_secs_f64();

    Ok(Summa3dReport {
        result,
        multiply_total,
        spkadd_intra_total,
        spkadd_inter_total,
        bytes_broadcast,
    })
}

/// Collects the intermediate products one process would reduce — the
/// "SpGEMM intermediate matrices" workload of Fig 3(c) and Fig 4(d),
/// without running the whole grid. Returns the `q` partial products of
/// process (0, 0).
pub fn process_intermediates(
    a: &CscMatrix<f64>,
    b: &CscMatrix<f64>,
    q: usize,
    sorted: bool,
) -> Result<Vec<CscMatrix<f64>>, SummaError> {
    if a.ncols() != b.nrows() {
        return Err(SummaError::Sparse(SparseError::ProductMismatch {
            lhs_cols: a.ncols(),
            rhs_rows: b.nrows(),
        }));
    }
    let (m, kk) = a.shape();
    let n = b.ncols();
    let a_row = a.slice_rows(0, bound(1, q, m));
    let b_col = b.slice_cols(0, bound(1, q, n));
    let opts = SpgemmOptions {
        sorted_output: sorted,
        ..Default::default()
    };
    (0..q)
        .map(|s| {
            let a_blk = a_row.slice_cols(bound(s, q, kk), bound(s + 1, q, kk));
            let b_blk = b_col.slice_rows(bound(s, q, kk), bound(s + 1, q, kk));
            spgemm_hash(&a_blk, &b_blk, &opts).map_err(SummaError::from)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spk_sparse::DenseMatrix;

    fn inputs() -> (CscMatrix<f64>, CscMatrix<f64>) {
        let a = spk_gen::er(48, 40, 3, 100);
        let b = spk_gen::er(40, 32, 3, 101);
        (a, b)
    }

    #[test]
    fn summa_matches_direct_product_for_all_reductions() {
        let (a, b) = inputs();
        let direct = spgemm_hash(&a, &b, &SpgemmOptions::default()).unwrap();
        for reduction in [
            ReductionKind::Heap,
            ReductionKind::SortedHash,
            ReductionKind::UnsortedHash,
        ] {
            let report = run_summa(
                &a,
                &b,
                &SummaConfig {
                    grid: 4,
                    reduction,
                    threads: 0,
                },
            )
            .unwrap();
            assert!(
                report.result.approx_eq(&direct, 1e-9),
                "{} reduction produced a wrong product",
                reduction.name()
            );
            assert_eq!(report.per_process.len(), 16);
            assert!(report.bytes_broadcast > 0);
        }
    }

    #[test]
    fn grid_one_degenerates_to_local_multiply() {
        let (a, b) = inputs();
        let direct = spgemm_hash(&a, &b, &SpgemmOptions::default()).unwrap();
        let report = run_summa(
            &a,
            &b,
            &SummaConfig {
                grid: 1,
                reduction: ReductionKind::SortedHash,
                threads: 0,
            },
        )
        .unwrap();
        assert!(report.result.approx_eq(&direct, 1e-9));
        assert_eq!(report.bytes_broadcast, 0, "no peers to broadcast to");
    }

    #[test]
    fn config_validation() {
        let (a, b) = inputs();
        assert!(matches!(
            run_summa(
                &a,
                &b,
                &SummaConfig {
                    grid: 0,
                    ..Default::default()
                }
            ),
            Err(SummaError::Config(_))
        ));
        let tiny = CscMatrix::<f64>::identity(2);
        assert!(run_summa(
            &tiny,
            &tiny,
            &SummaConfig {
                grid: 8,
                ..Default::default()
            }
        )
        .is_err());
        let bad = CscMatrix::<f64>::zeros(7, 7);
        assert!(run_summa(&a, &bad, &SummaConfig::default()).is_err());
    }

    #[test]
    fn intermediates_sum_to_process_block() {
        let (a, b) = inputs();
        let q = 4;
        let parts = process_intermediates(&a, &b, q, true).unwrap();
        assert_eq!(parts.len(), q);
        let refs: Vec<&CscMatrix<f64>> = parts.iter().collect();
        let summed = spkadd::spkadd_with(&refs, Algorithm::Hash, &Options::default()).unwrap();
        // Compare against block (0,0) of the full product.
        let direct = spgemm_hash(&a, &b, &SpgemmOptions::default()).unwrap();
        let block = direct
            .slice_rows(0, a.nrows() / q)
            .slice_cols(0, b.ncols() / q);
        assert!(DenseMatrix::from_csc(&summed).max_abs_diff(&DenseMatrix::from_csc(&block)) < 1e-9);
    }

    #[test]
    fn unsorted_intermediates_are_actually_unsorted_sometimes() {
        let (a, b) = inputs();
        let parts = process_intermediates(&a, &b, 2, false).unwrap();
        // With hash emission in first-touch order, at least one multi-entry
        // column is overwhelmingly likely to be unsorted.
        let any_unsorted = parts.iter().any(|p| !p.is_sorted());
        let has_multi = parts
            .iter()
            .any(|p| (0..p.ncols()).any(|j| p.col_nnz(j) > 1));
        assert!(!has_multi || any_unsorted || parts.iter().all(|p| p.nnz() < 4));
    }

    #[test]
    fn summa_3d_matches_2d_and_direct() {
        let (a, b) = inputs();
        let direct = spgemm_hash(&a, &b, &SpgemmOptions::default()).unwrap();
        for layers in [1usize, 2, 4] {
            let report = run_summa_3d(
                &a,
                &b,
                &SummaConfig {
                    grid: 2,
                    reduction: ReductionKind::SortedHash,
                    threads: 0,
                },
                layers,
            )
            .unwrap();
            assert!(
                report.result.approx_eq(&direct, 1e-9),
                "{layers}-layer 3D SUMMA diverged"
            );
            assert!(report.multiply_total > 0.0);
            if layers > 1 {
                assert!(report.spkadd_inter_total > 0.0);
            }
        }
    }

    #[test]
    fn summa_3d_validates_config() {
        let (a, b) = inputs();
        assert!(matches!(
            run_summa_3d(&a, &b, &SummaConfig::default(), 0),
            Err(SummaError::Config(_))
        ));
        // 40-wide inner dimension cannot host 32 layers of a 4x4 grid.
        assert!(run_summa_3d(&a, &b, &SummaConfig::default(), 32).is_err());
    }

    #[test]
    fn report_aggregates() {
        let (a, b) = inputs();
        let report = run_summa(&a, &b, &SummaConfig::default()).unwrap();
        assert!(report.multiply_total() >= report.multiply_max());
        assert!(report.spkadd_total() >= report.spkadd_max());
        assert!(report.multiply_total() > 0.0);
    }
}
