//! # spk-spgemm — local sparse matrix–matrix multiplication
//!
//! Column-parallel hash SpGEMM (`C = A·B` over CSC matrices) in the style
//! of Nagasaka et al. (the paper's \[3\]): a symbolic phase sizes every
//! output column with a key-only hash table, then a numeric phase
//! accumulates `A(:,l)·B(l,j)` contributions into a `(row, value)` hash
//! table — the same [`spkadd::hashtab`] accumulators the SpKAdd paper
//! builds on, consumed here as a downstream system.
//!
//! Two properties matter for the paper's experiments:
//!
//! * **sorted vs unsorted output** — distributed SpGEMM only needs its
//!   *intermediate* products sorted if the following reduction demands
//!   sorted inputs. Because hash SpKAdd does not, the multiply can skip
//!   its per-column sort; Fig 6 measures that as ~20% of multiply time.
//!   [`SpgemmOptions::sorted_output`] switches the behaviour.
//! * **k-way heap alternative** — [`spgemm_heap`] merges the scaled
//!   columns of `A` with the SpKAdd k-way heap, the "heap SpGEMM" used as
//!   the incumbent in CombBLAS; it requires sorted `A` columns and emits
//!   sorted output by construction.

// No unsafe anywhere in this crate (checked repo-wide by spk-lint's
// safety-comment rule where unsafe *is* allowed).
#![forbid(unsafe_code)]

use rayon::prelude::*;
use spk_sparse::{ColView, CscMatrix, Scalar, SparseError};
use spkadd::hashtab::{HashAccumulator, SymbolicHashTable};
use spkadd::heap::KwayHeap;
use spkadd::mem::NullModel;
use spkadd::parallel::{exclusive_prefix_sum, plan_ranges, split_output, Scheduling};

/// Options for the local SpGEMM.
#[derive(Debug, Clone)]
pub struct SpgemmOptions {
    /// Emit output columns sorted by row index. Turn off when the consumer
    /// (e.g. hash SpKAdd) accepts unsorted columns.
    pub sorted_output: bool,
    /// Worker threads; 0 uses the ambient rayon pool.
    pub threads: usize,
    /// Column-scheduling policy (flop-weighted by default).
    pub scheduling: Scheduling,
}

impl Default for SpgemmOptions {
    fn default() -> Self {
        Self {
            sorted_output: true,
            threads: 0,
            scheduling: Scheduling::default(),
        }
    }
}

/// Per-column multiply flops: `flops[j] = Σ_{(l,·) ∈ B(:,j)} nnz(A(:,l))`.
/// The symbolic upper bound and the load-balancing weight.
pub fn flops_per_column<T: Scalar>(a: &CscMatrix<T>, b: &CscMatrix<T>) -> Vec<usize> {
    let a_col_nnz: Vec<usize> = (0..a.ncols()).map(|l| a.col_nnz(l)).collect();
    (0..b.ncols())
        .map(|j| b.col(j).rows.iter().map(|&l| a_col_nnz[l as usize]).sum())
        .collect()
}

/// Hash SpGEMM: `C = A·B`. Accepts unsorted inputs; output sortedness
/// follows `opts.sorted_output`.
pub fn spgemm_hash<T: Scalar>(
    a: &CscMatrix<T>,
    b: &CscMatrix<T>,
    opts: &SpgemmOptions,
) -> Result<CscMatrix<T>, SparseError> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ProductMismatch {
            lhs_cols: a.ncols(),
            rhs_rows: b.nrows(),
        });
    }
    let run = || {
        let n = b.ncols();
        let flops = flops_per_column(a, b);
        let ranges = plan_ranges(&flops, 0, opts.scheduling);

        // Symbolic phase: exact output column sizes.
        let mut counts = vec![0usize; n];
        {
            let mut tasks: Vec<(std::ops::Range<usize>, &mut [usize])> = Vec::new();
            let mut rest = counts.as_mut_slice();
            for r in &ranges {
                let (head, tail) = rest.split_at_mut(r.len());
                tasks.push((r.clone(), head));
                rest = tail;
            }
            tasks.into_par_iter().for_each(|(cols, out)| {
                let mut ht = SymbolicHashTable::with_capacity(16);
                let mut mem = NullModel;
                for (slot, j) in cols.into_iter().enumerate() {
                    // Distinct output rows are bounded by both the flop
                    // count and the row dimension.
                    ht.reserve_for(flops[j].min(a.nrows()));
                    let mut nz = 0usize;
                    for &l in b.col(j).rows {
                        for &r in a.col(l as usize).rows {
                            if ht.insert(r, &mut mem) {
                                nz += 1;
                            }
                        }
                    }
                    ht.reset();
                    out[slot] = nz;
                }
            });
        }

        let colptr = exclusive_prefix_sum(&counts);
        let nnz = *colptr.last().unwrap();
        let mut rowidx = vec![0u32; nnz];
        let mut values = vec![T::default(); nnz];
        let num_ranges = plan_ranges(&counts, 0, opts.scheduling);
        let chunks = split_output(&colptr, &num_ranges, &mut rowidx, &mut values);
        chunks.into_par_iter().for_each(|chunk| {
            let mut ht = HashAccumulator::<T>::with_capacity(16);
            let mut mem = NullModel;
            for j in chunk.cols.clone() {
                let lo = colptr[j] - chunk.base;
                let hi = colptr[j + 1] - chunk.base;
                ht.reserve_for(hi - lo);
                let bj = b.col(j);
                for (l, bv) in bj.iter() {
                    for (r, av) in a.col(l as usize).iter() {
                        ht.insert_add(r, av * bv, &mut mem);
                    }
                }
                let written = ht.drain_into(
                    &mut chunk.rows[lo..hi],
                    &mut chunk.vals[lo..hi],
                    opts.sorted_output,
                    &mut mem,
                );
                debug_assert_eq!(written, hi - lo);
            }
        });
        CscMatrix::from_parts(a.nrows(), n, colptr, rowidx, values)
    };
    Ok(spkadd::parallel::run_with_threads(opts.threads, run))
}

/// Heap SpGEMM: `C(:,j) = Σ_l B(l,j)·A(:,l)` as a k-way merge of scaled
/// sorted columns — the incumbent algorithm hash SpKAdd replaces in Fig 6.
/// Requires sorted `A` columns; output is always sorted.
pub fn spgemm_heap<T: Scalar>(
    a: &CscMatrix<T>,
    b: &CscMatrix<T>,
    opts: &SpgemmOptions,
) -> Result<CscMatrix<T>, SparseError> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::ProductMismatch {
            lhs_cols: a.ncols(),
            rhs_rows: b.nrows(),
        });
    }
    if !a.is_sorted() {
        return Err(SparseError::InvalidStructure(
            "heap SpGEMM requires sorted columns in the left operand".into(),
        ));
    }
    let run = || {
        let n = b.ncols();
        let flops = flops_per_column(a, b);
        let ranges = plan_ranges(&flops, 0, opts.scheduling);

        // Symbolic via heap merge of the contributing patterns.
        let mut counts = vec![0usize; n];
        {
            let mut tasks: Vec<(std::ops::Range<usize>, &mut [usize])> = Vec::new();
            let mut rest = counts.as_mut_slice();
            for r in &ranges {
                let (head, tail) = rest.split_at_mut(r.len());
                tasks.push((r.clone(), head));
                rest = tail;
            }
            tasks.into_par_iter().for_each(|(cols, out)| {
                let mut mem = NullModel;
                for (slot, j) in cols.into_iter().enumerate() {
                    let bj = b.col(j);
                    let views: Vec<ColView<'_, T>> =
                        bj.rows.iter().map(|&l| a.col(l as usize)).collect();
                    let mut heap = KwayHeap::<T>::new(views.len().max(1));
                    out[slot] = heap.count_column(&views, &mut mem);
                }
            });
        }

        let colptr = exclusive_prefix_sum(&counts);
        let nnz = *colptr.last().unwrap();
        let mut rowidx = vec![0u32; nnz];
        let mut values = vec![T::default(); nnz];
        let num_ranges = plan_ranges(&counts, 0, opts.scheduling);
        let chunks = split_output(&colptr, &num_ranges, &mut rowidx, &mut values);
        chunks.into_par_iter().for_each(|chunk| {
            let mut mem = NullModel;
            // Scaled copies of the contributing columns (B(l,j)·A(:,l)).
            let mut scaled_rows: Vec<u32> = Vec::new();
            let mut scaled_vals: Vec<T> = Vec::new();
            for j in chunk.cols.clone() {
                let lo = colptr[j] - chunk.base;
                let hi = colptr[j + 1] - chunk.base;
                let bj = b.col(j);
                scaled_rows.clear();
                scaled_vals.clear();
                let mut offsets = Vec::with_capacity(bj.nnz() + 1);
                offsets.push(0usize);
                for (l, bv) in bj.iter() {
                    let al = a.col(l as usize);
                    scaled_rows.extend_from_slice(al.rows);
                    scaled_vals.extend(al.vals.iter().map(|&av| av * bv));
                    offsets.push(scaled_rows.len());
                }
                let views: Vec<ColView<'_, T>> = offsets
                    .windows(2)
                    .map(|w| ColView {
                        rows: &scaled_rows[w[0]..w[1]],
                        vals: &scaled_vals[w[0]..w[1]],
                    })
                    .collect();
                let mut heap = KwayHeap::<T>::new(views.len().max(1));
                let written = heap.add_column(
                    &views,
                    &mut chunk.rows[lo..hi],
                    &mut chunk.vals[lo..hi],
                    &mut mem,
                );
                debug_assert_eq!(written, hi - lo);
            }
        });
        CscMatrix::from_parts(a.nrows(), n, colptr, rowidx, values)
    };
    Ok(spkadd::parallel::run_with_threads(opts.threads, run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spk_sparse::DenseMatrix;

    fn dense_product(a: &CscMatrix<f64>, b: &CscMatrix<f64>) -> DenseMatrix<f64> {
        DenseMatrix::from_csc(a)
            .matmul(&DenseMatrix::from_csc(b))
            .unwrap()
    }

    fn small_pair() -> (CscMatrix<f64>, CscMatrix<f64>) {
        let a = CscMatrix::try_new(
            4,
            3,
            vec![0, 2, 3, 5],
            vec![0, 2, 1, 0, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
        .unwrap();
        let b = CscMatrix::try_new(
            3,
            2,
            vec![0, 2, 4],
            vec![0, 2, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        (a, b)
    }

    #[test]
    fn hash_spgemm_matches_dense() {
        let (a, b) = small_pair();
        let c = spgemm_hash(&a, &b, &SpgemmOptions::default()).unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&c).max_abs_diff(&dense_product(&a, &b)),
            0.0
        );
        assert!(c.is_sorted());
    }

    #[test]
    fn heap_spgemm_matches_hash() {
        let (a, b) = small_pair();
        let h = spgemm_hash(&a, &b, &SpgemmOptions::default()).unwrap();
        let p = spgemm_heap(&a, &b, &SpgemmOptions::default()).unwrap();
        assert!(h.approx_eq(&p, 1e-12));
    }

    #[test]
    fn unsorted_output_is_numerically_identical() {
        let (a, b) = small_pair();
        let opts = SpgemmOptions {
            sorted_output: false,
            ..Default::default()
        };
        let c = spgemm_hash(&a, &b, &opts).unwrap();
        assert_eq!(
            DenseMatrix::from_csc(&c).max_abs_diff(&dense_product(&a, &b)),
            0.0
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (a, _) = small_pair();
        let bad = CscMatrix::<f64>::zeros(7, 2);
        assert!(spgemm_hash(&a, &bad, &SpgemmOptions::default()).is_err());
        assert!(spgemm_heap(&a, &bad, &SpgemmOptions::default()).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let (a, _) = small_pair();
        let i = CscMatrix::<f64>::identity(3);
        let c = spgemm_hash(&a, &i, &SpgemmOptions::default()).unwrap();
        assert!(c.approx_eq(&a, 1e-12));
        let i4 = CscMatrix::<f64>::identity(4);
        let c2 = spgemm_hash(&i4, &a, &SpgemmOptions::default()).unwrap();
        assert!(c2.approx_eq(&a, 1e-12));
    }

    #[test]
    fn empty_operands() {
        let a = CscMatrix::<f64>::zeros(4, 3);
        let b = CscMatrix::<f64>::zeros(3, 2);
        let c = spgemm_hash(&a, &b, &SpgemmOptions::default()).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.shape(), (4, 2));
    }

    #[test]
    fn flops_accounting() {
        let (a, b) = small_pair();
        // col 0 of B references A cols {0, 2} → 2 + 2 flops;
        // col 1 references {1, 2} → 1 + 2.
        assert_eq!(flops_per_column(&a, &b), vec![4, 3]);
    }

    #[test]
    fn heap_rejects_unsorted_left_operand() {
        let a = CscMatrix::try_new(4, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap();
        let b = CscMatrix::<f64>::identity(1);
        assert!(spgemm_heap(&a, &b, &SpgemmOptions::default()).is_err());
        // Hash path handles it fine.
        let c = spgemm_hash(&a, &b, &SpgemmOptions::default()).unwrap();
        assert_eq!(c.nnz(), 2);
    }

    #[test]
    fn random_products_match_dense_oracle() {
        let a = spk_gen::er(64, 32, 4, 17);
        let b = spk_gen::er(32, 16, 4, 18);
        let c = spgemm_hash(&a, &b, &SpgemmOptions::default()).unwrap();
        let d = dense_product(&a, &b);
        assert!(DenseMatrix::from_csc(&c).max_abs_diff(&d) < 1e-9);
        let ch = spgemm_heap(&a, &b, &SpgemmOptions::default()).unwrap();
        assert!(DenseMatrix::from_csc(&ch).max_abs_diff(&d) < 1e-9);
    }
}
