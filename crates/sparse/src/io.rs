//! Matrix Market (`.mtx`) reading and writing.
//!
//! The paper's real-world inputs (Eukarya, Isolates, Metaclust50) ship as
//! Matrix Market files with the HipMCL software. The suite substitutes
//! synthetic stand-ins for those datasets (see DESIGN.md), but supports the
//! format so user-supplied matrices can be dropped into every harness.
//!
//! Supported: `matrix coordinate real|integer|pattern general|symmetric`.
//! Pattern entries read as value 1; symmetric files are expanded.

use crate::{CooMatrix, CscMatrix, Scalar, SparseError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a Matrix Market file into a [`CooMatrix<f64>`].
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<CooMatrix<f64>, SparseError> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(file))
}

/// Reads Matrix Market data from any reader.
pub fn read_matrix_market_from<R: Read>(reader: R) -> Result<CooMatrix<f64>, SparseError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| SparseError::Parse("empty file".into()))??;
    let lower = header.to_ascii_lowercase();
    let tokens: Vec<&str> = lower.split_whitespace().collect();
    if tokens.len() < 5 || !tokens[0].starts_with("%%matrixmarket") {
        return Err(SparseError::Parse(format!(
            "not a MatrixMarket header: {header}"
        )));
    }
    if tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(SparseError::Parse(
            "only 'matrix coordinate' files are supported".into(),
        ));
    }
    let field = match tokens[3] {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(SparseError::Parse(format!("unsupported field '{other}'"))),
    };
    let symmetry = match tokens[4] {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(SparseError::Parse(format!(
                "unsupported symmetry '{other}'"
            )))
        }
    };

    // Skip comments, find the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Parse("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| SparseError::Parse(format!("bad size token '{t}': {e}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!(
            "size line must have 3 tokens, got {}",
            dims.len()
        )));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let cap = if symmetry == Symmetry::Symmetric {
        nnz * 2
    } else {
        nnz
    };
    let mut coo = CooMatrix::with_capacity(nrows, ncols, cap);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing row".into()))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad row: {e}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| SparseError::Parse("missing col".into()))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad col: {e}")))?;
        let v: f64 = match field {
            Field::Pattern => 1.0,
            _ => it
                .next()
                .ok_or_else(|| SparseError::Parse("missing value".into()))?
                .parse()
                .map_err(|e| SparseError::Parse(format!("bad value: {e}")))?,
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(SparseError::Parse(format!(
                "entry ({r}, {c}) out of bounds for {nrows}x{ncols} (1-based)"
            )));
        }
        let (r0, c0) = ((r - 1) as u32, (c - 1) as u32);
        coo.push(r0, c0, v);
        if symmetry == Symmetry::Symmetric && r != c {
            coo.push(c0, r0, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse(format!(
            "expected {nnz} entries, found {seen}"
        )));
    }
    Ok(coo)
}

/// Writes a matrix as `matrix coordinate real general`.
pub fn write_matrix_market<T: Scalar>(
    path: impl AsRef<Path>,
    m: &CscMatrix<T>,
) -> Result<(), SparseError> {
    let file = std::fs::File::create(path)?;
    write_matrix_market_to(BufWriter::new(file), m)
}

/// Writes Matrix Market data to any writer.
pub fn write_matrix_market_to<T: Scalar, W: Write>(
    mut w: W,
    m: &CscMatrix<T>,
) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by spk-sparse")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {}", r + 1, c + 1, v.to_f64())?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_memory() {
        let m = CscMatrix::try_new(
            4,
            3,
            vec![0, 2, 2, 4],
            vec![0, 3, 1, 2],
            vec![1.5, -2.0, 3.25, 4.0],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &m).unwrap();
        let coo = read_matrix_market_from(&buf[..]).unwrap();
        let back = coo.to_csc_sum_duplicates();
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn reads_pattern_files() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 1\n3 2\n";
        let coo = read_matrix_market_from(text.as_bytes()).unwrap();
        let m = coo.to_csc();
        assert_eq!(m.get(0, 0).unwrap(), 1.0);
        assert_eq!(m.get(2, 1).unwrap(), 1.0);
    }

    #[test]
    fn expands_symmetric_files() {
        let text =
            "%%MatrixMarket matrix coordinate real symmetric\n% comment\n3 3 2\n2 1 5.0\n3 3 7.0\n";
        let coo = read_matrix_market_from(text.as_bytes()).unwrap();
        let m = coo.to_csc();
        assert_eq!(m.get(1, 0).unwrap(), 5.0);
        assert_eq!(m.get(0, 1).unwrap(), 5.0, "mirror entry expanded");
        assert_eq!(m.get(2, 2).unwrap(), 7.0, "diagonal not duplicated");
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn rejects_bad_headers_and_counts() {
        assert!(read_matrix_market_from("garbage\n1 1 0\n".as_bytes()).is_err());
        assert!(read_matrix_market_from(
            "%%MatrixMarket matrix array real general\n1 1 0\n".as_bytes()
        )
        .is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market_from(short.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 1 1.0\n";
        assert!(read_matrix_market_from(oob.as_bytes()).is_err());
    }
}
