//! Compressed sparse row (CSR) matrices.
//!
//! CSR is the transpose-dual of CSC. The SpKAdd paper notes (§II-A) that
//! every algorithm applies unchanged to CSR by swapping the roles of rows
//! and columns; this container exists so downstream systems (and tests) can
//! exercise that claim via cheap re-interpretation.

use crate::{CooMatrix, CscMatrix, Element, SparseError};

/// Sparse matrix in compressed sparse row format.
///
/// Storage mirrors [`CscMatrix`]: `rowptr` has `nrows + 1` entries and the
/// nonzeros of row `i` occupy `rowptr[i] .. rowptr[i+1]` of `colidx`/`values`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix<T = f64> {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<u32>,
    values: Vec<T>,
}

impl<T: Element> CsrMatrix<T> {
    /// Builds a matrix from raw CSR arrays, validating the structure.
    pub fn try_new(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<u32>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        // Validate by borrowing the CSC checker on the transposed shape.
        let as_csc = CscMatrix::try_new(ncols, nrows, rowptr, colidx, values)?;
        let (ncols_, nrows_, rowptr, colidx, values) = as_csc.into_parts();
        Ok(Self {
            nrows: nrows_,
            ncols: ncols_,
            rowptr,
            colidx,
            values,
        })
    }

    /// Builds a matrix from raw CSR arrays without validation.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rowptr: Vec<usize>,
        colidx: Vec<u32>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(rowptr.len(), nrows + 1);
        debug_assert_eq!(colidx.len(), *rowptr.last().unwrap_or(&0));
        Self {
            nrows,
            ncols,
            rowptr,
            colidx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        *self.rowptr.last().unwrap()
    }

    /// Row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Column index array.
    #[inline]
    pub fn colidx(&self) -> &[u32] {
        &self.colidx
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Row `i` as parallel `(colidx, values)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[T]) {
        let lo = self.rowptr[i];
        let hi = self.rowptr[i + 1];
        (&self.colidx[lo..hi], &self.values[lo..hi])
    }

    /// Reinterprets this CSR matrix as the CSC storage of its transpose —
    /// zero-copy, O(1).
    ///
    /// This is the bridge that lets every column-wise SpKAdd algorithm run
    /// row-wise: `spkadd(rows)` ≡ `spkadd(csc of the transposes)`.
    pub fn transpose_as_csc(self) -> CscMatrix<T> {
        CscMatrix::from_parts(
            self.ncols,
            self.nrows,
            self.rowptr,
            self.colidx,
            self.values,
        )
    }

    /// Converts to CSC storage of the *same* matrix (O(nnz + ncols)).
    pub fn to_csc(&self) -> CscMatrix<T> {
        // self's rows are the columns of the transpose; transposing that
        // CSC view yields the original matrix in CSC form.
        let tr = self.clone().transpose_as_csc();
        tr.transpose()
    }

    /// Converts to coordinate format.
    pub fn to_coo(&self) -> CooMatrix<T> {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                coo.push(i as u32, *c, *v);
            }
        }
        coo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f64> {
        // row 0: (0, 1.0), (2, 2.0); row 1: (1, 3.0)
        CsrMatrix::try_new(2, 3, vec![0, 2, 3], vec![0, 2, 1], vec![1.0, 2.0, 3.0]).unwrap()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 3);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[1.0, 2.0]);
    }

    #[test]
    fn try_new_rejects_bad_structure() {
        assert!(CsrMatrix::<f64>::try_new(2, 3, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CsrMatrix::<f64>::try_new(2, 3, vec![0, 1, 1], vec![9], vec![1.0]).is_err());
    }

    #[test]
    fn to_csc_preserves_entries() {
        let m = sample();
        let c = m.to_csc();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.get(0, 0).unwrap(), 1.0);
        assert_eq!(c.get(0, 2).unwrap(), 2.0);
        assert_eq!(c.get(1, 1).unwrap(), 3.0);
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn transpose_as_csc_is_the_transpose() {
        let m = sample();
        let t = m.transpose_as_csc();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 0).unwrap(), 2.0);
    }

    #[test]
    fn coo_round_trip() {
        let m = sample();
        let coo = m.to_coo();
        let back = coo.to_csc();
        assert!(back.approx_eq(&m.to_csc(), 0.0));
    }
}
